"""Shared state for functions: remote KV with optional look-aside caching.

The two §3.3 FaaS state models:

- *remote* access charges a network round trip per operation (disaggregated
  storage — "operations on shared state necessarily incur network round
  trips");
- *cached* access serves reads from a per-worker cache, trading the round
  trip for staleness, which the consistency tests make observable.

Writes always go through (write-through), and support compare-and-set so
optimistic protocols (Beldi-style workflows) can be built on top.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.net.latency import Latency, Sampler
from repro.sim import Environment
from repro.storage.cache import LruCache
from repro.storage.kv import CasConflict, KeyValueStore, Versioned


class SharedKv:
    """The platform's shared key-value state service."""

    def __init__(
        self,
        env: Environment,
        rtt: Optional[Sampler] = None,
        cache_capacity: int = 4096,
        cache_ttl: Optional[float] = None,
    ) -> None:
        self.env = env
        self.store = KeyValueStore()
        self._rtt = rtt or Latency.intra_zone()
        self._rng = env.stream("faas-kv")
        self._caches: dict[str, LruCache] = {}
        self._cache_capacity = cache_capacity
        self._cache_ttl = cache_ttl
        self.remote_reads = 0
        self.cached_reads = 0

    def _cache_for(self, worker: str) -> LruCache:
        if worker not in self._caches:
            self._caches[worker] = LruCache(
                self._cache_capacity, ttl=self._cache_ttl, clock=lambda: self.env.now
            )
        return self._caches[worker]

    def _trip(self) -> Generator:
        yield self.env.timeout(self._rtt(self._rng))

    # -- remote (uncached) ------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Generator:
        """Linearizable read straight from the store (one round trip)."""
        yield from self._trip()
        self.remote_reads += 1
        return self.store.get(key, default)

    def get_versioned(self, key: Any) -> Generator:
        yield from self._trip()
        self.remote_reads += 1
        return self.store.get_versioned(key)

    def put(self, key: Any, value: Any) -> Generator:
        yield from self._trip()
        return self.store.put(key, value)

    def compare_and_set(self, key: Any, value: Any, expected_version: int) -> Generator:
        """CAS; raises :class:`~repro.storage.kv.CasConflict` on races."""
        yield from self._trip()
        return self.store.compare_and_set(key, value, expected_version)

    def delete(self, key: Any) -> Generator:
        yield from self._trip()
        return self.store.delete(key)

    # -- cached -------------------------------------------------------------------

    def cached_get(self, worker: str, key: Any, default: Any = None) -> Generator:
        """Read via the worker's cache; write-through keeps it warm.

        A hit costs nothing; a miss pays the round trip and populates the
        cache.  Hits can be *stale* relative to other workers' writes.
        """
        cache = self._cache_for(worker)
        sentinel = object()
        hit = cache.get(key, sentinel)
        if hit is not sentinel:
            self.cached_reads += 1
            return hit
        yield from self._trip()
        self.remote_reads += 1
        value = self.store.get(key, default)
        cache.put(key, value)
        return value

    def cached_put(self, worker: str, key: Any, value: Any) -> Generator:
        """Write-through: update the store and this worker's cache."""
        yield from self._trip()
        version = self.store.put(key, value)
        self._cache_for(worker).put(key, value)
        return version

    def invalidate(self, key: Any) -> None:
        """Broadcast invalidation (instant, generous to the cache design)."""
        for cache in self._caches.values():
            cache.invalidate(key)

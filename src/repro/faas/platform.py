"""The FaaS platform: triggers, containers, cold starts, composition.

Lifecycle management is the platform's job (§4.3): it provisions a
container per concurrent invocation, reuses warm containers within their
keep-alive window, and pays a cold start otherwise — "challenges associated
with cold starts, execution performance, and costs undermine a wider
adoption of the FaaS paradigm".  Benchmark C7 sweeps exactly that.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.faas.state import SharedKv
from repro.net.latency import Latency, Sampler
from repro.sim import Environment
from repro.transactions.causal import CausalSession, CausalStore

FunctionBody = Callable[["FaasContext", Any], Generator]


class FunctionError(Exception):
    """A function invocation failed."""


class Throttled(FunctionError):
    """The function's concurrency limit was exceeded (an HTTP 429).

    Platforms cap concurrent executions per function (§4.3 resource
    management); excess triggers are rejected and clients must back off.
    """


@dataclass
class _Container:
    """One warm execution slot for one function."""

    container_id: int
    function: str
    worker: str
    expires_at: float
    busy: bool = False


@dataclass
class FaasStats:
    invocations: int = 0
    cold_starts: int = 0
    warm_starts: int = 0
    containers_created: int = 0
    throttled: int = 0

    @property
    def cold_fraction(self) -> float:
        total = self.cold_starts + self.warm_starts
        return self.cold_starts / total if total else 0.0


class FaasContext:
    """What a running function can touch."""

    def __init__(
        self,
        platform: "FaasPlatform",
        worker: str,
        invocation_id: int,
        session: Optional[CausalSession] = None,
    ) -> None:
        self.platform = platform
        self.worker = worker
        self.invocation_id = invocation_id
        self.env: Environment = platform.env
        self.session = session  # causal context, flows along compositions

    @property
    def kv(self) -> SharedKv:
        """The platform's shared state service (remote access)."""
        return self.platform.kv

    def kv_get(self, key: Any, default: Any = None) -> Generator:
        """State read honouring the platform's state mode."""
        if self.session is not None:
            value = yield from self.session.read(key)
            return value if value is not None else default
        if self.platform.cached_state:
            value = yield from self.platform.kv.cached_get(self.worker, key, default)
        else:
            value = yield from self.platform.kv.get(key, default)
        return value

    def kv_put(self, key: Any, value: Any) -> Generator:
        if self.session is not None:
            self.session.write(key, value)
            return None
        if self.platform.cached_state:
            version = yield from self.platform.kv.cached_put(self.worker, key, value)
        else:
            version = yield from self.platform.kv.put(key, value)
        return version

    def call(self, function: str, payload: Any = None) -> Generator:
        """Synchronous function composition (function-to-function trigger).

        In causal mode the caller's session travels with the call: the
        callee never reads state older than what the caller saw/wrote —
        Cloudburst's cross-function causal guarantee (§4.2).
        """
        result = yield from self.platform.invoke(
            function, payload, _session=self.session
        )
        return result


class FaasPlatform:
    """Registry + scheduler + container pool."""

    _invocation_ids = itertools.count(1)
    _container_ids = itertools.count(1)

    def __init__(
        self,
        env: Environment,
        num_workers: int = 4,
        keep_alive: float = 300.0,
        cold_start: Optional[Sampler] = None,
        warm_dispatch: Optional[Sampler] = None,
        cached_state: bool = False,
        causal_state: bool = False,
        replication_delay: float = 5.0,
        kv: Optional[SharedKv] = None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if cached_state and causal_state:
            raise ValueError("pick one of cached_state / causal_state")
        self.env = env
        self.keep_alive = keep_alive
        self.cached_state = cached_state
        self.causal_state = causal_state
        self.kv = kv or SharedKv(env)
        self._cold_start = cold_start or Latency.shifted_exponential(100.0, 50.0)
        self._warm_dispatch = warm_dispatch or Latency.constant(0.5)
        self._rng = env.stream("faas-platform")
        self._workers = [f"faas-worker-{i}" for i in range(num_workers)]
        self.causal = (
            CausalStore(env, self._workers, replication_delay=replication_delay)
            if causal_state else None
        )
        self._functions: dict[str, FunctionBody] = {}
        self._pool: dict[str, list[_Container]] = {}
        self._limits: dict[str, int] = {}
        self._running: dict[str, int] = {}
        self.stats = FaasStats()

    def register(
        self,
        name: str,
        body: FunctionBody,
        concurrency_limit: Optional[int] = None,
    ) -> None:
        """Register a function (a generator taking ``(ctx, payload)``).

        ``concurrency_limit`` caps simultaneous executions; excess
        invocations raise :class:`Throttled` immediately.
        """
        if name in self._functions:
            raise ValueError(f"function {name!r} already registered")
        if concurrency_limit is not None and concurrency_limit <= 0:
            raise ValueError("concurrency_limit must be positive")
        self._functions[name] = body
        if concurrency_limit is not None:
            self._limits[name] = concurrency_limit

    def function(
        self, name: str, concurrency_limit: Optional[int] = None
    ) -> Callable[[FunctionBody], FunctionBody]:
        """Decorator form of :meth:`register`."""

        def wrap(body: FunctionBody) -> FunctionBody:
            self.register(name, body, concurrency_limit=concurrency_limit)
            return body

        return wrap

    # -- invocation ---------------------------------------------------------------

    def invoke(
        self,
        name: str,
        payload: Any = None,
        _session: Optional[CausalSession] = None,
    ) -> Generator:
        """Trigger a function; returns its result (or raises its error)."""
        body = self._functions.get(name)
        if body is None:
            raise FunctionError(f"no function named {name!r}")
        limit = self._limits.get(name)
        if limit is not None and self._running.get(name, 0) >= limit:
            self.stats.throttled += 1
            raise Throttled(f"{name!r} at its concurrency limit ({limit})")
        self._running[name] = self._running.get(name, 0) + 1
        self.stats.invocations += 1
        container = None
        try:
            container = yield from self._acquire(name)
            session = None
            if self.causal is not None:
                session = _session if _session is not None else self.causal.session()
                session.move_to(container.worker)
            ctx = FaasContext(
                self, container.worker, next(FaasPlatform._invocation_ids),
                session=session,
            )
            result = yield from body(ctx, payload)
            return result
        finally:
            self._running[name] -= 1
            if container is not None:
                container.busy = False
                container.expires_at = self.env.now + self.keep_alive

    def _acquire(self, name: str) -> Generator:
        pool = self._pool.setdefault(name, [])
        pool[:] = [c for c in pool if c.busy or c.expires_at > self.env.now]
        for container in pool:
            if not container.busy:
                container.busy = True
                self.stats.warm_starts += 1
                yield self.env.timeout(self._warm_dispatch(self._rng))
                return container
        # Cold start: provision a new container on the least-loaded worker.
        self.stats.cold_starts += 1
        self.stats.containers_created += 1
        load = {worker: 0 for worker in self._workers}
        for containers in self._pool.values():
            for container in containers:
                load[container.worker] += 1
        worker = min(self._workers, key=lambda w: (load[w], w))
        container = _Container(
            container_id=next(FaasPlatform._container_ids),
            function=name,
            worker=worker,
            expires_at=self.env.now + self.keep_alive,
            busy=True,
        )
        pool.append(container)
        yield self.env.timeout(self._cold_start(self._rng))
        return container

    def warm_pool_size(self, name: str) -> int:
        """Live containers for ``name`` (busy or within keep-alive)."""
        pool = self._pool.get(name, [])
        return sum(1 for c in pool if c.busy or c.expires_at > self.env.now)

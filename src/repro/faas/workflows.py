"""Serializable transactional workflows over shared FaaS state (Beldi-like).

The strongest §4.2 point in the FaaS column: "another category of Cloud
Function systems goes beyond by providing transactional serializability on
computations cutting across functions" (Beldi, Boki).  The mechanism here
is optimistic concurrency control:

- a workflow's reads record ``(key, version)`` in a read set;
- writes are buffered in a write set;
- commit validates that every read version is still current and installs
  the write set — atomically, since validation+install is a single
  simulation step against the underlying store;
- validation failure aborts and automatically retries the whole workflow
  (workflow bodies must therefore be free of external side effects —
  exactly the determinism/idempotence restriction these systems impose);
- a workflow id deduplicates the *result*: re-submitting a committed
  workflow returns the recorded outcome instead of re-running (the
  exactly-once guarantee built from logging in Beldi).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.faas.state import SharedKv
from repro.messaging.idempotency import IdempotencyStore
from repro.sim import Environment

WorkflowBody = Callable[["WorkflowContext", Any], Generator]


class WorkflowAborted(Exception):
    """Retries exhausted: the workflow could not commit."""


@dataclass
class WorkflowStats:
    committed: int = 0
    conflicts: int = 0
    deduplicated: int = 0
    exhausted: int = 0


class WorkflowContext:
    """Transactional view of the shared KV for one attempt."""

    def __init__(self, kv: SharedKv) -> None:
        self._kv = kv
        self.read_set: dict[Any, int] = {}
        self.write_set: dict[Any, Any] = {}

    def read(self, key: Any, default: Any = None) -> Generator:
        """Read through the transaction (own writes first)."""
        if key in self.write_set:
            return self.write_set[key]
        versioned = yield from self._kv.get_versioned(key)
        if versioned is None:
            self.read_set.setdefault(key, self._kv.store.version(key))
            return default
        self.read_set.setdefault(key, versioned.version)
        return versioned.value

    def write(self, key: Any, value: Any) -> None:
        """Buffer a write; installed only at commit."""
        self.write_set[key] = value

    def update(self, key: Any, fn: Callable[[Any], Any], default: Any = None) -> Generator:
        """Read-modify-write helper."""
        current = yield from self.read(key, default)
        new_value = fn(current)
        self.write(key, new_value)
        return new_value


class TransactionalWorkflows:
    """The workflow engine: register bodies, run them serializably."""

    def __init__(
        self,
        env: Environment,
        kv: Optional[SharedKv] = None,
        max_retries: int = 16,
        backoff: float = 1.0,
    ) -> None:
        self.env = env
        self.kv = kv or SharedKv(env)
        self.max_retries = max_retries
        self.backoff = backoff
        self._bodies: dict[str, WorkflowBody] = {}
        self._results = IdempotencyStore(clock=lambda: env.now)
        self._rng = env.stream("txn-workflows")
        self.stats = WorkflowStats()

    def register(self, name: str, body: WorkflowBody) -> None:
        if name in self._bodies:
            raise ValueError(f"workflow {name!r} already registered")
        self._bodies[name] = body

    def run(
        self,
        name: str,
        payload: Any = None,
        workflow_id: Optional[str] = None,
    ) -> Generator:
        """Execute a workflow to a serializable commit; returns its result.

        A repeated ``workflow_id`` returns the first execution's recorded
        result without re-executing.
        """
        body = self._bodies.get(name)
        if body is None:
            raise KeyError(f"no workflow named {name!r}")
        if workflow_id is not None:
            hit = self._results.lookup(workflow_id)
            if hit is not None:
                self.stats.deduplicated += 1
                return hit.response
        for attempt in range(1, self.max_retries + 1):
            ctx = WorkflowContext(self.kv)
            result = yield from body(ctx, payload)
            if self._try_commit(ctx):
                self.stats.committed += 1
                if workflow_id is not None:
                    self._results.record(workflow_id, result)
                return result
            self.stats.conflicts += 1
            # Jittered backoff decorrelates retrying conflict partners.
            yield self.env.timeout(self.backoff * attempt * self._rng.uniform(0.5, 1.5))
        self.stats.exhausted += 1
        raise WorkflowAborted(f"workflow {name!r} aborted after {self.max_retries} attempts")

    def _try_commit(self, ctx: WorkflowContext) -> bool:
        """OCC validate + install, atomic w.r.t. the simulation."""
        store = self.kv.store
        for key, version in ctx.read_set.items():
            if store.version(key) != version:
                return False
        for key, value in ctx.write_set.items():
            store.put(key, value)
        return True

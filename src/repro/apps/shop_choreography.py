"""The marketplace checkout as a *choreographed* saga.

The §4.2 alternative to :class:`repro.apps.shop.MicroserviceShop`'s
orchestrated saga: no coordinator exists.  Each service runs a
:class:`~repro.transactions.choreography.Reactor` on the broker:

    checkout-requested ──▶ stock (reserve) ──▶ stock-reserved
    stock-reserved     ──▶ payment (charge) ─▶ payment-ok / payment-failed
    payment-ok         ──▶ orders (finalize) ▶ checkout-completed
    payment-failed     ──▶ stock (release)  ─▶ checkout-compensated

The trade-offs this makes measurable against orchestration:

- latency includes broker hops and consumer poll intervals per step;
- outcome observability requires watching terminal topics (the
  :class:`ChoreographyMonitor`) — nobody can simply be asked;
- coupling is minimal: services know only their input/output topics.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.core import KernelApp
from repro.apps.core.retry import with_txn
from repro.db import DatabaseServer, IsolationLevel
from repro.messaging import Broker
from repro.sim import Environment
from repro.transactions.choreography import ChoreographyMonitor, Reactor
from repro.workloads.marketplace import CheckoutOp, MarketplaceWorkload

SER = IsolationLevel.SERIALIZABLE

TOPICS = (
    "checkout-requested",
    "stock-reserved",
    "payment-ok",
    "payment-failed",
    "checkout-completed",
    "checkout-compensated",
)


class _DbCtx:
    """Adapter giving :func:`~repro.apps.core.retry.with_txn` what it expects (db + env)."""

    def __init__(self, env: Environment, db: DatabaseServer) -> None:
        self.env = env
        self.db = db


class ChoreographedShop(KernelApp):
    """The event-driven checkout deployment."""

    def __init__(self, env: Environment, workload: MarketplaceWorkload) -> None:
        super().__init__(env)
        self.workload = workload
        self.broker = Broker(env)
        for topic in TOPICS:
            self.broker.create_topic(topic)

        self.stock_db = DatabaseServer(env, name="stock-db")
        self.stock_db.create_table("products", primary_key="id")
        self.stock_db.create_table("reservations", primary_key="rid")
        self.stock_db.load("products", workload.initial_products())
        self.payment_db = DatabaseServer(env, name="payment-db")
        self.payment_db.create_table("payments", primary_key="order_id")
        self.order_db = DatabaseServer(env, name="order-db")
        self.order_db.create_table("orders", primary_key="id")

        self.monitor = ChoreographyMonitor(
            env, self.broker, "checkout-completed", "checkout-compensated"
        )
        self._reactors = [
            Reactor(env, self.broker, "stock-svc", "checkout-requested",
                    self._reserve_stock),
            Reactor(env, self.broker, "payment-svc", "stock-reserved",
                    self._charge),
            Reactor(env, self.broker, "order-svc", "payment-ok",
                    self._finalize),
            Reactor(env, self.broker, "stock-compensator", "payment-failed",
                    self._release_stock),
        ]
        for reactor in self._reactors:
            reactor.start()

    # -- reactions ------------------------------------------------------------------

    def _reserve_stock(self, event: dict) -> Generator:
        ctx = _DbCtx(self.env, self.stock_db)

        def body(txn):
            for product, quantity in event["items"]:
                row = yield from ctx.db.get(txn, "products", product)
                if row["stock"] - row["reserved"] < quantity:
                    raise ValueError(f"out of stock: {product}")
                yield from ctx.db.update(
                    txn, "products", product,
                    {"reserved": row["reserved"] + quantity},
                )
                yield from ctx.db.insert(
                    txn, "reservations",
                    {"rid": f"{event['saga_id']}/{product}",
                     "order_id": event["saga_id"],
                     "product": product, "quantity": quantity},
                )

        try:
            yield from with_txn(ctx, body)
        except ValueError:
            # Business rejection before any state change: terminal event.
            return [("checkout-compensated", event["saga_id"], {})]
        return [("stock-reserved", event["saga_id"],
                 {"items": event["items"], "amount": event["amount"],
                  "fail": event["fail"]})]

    def _charge(self, event: dict) -> Generator:
        if event["fail"]:
            yield self.env.timeout(0.5)
            return [("payment-failed", event["saga_id"],
                     {"items": event["items"]})]
        ctx = _DbCtx(self.env, self.payment_db)

        def body(txn):
            yield from ctx.db.insert(
                txn, "payments",
                {"order_id": event["saga_id"], "amount": event["amount"]},
            )

        yield from with_txn(ctx, body)
        return [("payment-ok", event["saga_id"], {"items": event["items"]})]

    def _finalize(self, event: dict) -> Generator:
        stock_ctx = _DbCtx(self.env, self.stock_db)

        def confirm(txn):
            for product, quantity in event["items"]:
                row = yield from stock_ctx.db.get(txn, "products", product)
                yield from stock_ctx.db.update(
                    txn, "products", product,
                    {"stock": row["stock"] - quantity,
                     "reserved": row["reserved"] - quantity},
                )
                yield from stock_ctx.db.delete(
                    txn, "reservations", f"{event['saga_id']}/{product}"
                )

        yield from with_txn(stock_ctx, confirm)
        order_ctx = _DbCtx(self.env, self.order_db)

        def create(txn):
            yield from order_ctx.db.insert(
                txn, "orders", {"id": event["saga_id"], "items": event["items"]}
            )

        yield from with_txn(order_ctx, create)
        return [("checkout-completed", event["saga_id"], {})]

    def _release_stock(self, event: dict) -> Generator:
        ctx = _DbCtx(self.env, self.stock_db)

        def body(txn):
            for product, quantity in event["items"]:
                reservation = yield from ctx.db.get(
                    txn, "reservations", f"{event['saga_id']}/{product}"
                )
                if reservation is None:
                    continue
                row = yield from ctx.db.get(txn, "products", product)
                yield from ctx.db.update(
                    txn, "products", product,
                    {"reserved": row["reserved"] - quantity},
                )
                yield from ctx.db.delete(
                    txn, "reservations", f"{event['saga_id']}/{product}"
                )

        yield from with_txn(ctx, body)
        return [("checkout-compensated", event["saga_id"], {})]

    # -- client --------------------------------------------------------------------------

    def execute(self, op: CheckoutOp, poll_interval: float = 2.0) -> Generator:
        """Kick off a checkout and await its terminal event."""
        yield from self.broker.publish(
            "checkout-requested", op.op_id,
            {"saga_id": op.op_id, "event_id": f"{op.op_id}/request",
             "items": list(op.cart), "amount": sum(q for _p, q in op.cart),
             "fail": op.payment_fails},
        )
        while self.monitor.outcome_of(op.op_id) is None:
            yield self.env.timeout(poll_interval)
        if self.monitor.outcome_of(op.op_id) != "completed":
            raise RuntimeError(f"checkout {op.op_id} compensated")
        self.ledger.apply(op.op_id)

    def final_state(self) -> dict:
        return {
            "products": self.stock_db.engine.all_rows("products"),
            "orders": self.order_db.engine.all_rows("orders"),
            "payments": self.payment_db.engine.all_rows("payments"),
        }

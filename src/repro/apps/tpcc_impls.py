"""TPC-C-lite on three runtimes: monolithic DB, Beldi FaaS, Styx dataflow.

Benchmark C10's subjects.  All three implement the same three transactions
(:class:`~repro.workloads.tpcc.NewOrderOp`, ``PaymentOp``,
``OrderStatusOp``) against the same logical schema, so the TPC-C
consistency conditions apply to each verbatim:

- :class:`DbTpcc` — the monolith: one serializable database;
- :class:`WorkflowTpcc` — Beldi-style OCC workflows over a shared KV: a
  NewOrder touches 7-17 keys, so aborts grow quickly with contention (the
  "TPC-C challenges state-of-the-art SFaaS" finding of ref [52]);
- :class:`StyxTpcc` — deterministic transactional dataflow: conflicting
  NewOrders serialize in waves without aborts or lock round trips.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.core import KernelApp
from repro.dataflow import TransactionalDataflow
from repro.db import DatabaseServer, IsolationLevel
from repro.db.errors import TransactionAborted
from repro.faas import SharedKv, TransactionalWorkflows, WorkflowAborted
from repro.net.latency import Latency
from repro.sim import Environment
from repro.workloads.tpcc import (
    NewOrderOp,
    OrderStatusOp,
    PaymentOp,
    TpccLite,
)

SER = IsolationLevel.SERIALIZABLE


class DbTpcc(KernelApp):
    """TPC-C-lite on the monolithic serializable database."""

    def __init__(self, env: Environment, workload: TpccLite, max_retries: int = 8) -> None:
        super().__init__(env)
        self.workload = workload
        self.max_retries = max_retries
        self.server = DatabaseServer(env, name="tpcc-db")
        for table in ("warehouses", "districts", "customers", "items",
                      "stock", "orders", "order_lines"):
            self.server.create_table(table, primary_key="id")
        self.server.load("warehouses", workload.initial_warehouses())
        self.server.load("districts", workload.initial_districts())
        self.server.load("customers", workload.initial_customers())
        self.server.load("items", workload.initial_items())
        self.server.load("stock", workload.initial_stock())

    def execute(self, op) -> Generator:
        for attempt in range(self.max_retries):
            txn = yield from self.server.begin(SER)
            try:
                if isinstance(op, NewOrderOp):
                    yield from self._new_order(txn, op)
                elif isinstance(op, PaymentOp):
                    yield from self._payment(txn, op)
                else:
                    yield from self._order_status(txn, op)
                yield from self.server.commit(txn)
                self.ledger.apply(op.op_id)
                return
            except TransactionAborted:
                yield from self.server.abort(txn)
                yield self.env.timeout(1.0 + attempt)
        raise RuntimeError(f"{op.op_id}: retries exhausted")

    def _new_order(self, txn, op: NewOrderOp) -> Generator:
        district_id = f"{op.warehouse}:{op.district}"
        district = yield from self.server.get(txn, "districts", district_id)
        order_number = district["next_o_id"]
        yield from self.server.update(
            txn, "districts", district_id, {"next_o_id": order_number + 1}
        )
        order_id = f"{district_id}:{order_number}"
        for item, supply, quantity in op.lines:
            stock_id = f"{supply}:{item}"
            stock = yield from self.server.get(txn, "stock", stock_id)
            new_quantity = stock["quantity"] - quantity
            if new_quantity < 0:
                new_quantity += 1000  # TPC-C style restock, never negative
            yield from self.server.update(
                txn, "stock", stock_id, {"quantity": new_quantity}
            )
            yield from self.server.insert(
                txn, "order_lines",
                {"id": f"{order_id}:{item}", "order_id": order_id,
                 "item": item, "quantity": quantity},
            )
        yield from self.server.insert(
            txn, "orders",
            {"id": order_id, "customer": f"{district_id}:{op.customer}",
             "ol_cnt": len(op.lines)},
        )
        customer_id = f"{district_id}:{op.customer}"
        yield from self.server.update(
            txn, "customers", customer_id, {"last_order": order_id}
        )

    def _payment(self, txn, op: PaymentOp) -> Generator:
        warehouse = yield from self.server.get(txn, "warehouses", op.warehouse)
        yield from self.server.update(
            txn, "warehouses", op.warehouse, {"ytd": warehouse["ytd"] + op.amount}
        )
        district_id = f"{op.warehouse}:{op.district}"
        district = yield from self.server.get(txn, "districts", district_id)
        yield from self.server.update(
            txn, "districts", district_id, {"ytd": district["ytd"] + op.amount}
        )
        customer_id = f"{op.customer_warehouse}:{op.district}:{op.customer}"
        customer = yield from self.server.get(txn, "customers", customer_id)
        yield from self.server.update(
            txn, "customers", customer_id,
            {"balance": customer["balance"] - op.amount,
             "payment_cnt": customer["payment_cnt"] + 1},
        )

    def _order_status(self, txn, op: OrderStatusOp) -> Generator:
        customer_id = f"{op.warehouse}:{op.district}:{op.customer}"
        customer = yield from self.server.get(txn, "customers", customer_id)
        last_order = customer.get("last_order")
        if last_order is not None:
            yield from self.server.get(txn, "orders", last_order)

    def final_state(self) -> dict:
        engine = self.server.engine
        return {
            "warehouses": engine.all_rows("warehouses"),
            "districts": engine.all_rows("districts"),
            "customers": engine.all_rows("customers"),
            "stock": engine.all_rows("stock"),
            "orders": engine.all_rows("orders"),
            "order_lines": engine.all_rows("order_lines"),
        }


class _KvTpccCommon(KernelApp):
    """Shared key naming + final-state assembly for KV-based builds."""

    workload: TpccLite

    @staticmethod
    def k_warehouse(w: int) -> str:
        return f"w:{w}"

    @staticmethod
    def k_district(w: int, d: int) -> str:
        return f"d:{w}:{d}"

    @staticmethod
    def k_customer(w: int, d: int, c: int) -> str:
        return f"c:{w}:{d}:{c}"

    @staticmethod
    def k_stock(w: int, i: int) -> str:
        return f"s:{w}:{i}"

    def seed_items(self) -> dict:
        data = {}
        for row in self.workload.initial_warehouses():
            data[self.k_warehouse(row["id"])] = {"ytd": 0}
        for row in self.workload.initial_districts():
            data[self.k_district(row["warehouse"], int(row["id"].split(":")[1]))] = {
                "ytd": 0, "next_o_id": 1,
            }
        for row in self.workload.initial_customers():
            data[self.k_customer(row["warehouse"], row["district"],
                                 int(row["id"].split(":")[2]))] = {
                "balance": 0, "payment_cnt": 0, "last_order": None,
            }
        for row in self.workload.initial_stock():
            data[self.k_stock(row["warehouse"], row["item"])] = {
                "quantity": row["quantity"],
            }
        return data

    def assemble_state(self, read) -> dict:
        """Build the invariant snapshot via a ``read(key) -> value`` fn."""
        warehouses, districts, customers, stock = [], [], [], []
        orders, order_lines = [], []
        for row in self.workload.initial_warehouses():
            value = read(self.k_warehouse(row["id"])) or {"ytd": 0}
            warehouses.append({"id": row["id"], "ytd": value["ytd"]})
        for row in self.workload.initial_districts():
            d = int(row["id"].split(":")[1])
            value = read(self.k_district(row["warehouse"], d)) or {"ytd": 0}
            districts.append(
                {"id": row["id"], "warehouse": row["warehouse"], "ytd": value["ytd"]}
            )
        for row in self.workload.initial_customers():
            c = int(row["id"].split(":")[2])
            value = read(self.k_customer(row["warehouse"], row["district"], c)) or {}
            customers.append({"id": row["id"], **value})
            for order in value.get("orders", []):
                orders.append(order)
                for line in order.get("lines", []):
                    order_lines.append({"order_id": order["id"], **line})
        for row in self.workload.initial_stock():
            value = read(self.k_stock(row["warehouse"], row["item"])) or {
                "quantity": row["quantity"]
            }
            stock.append({"id": row["id"], "quantity": value["quantity"]})
        return {
            "warehouses": warehouses,
            "districts": districts,
            "customers": customers,
            "stock": stock,
            "orders": orders,
            "order_lines": order_lines,
        }


class WorkflowTpcc(_KvTpccCommon):
    """TPC-C-lite as Beldi-style OCC workflows over the shared KV."""

    def __init__(self, env: Environment, workload: TpccLite, max_retries: int = 24) -> None:
        super().__init__(env)
        self.workload = workload
        self.kv = SharedKv(env, rtt=Latency.intra_zone())
        for key, value in self.seed_items().items():
            self.kv.store.put(key, value)
        self.engine = TransactionalWorkflows(env, kv=self.kv, max_retries=max_retries)
        self.engine.register("new_order", self._new_order)
        self.engine.register("payment", self._payment)
        self.engine.register("order_status", self._order_status)

    def execute(self, op) -> Generator:
        if isinstance(op, NewOrderOp):
            name = "new_order"
        elif isinstance(op, PaymentOp):
            name = "payment"
        else:
            name = "order_status"
        yield from self.engine.run(name, op, workflow_id=op.op_id)
        self.ledger.apply(op.op_id)

    def _new_order(self, ctx, op: NewOrderOp):
        district_key = self.k_district(op.warehouse, op.district)
        district = yield from ctx.read(district_key)
        order_number = district["next_o_id"]
        ctx.write(district_key, {**district, "next_o_id": order_number + 1})
        order_id = f"{op.warehouse}:{op.district}:{order_number}"
        lines = []
        for item, supply, quantity in op.lines:
            stock_key = self.k_stock(supply, item)
            stock = yield from ctx.read(stock_key)
            new_quantity = stock["quantity"] - quantity
            if new_quantity < 0:
                new_quantity += 1000
            ctx.write(stock_key, {"quantity": new_quantity})
            lines.append({"item": item, "quantity": quantity})
        customer_key = self.k_customer(op.warehouse, op.district, op.customer)
        customer = yield from ctx.read(customer_key)
        orders = list(customer.get("orders", []))
        orders.append({"id": order_id, "ol_cnt": len(op.lines), "lines": lines})
        ctx.write(
            customer_key,
            {**customer, "orders": orders, "last_order": order_id},
        )
        return order_id

    def _payment(self, ctx, op: PaymentOp):
        warehouse_key = self.k_warehouse(op.warehouse)
        warehouse = yield from ctx.read(warehouse_key)
        ctx.write(warehouse_key, {"ytd": warehouse["ytd"] + op.amount})
        district_key = self.k_district(op.warehouse, op.district)
        district = yield from ctx.read(district_key)
        ctx.write(district_key, {**district, "ytd": district["ytd"] + op.amount})
        customer_key = self.k_customer(op.customer_warehouse, op.district, op.customer)
        customer = yield from ctx.read(customer_key)
        ctx.write(
            customer_key,
            {**customer,
             "balance": customer["balance"] - op.amount,
             "payment_cnt": customer["payment_cnt"] + 1},
        )
        return True

    def _order_status(self, ctx, op: OrderStatusOp):
        customer_key = self.k_customer(op.warehouse, op.district, op.customer)
        customer = yield from ctx.read(customer_key)
        return customer.get("last_order")

    def final_state(self) -> dict:
        return self.assemble_state(lambda key: self.kv.store.get(key))


class StyxTpcc(_KvTpccCommon):
    """TPC-C-lite on the deterministic transactional dataflow."""

    def __init__(self, env: Environment, workload: TpccLite, **engine_kwargs) -> None:
        super().__init__(env)
        self.workload = workload
        engine_kwargs.setdefault("epoch_interval", 5.0)
        self.engine = TransactionalDataflow(env, **engine_kwargs)
        self.engine.register("new_order", self._new_order)
        self.engine.register("payment", self._payment)
        self.engine.register("order_status", self._order_status)
        for key, value in self.seed_items().items():
            self.engine._state[self.engine._partition(key)][key] = value
        self.engine.start()

    def keys_of(self, op) -> list[str]:
        """The declared key set enabling conflict-free waves."""
        if isinstance(op, NewOrderOp):
            keys = [self.k_district(op.warehouse, op.district),
                    self.k_customer(op.warehouse, op.district, op.customer)]
            keys.extend(self.k_stock(supply, item) for item, supply, _q in op.lines)
            return keys
        if isinstance(op, PaymentOp):
            return [
                self.k_warehouse(op.warehouse),
                self.k_district(op.warehouse, op.district),
                self.k_customer(op.customer_warehouse, op.district, op.customer),
            ]
        return [self.k_customer(op.warehouse, op.district, op.customer)]

    def execute(self, op) -> Generator:
        if isinstance(op, NewOrderOp):
            name = "new_order"
        elif isinstance(op, PaymentOp):
            name = "payment"
        else:
            name = "order_status"
        future = self.engine.submit(name, self.keys_of(op)[0], op, keys=self.keys_of(op))
        yield future
        self.ledger.apply(op.op_id)

    def _new_order(self, ctx, key, op: NewOrderOp):
        district_key = self.k_district(op.warehouse, op.district)
        district = ctx.get(district_key)
        order_number = district["next_o_id"]
        ctx.put(district_key, {**district, "next_o_id": order_number + 1})
        order_id = f"{op.warehouse}:{op.district}:{order_number}"
        lines = []
        for item, supply, quantity in op.lines:
            stock_key = self.k_stock(supply, item)
            stock = ctx.get(stock_key)
            new_quantity = stock["quantity"] - quantity
            if new_quantity < 0:
                new_quantity += 1000
            ctx.put(stock_key, {"quantity": new_quantity})
            lines.append({"item": item, "quantity": quantity})
        customer_key = self.k_customer(op.warehouse, op.district, op.customer)
        customer = ctx.get(customer_key)
        orders = list(customer.get("orders", []))
        orders.append({"id": order_id, "ol_cnt": len(op.lines), "lines": lines})
        ctx.put(customer_key, {**customer, "orders": orders, "last_order": order_id})
        return order_id
        yield  # pragma: no cover

    def _payment(self, ctx, key, op: PaymentOp):
        warehouse_key = self.k_warehouse(op.warehouse)
        warehouse = ctx.get(warehouse_key)
        ctx.put(warehouse_key, {"ytd": warehouse["ytd"] + op.amount})
        district_key = self.k_district(op.warehouse, op.district)
        district = ctx.get(district_key)
        ctx.put(district_key, {**district, "ytd": district["ytd"] + op.amount})
        customer_key = self.k_customer(op.customer_warehouse, op.district, op.customer)
        customer = ctx.get(customer_key)
        ctx.put(
            customer_key,
            {**customer,
             "balance": customer["balance"] - op.amount,
             "payment_cnt": customer["payment_cnt"] + 1},
        )
        return True
        yield  # pragma: no cover

    def _order_status(self, ctx, key, op: OrderStatusOp):
        customer = ctx.get(self.k_customer(op.warehouse, op.district, op.customer))
        return customer.get("last_order")
        yield  # pragma: no cover

    def final_state(self) -> dict:
        return self.assemble_state(lambda key: self.engine.state_of(key))

"""The invoicing app: gap-free invoice numbering as an :class:`AppSpec`.

One handler allocates the next sequence number and writes the invoice
that uses it, atomically — so committed state can never show a gap, no
matter what crashes, migrations, or failovers interleave.  The spec also
ships the classic *unsound* variant as ``steps``: allocate the counter
in one transaction, insert the invoice in a second.  Any failure between
the two burns a number forever — the gap the oracle must catch when a
transaction-per-step binder runs the split under chaos.

Invoices are keyed by operation id (the number is a field), so the write
set is declarable before the number is known — the declared-key
discipline that lets every binder route the transaction up front.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.core import (
    AppSpec,
    EntitySpec,
    GapFreeSequenceSpec,
    HandlerSpec,
)
from repro.workloads.invoicing import InvoiceOp, InvoicingWorkload

COUNTER = "invoice"


def _invoice_row(op: InvoiceOp, number: int) -> dict:
    return {
        "id": op.op_id,
        "number": number,
        "customer": op.customer,
        "amount": op.amount,
    }


def _issue(ctx, op: InvoiceOp) -> Generator:
    # Idempotent by construction: a client (or app node) that crashed
    # after commit and re-runs the operation gets its original number
    # back instead of burning a fresh one.
    existing = yield from ctx.get("invoices", op.op_id)
    if existing is not None:
        return existing["number"]
    counter = yield from ctx.get("counters", COUNTER)
    number = counter["next"]
    yield from ctx.put("counters", COUNTER, {"id": COUNTER, "next": number + 1})
    yield from ctx.put("invoices", op.op_id, _invoice_row(op, number))
    return number


def _step_allocate(ctx, op: InvoiceOp) -> Generator:
    """Unsound step 1: commit the counter increment on its own."""
    counter = yield from ctx.get("counters", COUNTER)
    number = counter["next"]
    yield from ctx.put("counters", COUNTER, {"id": COUNTER, "next": number + 1})
    ctx.scratch["number"] = number
    return number


def _step_insert(ctx, op: InvoiceOp) -> Generator:
    """Unsound step 2: use the number committed by step 1.

    Anything that dies between the two commits burns the number — the
    gap-free invariant catches exactly this.
    """
    number = ctx.scratch["number"]
    yield from ctx.put("invoices", op.op_id, _invoice_row(op, number))
    return number


def _reads(op: InvoiceOp):
    return [("counters", COUNTER)]


def _writes(op: InvoiceOp):
    return [("counters", COUNTER), ("invoices", op.op_id)]


def invoicing_spec(workload: InvoicingWorkload) -> AppSpec:
    return AppSpec(
        name="invoicing",
        entities=[EntitySpec("invoices"), EntitySpec("counters")],
        handlers=[
            HandlerSpec(
                "invoice", _issue, _reads, _writes,
                steps=(_step_allocate, _step_insert),
            )
        ],
        invariants=[
            GapFreeSequenceSpec("invoices", "number", "counters", COUNTER),
        ],
        initial_rows=workload.initial_rows(),
        kind="invoice",
        effect_entity="invoices",
    )

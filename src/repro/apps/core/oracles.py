"""The oracle layer: every app invariant becomes a chaos oracle.

Declaring an app once makes it chaos-fuzzable on every runtime: each
:class:`~repro.apps.core.spec.InvariantSpec` compiles to a
:class:`repro.chaos.oracles.Oracle` over the kernel snapshot, and apps
with an op-keyed effect entity additionally get the history-aware
applied-exactly-once oracle (``ok`` ⇒ the effect row exists, ``fail`` ⇒
it does not, ``info`` ⇒ either — the Jepsen outcome discipline).

The state invariants shipped by the kernel (conservation, double-entry,
gap-free sequence, capacity, causal audit) are all *info-robust* by
construction: an unknown-outcome operation either applied atomically or
not at all, and the invariant holds in both worlds — so no info-subset
search is needed, unlike :class:`repro.chaos.oracles.TransferExactlyOnceOracle`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.apps.core.spec import AppSpec, InvariantSpec
from repro.transactions.anomalies import Violation

if TYPE_CHECKING:  # chaos imports back into repro.apps; keep this edge lazy
    from repro.chaos.history import History
    from repro.chaos.oracles import Oracle

__all__ = ["AppliedExactlyOracle", "SpecOracle", "compile_oracles"]


class SpecOracle:
    """A state invariant, judged against the final kernel snapshot.

    Structurally a :class:`repro.chaos.oracles.Oracle` (the runner only
    ever calls ``check(history, final_state)``); not a subclass, so the
    kernel never imports the chaos package at runtime.
    """

    def __init__(self, invariant: InvariantSpec) -> None:
        self.invariant = invariant
        self.name = invariant.name

    def check(self, history: "History", final_state: Any) -> list[Violation]:
        return self.invariant.check(final_state)


class AppliedExactlyOracle:
    """Effect rows (keyed by op id) agree with what clients were told.

    Every acknowledged operation must have left exactly its effect row
    (rows are unique by primary key, so presence *is* exactly-once at the
    state level); every failed operation must have left none; an
    unknown-outcome operation may have done either.
    """

    def __init__(self, entity: str, kind: str) -> None:
        self.entity = entity
        self.kind = kind
        self.name = f"applied_exactly({entity})"

    def check(self, history: "History", final_state: Any) -> list[Violation]:
        present = {row["id"] for row in final_state.get(self.entity, [])}
        violations = []
        for op_id in history.ok_ops(self.kind):
            if op_id not in present:
                violations.append(Violation(
                    self.name,
                    f"{op_id}: acknowledged but no {self.entity} row committed",
                ))
        for op_id in history.fail_ops(self.kind):
            if op_id in present:
                violations.append(Violation(
                    self.name,
                    f"{op_id}: reported failed but a {self.entity} row committed",
                ))
        return violations


def compile_oracles(spec: AppSpec) -> list["Oracle"]:
    """One oracle per invariant, plus applied-exactly when declarable."""
    oracles: list["Oracle"] = [SpecOracle(inv) for inv in spec.invariants]
    if spec.effect_entity is not None:
        oracles.append(AppliedExactlyOracle(spec.effect_entity, spec.kind))
    return oracles

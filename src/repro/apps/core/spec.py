"""The model layer: one declarative application definition.

An :class:`AppSpec` is everything a transactional cloud application *is*,
stated once and independent of any runtime:

- **entities** — named collections of keyed rows (the unit of state a
  runtime may partition, replicate, or turn into an actor/service);
- **handlers** — the stored procedures, written as generators against a
  :class:`~repro.apps.core.base.KernelContext` with *declared* read/write
  key sets (the same discipline :mod:`repro.parallel.procs` enforces:
  an access the planner cannot see is an access it cannot make safe);
- **invariants** — first-class correctness statements (conservation,
  gap-free sequences, capacity bounds, causal audit consistency) attached
  to the application, not to any runtime or benchmark.

Binders (:mod:`repro.apps.core.binders`) deploy one spec onto the
monolith database, microservices, actors, transactional dataflow, and
FaaS workflows; the oracle layer (:mod:`repro.apps.core.oracles`)
compiles each invariant into a :mod:`repro.chaos` oracle, so declaring an
app once makes it chaos-fuzzable on every runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Optional

from repro.transactions.anomalies import Invariant, Violation

#: ``(entity, key)`` — the unit of declared access.
KeyRef = tuple[str, Hashable]


@dataclass(frozen=True)
class EntitySpec:
    """One named collection of keyed rows."""

    name: str
    key: str = "id"


@dataclass(frozen=True)
class HandlerSpec:
    """One stored procedure with its declared access sets.

    ``body(ctx, op)`` is a generator stored procedure.  ``reads`` and
    ``writes`` map an operation to the exact ``(entity, key)`` sets the
    body may touch — binders use them to route, lock, partition, and (for
    queue-oriented runtimes) declare the transaction's key set up front.

    ``steps`` (optional) splits the body into a sequence of bodies that a
    transaction-per-step binder runs as *separate* transactions sharing a
    ``scratch`` dict — the escape hatch that expresses intentionally
    unsound variants (e.g. "allocate the invoice number in one
    transaction, insert the invoice in another") whose anomalies the
    oracles must catch.  Atomic binders ignore step boundaries.

    ``compensate`` (optional) is a generator body undoing a completed
    execution — the application-level inverse a saga binder needs.
    """

    name: str
    body: Callable
    reads: Callable[[Any], Iterable[KeyRef]]
    writes: Callable[[Any], Iterable[KeyRef]]
    steps: Optional[tuple[Callable, ...]] = None
    compensate: Optional[Callable] = None

    def declared(self, op: Any) -> list[KeyRef]:
        """The full declared key set, reads before writes, de-duplicated."""
        seen: dict[KeyRef, None] = {}
        for ref in list(self.reads(op)) + list(self.writes(op)):
            seen[ref] = None
        return list(seen)


class AppSpec:
    """One application: entities + handlers + invariants + initial data."""

    def __init__(
        self,
        name: str,
        entities: Iterable[EntitySpec],
        handlers: Iterable[HandlerSpec],
        invariants: Iterable["InvariantSpec"] = (),
        initial_rows: Optional[dict[str, list[dict]]] = None,
        route: Optional[Callable[[Any], str]] = None,
        kind: str = "op",
        effect_entity: Optional[str] = None,
    ) -> None:
        self.name = name
        self.entities: dict[str, EntitySpec] = {e.name: e for e in entities}
        self.handlers: dict[str, HandlerSpec] = {h.name: h for h in handlers}
        self.invariants: list[InvariantSpec] = list(invariants)
        self.initial_rows: dict[str, list[dict]] = dict(initial_rows or {})
        for entity in self.initial_rows:
            if entity not in self.entities:
                raise ValueError(f"initial rows for unknown entity {entity!r}")
        self._route = route
        #: operation kind label for histories/metrics (e.g. "posting")
        self.kind = kind
        #: entity whose rows are keyed by op id (one row per applied op);
        #: enables the applied-exactly-once history oracle.
        self.effect_entity = effect_entity
        if effect_entity is not None and effect_entity not in self.entities:
            raise ValueError(f"effect_entity {effect_entity!r} is not an entity")
        #: runtime name -> factory(env, spec, **opts); lets an app keep a
        #: hand-tuned implementation for a runtime while the kernel still
        #: owns the spec, the ledger, and the oracle compilation.
        self.native_binders: dict[str, Callable] = {}

    def entity(self, name: str) -> EntitySpec:
        return self.entities[name]

    def handler_for(self, op: Any) -> HandlerSpec:
        """Route an operation to its handler.

        Uses the explicit ``route`` function when given, else the
        operation's ``kind`` attribute, else the spec's single handler.
        """
        if self._route is not None:
            return self.handlers[self._route(op)]
        kind = getattr(op, "kind", None)
        if kind in self.handlers:
            return self.handlers[kind]
        if len(self.handlers) == 1:
            return next(iter(self.handlers.values()))
        raise KeyError(
            f"cannot route {op!r}: spec {self.name!r} has handlers "
            f"{sorted(self.handlers)} and no route function"
        )

    def state_invariants(self) -> list[Invariant]:
        """The invariants as plain state-snapshot checkers."""
        return list(self.invariants)


# ---------------------------------------------------------------------------
# Invariant specs
#
# Each is a plain Invariant over the kernel state snapshot (a dict
# ``entity -> list[rows]``), plus enough structure for the oracle layer to
# compile it into a history-aware chaos oracle and a live probe.
# ---------------------------------------------------------------------------


class InvariantSpec(Invariant):
    """An application invariant, stated against the kernel snapshot.

    ``check(state)`` judges a ``{entity: [rows]}`` snapshot.  The oracle
    layer wraps it with history awareness (see
    :func:`repro.apps.core.oracles.compile_oracles`); binders may also run
    it mid-workload as a live probe via :meth:`probe_value`.
    """

    #: entities this invariant reads; probes fetch only these.
    entities: tuple[str, ...] = ()

    def check(self, state: dict[str, list[dict]]) -> list[Violation]:
        raise NotImplementedError

    def probe_value(self, state: dict[str, list[dict]]) -> Any:
        """A scalar observation a live probe records (None = no probe)."""
        return None


class ConservationSpec(InvariantSpec):
    """Sum of ``field`` over ``entity`` rows equals a constant."""

    def __init__(self, entity: str, field_name: str, expected_total: float) -> None:
        self.entity = entity
        self.field_name = field_name
        self.expected_total = expected_total
        self.entities = (entity,)
        self.name = f"conservation({entity}.{field_name})"

    def check(self, state: dict[str, list[dict]]) -> list[Violation]:
        total = sum(row[self.field_name] for row in state.get(self.entity, []))
        if total != self.expected_total:
            return [Violation(
                self.name,
                f"sum({self.entity}.{self.field_name}) = {total}, expected "
                f"{self.expected_total} (drift {total - self.expected_total:+})",
            )]
        return []

    def probe_value(self, state: dict[str, list[dict]]) -> Any:
        return sum(row[self.field_name] for row in state.get(self.entity, []))


class DoubleEntrySpec(InvariantSpec):
    """Every balance delta is explained by balanced postings.

    The double-entry discipline: each posting row carries both legs
    (``debit_field`` account loses ``amount_field``, ``credit_field``
    account gains it), so per-account::

        balance - initial == sum(credits) - sum(debits)

    A balance that moved without a posting (or a posting without its
    balance effect — a torn application) leaves a residual here, which
    makes this the sharpest state-only detector for partial application.
    """

    def __init__(
        self,
        accounts_entity: str,
        postings_entity: str,
        initial: dict[Hashable, int],
        balance_field: str = "balance",
        debit_field: str = "src",
        credit_field: str = "dst",
        amount_field: str = "amount",
    ) -> None:
        self.accounts_entity = accounts_entity
        self.postings_entity = postings_entity
        self.initial = dict(initial)
        self.balance_field = balance_field
        self.debit_field = debit_field
        self.credit_field = credit_field
        self.amount_field = amount_field
        self.entities = (accounts_entity, postings_entity)
        self.name = f"double_entry({accounts_entity}<-{postings_entity})"

    def check(self, state: dict[str, list[dict]]) -> list[Violation]:
        delta: dict[Hashable, int] = {}
        for row in state.get(self.postings_entity, []):
            amount = row[self.amount_field]
            delta[row[self.debit_field]] = delta.get(row[self.debit_field], 0) - amount
            delta[row[self.credit_field]] = delta.get(row[self.credit_field], 0) + amount
        violations = []
        for row in state.get(self.accounts_entity, []):
            account = row["id"]
            expected = self.initial.get(account, 0) + delta.get(account, 0)
            if row[self.balance_field] != expected:
                violations.append(Violation(
                    self.name,
                    f"{account!r}: balance {row[self.balance_field]} != initial "
                    f"{self.initial.get(account, 0)} + posted delta "
                    f"{delta.get(account, 0):+}",
                ))
        return violations


class GapFreeSequenceSpec(InvariantSpec):
    """Allocated sequence numbers are contiguous: no gaps, no duplicates.

    ``entity`` rows carry ``number_field``; ``counter_entity[counter_key]``
    holds the allocator's ``counter_field`` (next number to hand out).
    Committed state must show exactly the numbers ``1..next-1``, each
    once — an allocator that commits the increment separately from the
    row that uses it (the classic unsound split) leaves a gap here the
    moment anything fails between the two.
    """

    def __init__(
        self,
        entity: str,
        number_field: str,
        counter_entity: str,
        counter_key: Hashable,
        counter_field: str = "next",
    ) -> None:
        self.entity = entity
        self.number_field = number_field
        self.counter_entity = counter_entity
        self.counter_key = counter_key
        self.counter_field = counter_field
        self.entities = (entity, counter_entity)
        self.name = f"gap_free({entity}.{number_field})"

    def check(self, state: dict[str, list[dict]]) -> list[Violation]:
        numbers = sorted(
            row[self.number_field] for row in state.get(self.entity, [])
        )
        violations: list[Violation] = []
        if len(set(numbers)) != len(numbers):
            duplicates = sorted(
                n for n in set(numbers) if numbers.count(n) > 1
            )
            violations.append(Violation(
                self.name, f"duplicate sequence numbers: {duplicates}",
            ))
        expected = list(range(1, len(set(numbers)) + 1))
        if sorted(set(numbers)) != expected:
            gaps = sorted(set(range(1, (max(numbers) if numbers else 0) + 1)) - set(numbers))
            violations.append(Violation(
                self.name,
                f"sequence has gap(s) at {gaps}: allocated numbers are not "
                f"contiguous from 1",
            ))
        counter = next(
            (row for row in state.get(self.counter_entity, [])
             if row["id"] == self.counter_key),
            None,
        )
        if counter is not None and numbers:
            handed_out = counter[self.counter_field] - 1
            if max(numbers) > handed_out:
                violations.append(Violation(
                    self.name,
                    f"number {max(numbers)} in use but counter says only "
                    f"{handed_out} were ever allocated",
                ))
        return violations

    def probe_value(self, state: dict[str, list[dict]]) -> Any:
        return len(state.get(self.entity, []))


class CapacityBoundSpec(InvariantSpec):
    """A per-row numeric field stays within ``[minimum, bound_field]``.

    With only ``minimum`` this is the non-negative-stock bound; with
    ``bound_field`` it is the never-oversold bound (e.g. ``reserved``
    must not exceed ``capacity``).
    """

    def __init__(
        self,
        entity: str,
        field_name: str,
        minimum: Optional[float] = 0,
        bound_field: Optional[str] = None,
    ) -> None:
        self.entity = entity
        self.field_name = field_name
        self.minimum = minimum
        self.bound_field = bound_field
        self.entities = (entity,)
        self.name = f"capacity({entity}.{field_name})"

    def check(self, state: dict[str, list[dict]]) -> list[Violation]:
        violations = []
        for row in state.get(self.entity, []):
            value = row[self.field_name]
            if self.minimum is not None and value < self.minimum:
                violations.append(Violation(
                    self.name,
                    f"{row.get('id')!r}: {self.field_name} = {value} < {self.minimum}",
                ))
            if self.bound_field is not None and value > row[self.bound_field]:
                violations.append(Violation(
                    self.name,
                    f"{row.get('id')!r}: {self.field_name} = {value} > "
                    f"{self.bound_field} = {row[self.bound_field]}",
                ))
        return violations


class CausalAuditSpec(InvariantSpec):
    """The audit trail is causally consistent with the writes it describes.

    Every effect row (keyed by op id) must have exactly one audit entry
    whose recorded fields match it, and every audit entry must describe an
    effect that exists — an audit log that mentions a write which never
    landed (or misses one that did) broke the causal tie between the
    trail and the data (the C12/Antipode concern, stated as app state).
    """

    def __init__(
        self,
        effect_entity: str,
        audit_entity: str,
        match_fields: tuple[str, ...] = (),
    ) -> None:
        self.effect_entity = effect_entity
        self.audit_entity = audit_entity
        self.match_fields = match_fields
        self.entities = (effect_entity, audit_entity)
        self.name = f"causal_audit({audit_entity}->{effect_entity})"

    def check(self, state: dict[str, list[dict]]) -> list[Violation]:
        effects = {row["id"]: row for row in state.get(self.effect_entity, [])}
        audits = {row["id"]: row for row in state.get(self.audit_entity, [])}
        violations = []
        for op_id in sorted(set(effects) - set(audits), key=repr):
            violations.append(Violation(
                self.name, f"{op_id!r}: effect committed with no audit entry",
            ))
        for op_id in sorted(set(audits) - set(effects), key=repr):
            violations.append(Violation(
                self.name, f"{op_id!r}: audit entry describes no committed effect",
            ))
        for op_id in sorted(set(audits) & set(effects), key=repr):
            for field_name in self.match_fields:
                if audits[op_id].get(field_name) != effects[op_id].get(field_name):
                    violations.append(Violation(
                        self.name,
                        f"{op_id!r}: audit {field_name}="
                        f"{audits[op_id].get(field_name)!r} != effect "
                        f"{effects[op_id].get(field_name)!r}",
                    ))
        return violations

"""Database binders: the monolith baseline and the sharded cluster.

Entities map to tables; a handler body runs inside one serializable
local (or distributed) transaction via the shared retry discipline.
``transaction_per_step=True`` honors a handler's ``steps`` split —
running each step as its *own* transaction — which is exactly the
unsound allocate-then-insert pattern the gap-free oracle must catch.
"""

from __future__ import annotations

from typing import Any, Generator, Hashable, Optional

from repro.apps.core.base import AppUncertain, Binder, KernelContext, register_binder
from repro.apps.core.retry import with_txn
from repro.apps.core.spec import AppSpec, HandlerSpec
from repro.db import DatabaseServer, IsolationLevel
from repro.db.errors import FencedOut, TransactionAborted
from repro.db.sharding import ShardedDatabase
from repro.replication.errors import NoLeader, NotLeader, ReplicationError
from repro.sim import Environment

SER = IsolationLevel.SERIALIZABLE


class _TableCtx(KernelContext):
    """Entity access over one open (possibly distributed) transaction."""

    def __init__(self, env, op, handler, db, txn, scratch=None) -> None:
        super().__init__(env, op, handler, scratch)
        self.db = db
        self.txn = txn

    def _get(self, entity: str, key: Hashable) -> Generator:
        row = yield from self.db.get(self.txn, entity, key)
        return dict(row) if row is not None else None

    def _put(self, entity: str, key: Hashable, row: dict) -> Generator:
        yield from self.db.put(self.txn, entity, key, row)

    def _delete(self, entity: str, key: Hashable) -> Generator:
        yield from self.db.delete(self.txn, entity, key)


@register_binder
class DbBinder(Binder):
    """One app on the monolith database server (the §3 baseline)."""

    runtime = "db"

    def __init__(
        self,
        env: Environment,
        spec: AppSpec,
        isolation: IsolationLevel = SER,
        retries: int = 16,
        connections: int = 32,
        transaction_per_step: bool = False,
    ) -> None:
        super().__init__(env, spec)
        self.isolation = isolation
        self.retries = retries
        self.transaction_per_step = transaction_per_step
        self.sound = not transaction_per_step
        self.db = DatabaseServer(env, name=f"{spec.name}-db", connections=connections)
        for entity in spec.entities.values():
            self.db.create_table(entity.name, primary_key=entity.key)
        for entity_name, rows in spec.initial_rows.items():
            self.db.load(entity_name, [dict(row) for row in rows])

    def setup(self) -> Generator:
        return
        yield  # pragma: no cover

    def execute(self, op: Any) -> Generator:
        handler = self.handler_for(op)
        bodies = (
            handler.steps
            if self.transaction_per_step and handler.steps
            else (handler.body,)
        )
        scratch: dict = {}
        result = None
        for body in bodies:
            result = yield from with_txn(
                self,
                self._txn_body(handler, op, body, scratch),
                retries=self.retries,
                isolation=self.isolation,
            )
        self.record_effect(op)
        return result

    def _txn_body(self, handler: HandlerSpec, op: Any, body, scratch: dict):
        def run(txn):
            ctx = _TableCtx(self.env, op, handler, self.db, txn, scratch)
            result = yield from body(ctx, op)
            return result

        return run

    def snapshot(self) -> dict[str, list[dict]]:
        return {
            entity: self.sorted_rows(
                (dict(row) for row in self.db.engine.all_rows(entity)), entity
            )
            for entity in self.spec.entities
        }


@register_binder
class ShardedDbBinder(Binder):
    """One app on the sharded (optionally quorum-replicated) database.

    Rows route by key across shards; cross-entity handlers become 2PC
    across the touched shards, and with replication enabled each shard
    is a quorum group with fenced leadership — so the binder surfaces
    the cluster's full outcome vocabulary: clean aborts retry, lost
    leadership retries after re-election, and an undeliverable commit
    decision raises :class:`AppUncertain` (the Jepsen ``info`` class).
    """

    runtime = "cluster"

    def __init__(
        self,
        env: Environment,
        spec: AppSpec,
        db: Optional[ShardedDatabase] = None,
        num_shards: int = 2,
        retries: int = 16,
        transaction_per_step: bool = False,
        **db_opts,
    ) -> None:
        super().__init__(env, spec)
        self.retries = retries
        self.transaction_per_step = transaction_per_step
        self.sound = not transaction_per_step
        if db is None:
            # Handler bodies dictate key-access order, so two cross-shard
            # transactions can close a waits-for cycle no single shard's
            # lock manager can see; bounded lock waits break such cycles
            # into definite aborts the retry loop absorbs.
            db_opts.setdefault("lock_wait_timeout_ms", 300.0)
            # Reference-mode grants, deliberately: synchronous (fast-path)
            # grants let a deadlock-victim retry re-take its first lock in
            # the same instant it restarts, which can phase-lock one
            # operation into closing — and losing — the same cross-shard
            # cycle on every attempt until its retries exhaust.  The
            # kernel round-trip per grant is what lets a competing waiter
            # slip in and break the lockstep.
            db_opts.setdefault("fast_grants", False)
            db = ShardedDatabase(
                env, num_shards=num_shards, name=f"{spec.name}-cluster",
                **db_opts,
            )
        self.db = db
        for entity in spec.entities.values():
            self.db.create_table(entity.name, primary_key=entity.key)
        for entity_name, rows in spec.initial_rows.items():
            self.db.load(entity_name, [dict(row) for row in rows])

    def setup(self) -> Generator:
        return
        yield  # pragma: no cover

    def execute(self, op: Any) -> Generator:
        handler = self.handler_for(op)
        bodies = (
            handler.steps
            if self.transaction_per_step and handler.steps
            else (handler.body,)
        )
        scratch: dict = {}
        result = None
        for body in bodies:
            result = yield from self._run_txn(handler, op, body, scratch)
        self.record_effect(op)
        return result

    def _run_txn(self, handler: HandlerSpec, op: Any, body, scratch: dict) -> Generator:
        op_id = getattr(op, "op_id", op)
        for attempt in range(self.retries):
            txn = self.db.begin(SER)
            try:
                ctx = _TableCtx(self.env, op, handler, self.db, txn, scratch)
                result = yield from body(ctx, op)
                yield from self.db.commit(txn)
                return result
            except TransactionAborted:
                self.db.abort(txn)
                yield self.env.timeout(1.0 * (attempt + 1))
            except (NotLeader, NoLeader):
                # Definite clean abort: leadership moved (or an election is
                # in flight) before anything replicated.  Back off long
                # enough for a new leader to emerge, then retry.
                self.db.abort(txn)
                yield self.env.timeout(5.0 * (attempt + 1))
            except (ReplicationError, FencedOut) as exc:
                if getattr(txn, "status", None) == "uncertain":
                    raise AppUncertain(
                        f"{op_id}: commit outcome unknown: {exc!r}"
                    ) from exc
                # The abort decision replicated (2PC prepare failure) or the
                # pinned replica died mid-transaction: definitely not
                # committed, safe to retry on whatever leader emerges.
                self.db.abort(txn)
                yield self.env.timeout(5.0 * (attempt + 1))
            except Exception as exc:
                if getattr(txn, "status", None) == "uncertain":
                    raise AppUncertain(
                        f"{op_id}: commit outcome unknown: {exc!r}"
                    ) from exc
                self.db.abort(txn)
                raise
        raise RuntimeError(f"{op_id}: retries exhausted")

    def snapshot(self) -> dict[str, list[dict]]:
        return {
            entity: self.sorted_rows(
                (dict(row) for row in self.db.all_rows(entity)), entity
            )
            for entity in self.spec.entities
        }

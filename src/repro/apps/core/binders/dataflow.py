"""The transactional-dataflow binder (the Styx programming model).

Handlers become registered dataflow functions; an operation is submitted
with its declared key set, executes inside one epoch transaction, and
the future resolves at epoch commit — serializable, exactly-once, and
the closest existing runtime to the kernel's own programming model
(which is the Styx thesis: declare once, compile onto the dataflow).
"""

from __future__ import annotations

from typing import Any, Generator, Hashable

from repro.apps.core.base import (
    AppFailure,
    Binder,
    KernelContext,
    register_binder,
    storage_key,
)
from repro.apps.core.spec import AppSpec, HandlerSpec
from repro.dataflow import TransactionalDataflow, TxnAbort
from repro.sim import Environment


class _DataflowCtx(KernelContext):
    """Entity access over the engine's per-transaction write buffer."""

    def __init__(self, env, op, handler, txn) -> None:
        super().__init__(env, op, handler)
        self.txn = txn

    def _get(self, entity: str, key: Hashable) -> Generator:
        row = self.txn.get(storage_key(entity, key))
        return dict(row) if row is not None else None
        yield  # pragma: no cover

    def _put(self, entity: str, key: Hashable, row: dict) -> Generator:
        self.txn.put(storage_key(entity, key), dict(row))
        return
        yield  # pragma: no cover

    def _delete(self, entity: str, key: Hashable) -> Generator:
        self.txn.delete(storage_key(entity, key))
        return
        yield  # pragma: no cover


@register_binder
class DataflowBinder(Binder):
    """One app on the transactional dataflow engine."""

    runtime = "dataflow"

    def __init__(self, env: Environment, spec: AppSpec, **engine_kwargs) -> None:
        super().__init__(env, spec)
        engine_kwargs.setdefault("epoch_interval", 5.0)
        self.engine = TransactionalDataflow(env, **engine_kwargs)
        for handler in spec.handlers.values():
            self.engine.register(handler.name, self._bind_handler(handler))
        self.engine.register("_load", self._load_fn)
        self._started = False

    def _bind_handler(self, handler: HandlerSpec):
        def fn(txn, key, op):
            ctx = _DataflowCtx(self.env, op, handler, txn)
            try:
                result = yield from handler.body(ctx, op)
            except AppFailure as exc:
                # Abort the epoch transaction; the buffer is discarded and
                # the submitter sees the failure.
                raise TxnAbort(str(exc)) from exc
            return result

        return fn

    @staticmethod
    def _load_fn(txn, key, row):
        txn.put(key, row)
        return True
        yield  # pragma: no cover

    def start(self) -> None:
        if not self._started:
            self.engine.start()
            self._started = True

    def setup(self) -> Generator:
        self.start()
        futures = [
            self.engine.submit(
                "_load", storage_key(entity, key), dict(row),
                keys=[storage_key(entity, key)],
            )
            for entity, key, row in self.initial_rows()
        ]
        for future in futures:
            yield future

    def execute(self, op: Any) -> Generator:
        handler = self.handler_for(op)
        keys = [storage_key(entity, key) for entity, key in handler.declared(op)]
        future = self.engine.submit(handler.name, keys[0], op, keys=keys)
        result = yield future
        self.record_effect(op)
        return result

    def snapshot(self) -> dict[str, list[dict]]:
        state: dict[str, list[dict]] = {name: [] for name in self.spec.entities}
        for skey, value in self.engine.all_state().items():
            entity, _sep, _key = str(skey).partition("/")
            if entity in state and value is not None:
                state[entity].append(dict(value))
        return {
            entity: self.sorted_rows(rows, entity)
            for entity, rows in state.items()
        }

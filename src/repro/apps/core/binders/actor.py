"""The actor binder: every (entity, key) row lives in a virtual actor.

``mode="transaction"`` (sound) runs each handler through the
Orleans-style coordinator's dynamic path: locks on the declared actor
set, reads and writes against tentative state, durable prepare, commit —
ACID at the documented §4.2 performance penalty.  ``mode="plain"``
(unsound control) runs the same handler but applies each buffered write
as an independent actor call: atomic per actor, torn across them.
"""

from __future__ import annotations

from typing import Any, Generator, Hashable

from repro.actors import (
    Actor,
    ActorRuntime,
    ActorTransactionCoordinator,
    CommitUncertain,
    TransactionFailed,
    TxnSession,
    transactional,
)
from repro.apps.core.base import (
    AppUncertain,
    Binder,
    KernelContext,
    register_binder,
    storage_key,
)
from repro.apps.core.spec import AppSpec
from repro.sim import Environment


@transactional
class KernelEntityActor(Actor):
    """A generic row-holder actor: one activation per (entity, key)."""

    initial_state = {"row": None}

    def k_load(self, row):
        """Seed the row durably (setup path)."""
        self.state["row"] = row
        yield from self.save_state()

    def k_get(self):
        """Transactional read (runs against tentative state, no save)."""
        row = self.state.get("row")
        return dict(row) if row is not None else None
        yield  # pragma: no cover

    def k_set(self, row):
        """Transactional write: tentative until the coordinator commits."""
        self.state["row"] = row
        return True
        yield  # pragma: no cover

    def k_delete(self):
        self.state["row"] = None
        return True
        yield  # pragma: no cover

    def k_put(self, row):
        """Uncoordinated durable write (the ``plain`` mode's anti-pattern)."""
        self.state["row"] = row
        yield from self.save_state()
        return True


class _ActorTxnCtx(KernelContext):
    """Handler context over a dynamic coordinator session."""

    def __init__(self, env, op, handler, session: TxnSession) -> None:
        super().__init__(env, op, handler)
        self.session = session

    def _get(self, entity: str, key: Hashable) -> Generator:
        row = yield from self.session.call(
            "KernelEntityActor", storage_key(entity, key), "k_get"
        )
        return row

    def _put(self, entity: str, key: Hashable, row: dict) -> Generator:
        yield from self.session.call(
            "KernelEntityActor", storage_key(entity, key), "k_set", (dict(row),)
        )

    def _delete(self, entity: str, key: Hashable) -> Generator:
        yield from self.session.call(
            "KernelEntityActor", storage_key(entity, key), "k_delete"
        )


class _PlainActorCtx(KernelContext):
    """Uncoordinated context: direct reads, buffered writes."""

    def __init__(self, env, op, handler, runtime: ActorRuntime) -> None:
        super().__init__(env, op, handler)
        self.actors = runtime
        #: (entity, key) -> row-or-None, in write order
        self.writes: dict[tuple, Any] = {}

    def _get(self, entity: str, key: Hashable) -> Generator:
        ref = (entity, key)
        if ref in self.writes:
            row = self.writes[ref]
            return dict(row) if row is not None else None
        row = yield from self.actors.ref(
            "KernelEntityActor", storage_key(entity, key)
        ).call("k_get", retries=2)
        return row

    def _put(self, entity: str, key: Hashable, row: dict) -> Generator:
        self.writes[(entity, key)] = dict(row)
        return
        yield  # pragma: no cover

    def _delete(self, entity: str, key: Hashable) -> Generator:
        self.writes[(entity, key)] = None
        return
        yield  # pragma: no cover


@register_binder
class ActorBinder(Binder):
    """One app on the virtual-actor runtime."""

    runtime = "actor"

    def __init__(
        self,
        env: Environment,
        spec: AppSpec,
        mode: str = "transaction",
        num_silos: int = 3,
        retries: int = 12,
    ) -> None:
        if mode not in ("transaction", "plain"):
            raise ValueError(f"unknown mode {mode!r}")
        super().__init__(env, spec)
        self.mode = mode
        self.retries = retries
        self.sound = mode == "transaction"
        self.actors = ActorRuntime(env, num_silos=num_silos)
        self.actors.register(KernelEntityActor)
        self.coordinator = ActorTransactionCoordinator(self.actors)
        #: every key that may hold a row, for the state snapshot
        self._keys: dict[str, set] = {name: set() for name in spec.entities}

    def setup(self) -> Generator:
        for entity, key, row in self.initial_rows():
            self._keys[entity].add(key)
            yield from self.actors.ref(
                "KernelEntityActor", storage_key(entity, key)
            ).call("k_load", dict(row))

    def execute(self, op: Any) -> Generator:
        handler = self.handler_for(op)
        for entity, key in handler.writes(op):
            self._keys[entity].add(key)
        if self.mode == "transaction":
            idents = [
                ("KernelEntityActor", storage_key(entity, key))
                for entity, key in handler.declared(op)
            ]

            def driver(session):
                ctx = _ActorTxnCtx(self.env, op, handler, session)
                result = yield from handler.body(ctx, op)
                return result

            # Lock timeouts and participant failures surface as
            # TransactionFailed — definite aborts, safe to retry.  Only
            # CommitUncertain (decision may have landed) must not be.
            last: Exception = TransactionFailed("transaction never attempted")
            for attempt in range(self.retries):
                try:
                    result = yield from self.coordinator.execute_dynamic(
                        idents, driver
                    )
                except CommitUncertain as exc:
                    raise AppUncertain(str(exc)) from exc
                except TransactionFailed as exc:
                    last = exc
                    yield self.env.timeout(2.0 * (attempt + 1))
                    continue
                self.record_effect(op)
                return result
            raise last
        # plain: run the body against live state, then write each row
        # independently — the crash window between calls is the anomaly.
        ctx = _PlainActorCtx(self.env, op, handler, self.actors)
        result = yield from handler.body(ctx, op)
        for (entity, key), row in ctx.writes.items():
            yield from self.actors.ref(
                "KernelEntityActor", storage_key(entity, key)
            ).call("k_put", row, retries=2)
        self.record_effect(op)
        return result

    def snapshot(self) -> dict[str, list[dict]]:
        state: dict[str, list[dict]] = {}
        for entity, keys in self._keys.items():
            rows = []
            for key in keys:
                peeked = self.actors.provider.peek(
                    "KernelEntityActor", storage_key(entity, key)
                )
                if peeked is not None and peeked.get("row") is not None:
                    rows.append(dict(peeked["row"]))
            state[entity] = self.sorted_rows(rows, entity)
        return state

"""The microservice binder: one service per entity, three coordination modes.

Each entity becomes a service owning its own database (database-per-
service, §3.3).  The handler body runs at the coordinator edge: reads go
over RPC (returning the row *and* its version), writes are buffered, and
the commit discipline is the mode:

- ``"2pc"`` (sound) — optimistic two-phase commit: every touched service
  re-reads the coordinator's read set inside a serializable local
  transaction, validates the versions, applies that service's writes,
  and durably *prepares*; the decision round commits (or aborts) every
  participant.  Locks are held from prepare to decision — exactly the
  §4.2 blocking cost — and a validation conflict retries the whole
  handler with fresh reads.
- ``"saga"`` — apply each service's writes as independent local
  transactions; on failure, compensate the already-applied services
  (the spec's ``compensate`` body when given, else pre-image restore).
  Eventually consistent, non-blocking, honest about its window.
- ``"none"`` (unsound control) — the fire-and-hope anti-pattern: apply
  services sequentially with no cleanup, so a mid-flight crash tears
  the application across services.  The invariants must catch it.
"""

from __future__ import annotations

from typing import Any, Generator, Hashable, Optional

from repro.apps.core.base import AppUncertain, Binder, KernelContext, register_binder
from repro.apps.core.retry import with_prepared_txn, with_txn
from repro.apps.core.spec import AppSpec, EntitySpec, HandlerSpec
from repro.microservices import Microservice
from repro.sim import Environment


class _OccConflict(Exception):
    """A prepare-time version validation failed (retry with fresh reads)."""


def _apply_writes(db, txn, table: str, writes: list) -> Generator:
    """Install buffered writes, bumping each row's version."""
    for key, row in writes:
        current = yield from db.get(txn, table, key)
        if row is None:
            if current is not None:
                yield from db.delete(txn, table, key)
            continue
        version = 0 if current is None else current.get("_v", 0)
        yield from db.put(txn, table, key, dict(row, _v=version + 1))


class _MicroCtx(KernelContext):
    """Coordinator-side context: RPC reads with versions, buffered writes."""

    def __init__(self, env, op, handler, binder: "MicroserviceBinder", attempt: int) -> None:
        super().__init__(env, op, handler)
        self.binder = binder
        self.attempt = attempt
        #: (entity, key) -> row-or-None as first read (the OCC pre-image)
        self.read_rows: dict[tuple, Optional[dict]] = {}
        #: (entity, key) -> version observed at first read
        self.read_versions: dict[tuple, int] = {}
        #: (entity, key) -> row-or-None (None = delete), in write order
        self.writes: dict[tuple, Optional[dict]] = {}

    def _get(self, entity: str, key: Hashable) -> Generator:
        ref = (entity, key)
        if ref in self.writes:  # read-your-writes
            row = self.writes[ref]
            return dict(row) if row is not None else None
        if ref in self.read_rows:
            row = self.read_rows[ref]
            return dict(row) if row is not None else None
        op_id = getattr(self.op, "op_id", id(self.op))
        reply = yield from self.binder.request(
            entity, "read", {"key": key},
            f"{op_id}#{self.attempt}/r/{entity}/{key}",
        )
        self.read_rows[ref] = reply["row"]
        self.read_versions[ref] = reply["version"]
        return dict(reply["row"]) if reply["row"] is not None else None

    def _put(self, entity: str, key: Hashable, row: dict) -> Generator:
        self.writes[(entity, key)] = dict(row)
        return
        yield  # pragma: no cover

    def _delete(self, entity: str, key: Hashable) -> Generator:
        self.writes[(entity, key)] = None
        return
        yield  # pragma: no cover

    def touched_entities(self) -> list[str]:
        """Entities with reads or writes, in first-touch order."""
        seen: dict[str, None] = {}
        for entity, _key in list(self.read_versions) + list(self.writes):
            seen[entity] = None
        return list(seen)

    def entity_writes(self, entity: str) -> list:
        return [
            [key, row] for (e, key), row in self.writes.items() if e == entity
        ]

    def entity_reads(self, entity: str) -> list:
        return [
            [key, version]
            for (e, key), version in self.read_versions.items()
            if e == entity
        ]

    def pre_images(self, entity: str) -> list:
        """Undo writes for this entity: restore read pre-images.

        A written key never read is an insert — its pre-image is absence.
        """
        return [
            [key, self.read_rows.get((e, key))]
            for (e, key) in self.writes
            if e == entity
        ]


@register_binder
class MicroserviceBinder(Binder):
    """One app as entity-per-service microservices."""

    runtime = "microservice"

    def __init__(
        self,
        env: Environment,
        spec: AppSpec,
        mode: str = "2pc",
        shared_database: bool = False,
        request_timeout: float = 400.0,
        attempts: int = 24,
    ) -> None:
        if mode not in ("2pc", "saga", "none"):
            raise ValueError(f"unknown mode {mode!r}")
        super().__init__(env, spec)
        self.mode = mode
        self.sound = mode != "none"
        self.request_timeout = request_timeout
        self.attempts = attempts
        from repro.microservices import MicroserviceApp

        self.app = MicroserviceApp(
            env, shared_database=shared_database, dedup_requests=True
        )
        self._rng = env.stream(f"micro-binder-{spec.name}")
        for entity in spec.entities.values():
            self.app.add_service(self._entity_service(entity))

    # -- deployment ---------------------------------------------------------

    def _entity_service(self, entity: EntitySpec) -> Microservice:
        table = entity.name
        seed_rows = [dict(row, _v=0) for row in self.spec.initial_rows.get(table, [])]

        def init_db(db):
            db.create_table(table, primary_key=entity.key)
            db.load(table, seed_rows)

        service = Microservice(table, init_db=init_db)
        prepared: dict[str, object] = {}

        @service.handler("read")
        def read(ctx, payload):
            def body(txn):
                row = yield from ctx.db.get(txn, table, payload["key"])
                return row

            row = yield from with_txn(ctx, body)
            if row is None:
                return {"row": None, "version": 0}
            row = dict(row)
            version = row.pop("_v", 0)
            return {"row": row, "version": version}

        @service.handler("apply")
        def apply(ctx, payload):
            def body(txn):
                yield from _apply_writes(ctx.db, txn, table, payload["writes"])
                return "applied"

            result = yield from with_txn(ctx, body)
            return result

        @service.handler("prepare")
        def prepare(ctx, payload):
            if payload["txn_id"] in prepared:
                return "prepared"  # redelivered phase-1 request

            def body(txn):
                for key, version in payload["reads"]:
                    row = yield from ctx.db.get(txn, table, key)
                    current = 0 if row is None else row.get("_v", 0)
                    if current != version:
                        raise _OccConflict(f"{table}/{key}")
                yield from _apply_writes(ctx.db, txn, table, payload["writes"])

            try:
                txn = yield from with_prepared_txn(ctx, body)
            except _OccConflict:
                return "conflict"
            prepared[payload["txn_id"]] = txn
            return "prepared"

        @service.handler("commit_txn")
        def commit_txn(ctx, payload):
            txn = prepared.pop(payload["txn_id"], None)
            if txn is not None:
                yield from ctx.db.commit_prepared(txn)
            return "committed"

        @service.handler("abort_txn")
        def abort_txn(ctx, payload):
            txn = prepared.pop(payload["txn_id"], None)
            if txn is not None:
                yield from ctx.db.abort_prepared(txn)
            return "aborted"

        return service

    # -- client edge --------------------------------------------------------

    def request(self, service: str, method: str, payload: dict, key: str,
                retries: int = 2) -> Generator:
        result = yield from self.app.request(
            service, method, payload,
            timeout=self.request_timeout, retries=retries, idempotency_key=key,
        )
        return result

    # -- lifecycle ----------------------------------------------------------

    def setup(self) -> Generator:
        return
        yield  # pragma: no cover

    def execute(self, op: Any) -> Generator:
        handler = self.handler_for(op)
        op_id = getattr(op, "op_id", id(op))
        for attempt in range(self.attempts):
            ctx = _MicroCtx(self.env, op, handler, self, attempt)
            result = yield from handler.body(ctx, op)
            if self.mode == "2pc":
                outcome = yield from self._commit_2pc(f"{op_id}#{attempt}", ctx)
                if outcome == "committed":
                    self.record_effect(op)
                    return result
                # Jittered backoff decorrelates OCC conflict partners on a
                # hot key (otherwise they re-validate in lock step forever).
                yield self.env.timeout(
                    2.0 * (attempt + 1) * self._rng.uniform(0.5, 1.5)
                )
                continue
            yield from self._apply_groups(f"{op_id}#{attempt}", handler, op, ctx)
            self.record_effect(op)
            return result
        raise RuntimeError(f"{op_id}: validation retries exhausted")

    # -- 2PC ----------------------------------------------------------------

    def _commit_2pc(self, txn_id: str, ctx: _MicroCtx) -> Generator:
        """Phase 1 prepares (validate + stage) every touched service; phase
        2 delivers the decision.  Read-only participants prepare too — the
        validation inside their prepared transaction is what closes the
        cross-service read-skew window."""
        # Sorted participant order: concurrent transactions prepare the
        # services in the same sequence, so they block rather than deadlock.
        entities = sorted(ctx.touched_entities())
        prepared: list[str] = []
        try:
            for entity in entities:
                status = yield from self.request(
                    entity, "prepare",
                    {"txn_id": txn_id,
                     "writes": ctx.entity_writes(entity),
                     "reads": ctx.entity_reads(entity)},
                    f"{txn_id}/p/{entity}",
                )
                if status == "conflict":
                    yield from self._decide(txn_id, prepared, "abort_txn")
                    return "conflict"
                prepared.append(entity)
        except Exception:
            # Phase-1 outcome on the failed participant is unknown, but no
            # commit decision exists yet, so abort is always safe; push it
            # to every possibly-prepared participant.
            yield from self._decide(txn_id, entities, "abort_txn")
            raise
        try:
            yield from self._decide(txn_id, prepared, "commit_txn")
        except Exception as exc:
            raise AppUncertain(
                f"{txn_id}: commit decision undeliverable: {exc!r}"
            ) from exc
        return "committed"

    def _decide(self, txn_id: str, entities: list[str], decision: str) -> Generator:
        for entity in entities:
            yield from self.request(
                entity, decision, {"txn_id": txn_id},
                f"{txn_id}/{decision}/{entity}", retries=4,
            )

    # -- saga / uncoordinated ----------------------------------------------

    def _apply_groups(self, txn_id: str, handler: HandlerSpec, op: Any,
                      ctx: _MicroCtx) -> Generator:
        applied: list[str] = []
        try:
            for entity in ctx.touched_entities():
                writes = ctx.entity_writes(entity)
                if not writes:
                    continue
                yield from self.request(
                    entity, "apply", {"writes": writes}, f"{txn_id}/apply/{entity}"
                )
                applied.append(entity)
        except Exception:
            if self.mode == "none":
                raise  # fire-and-hope: a torn application is the point
            yield from self._compensate(txn_id, handler, op, ctx, applied)
            raise

    def _compensate(self, txn_id: str, handler: HandlerSpec, op: Any,
                    ctx: _MicroCtx, applied: list[str]) -> Generator:
        if handler.compensate is not None:
            undo_ctx = _MicroCtx(self.env, op, handler, self, 0)
            yield from handler.compensate(undo_ctx, op)
            groups = [
                (entity, undo_ctx.entity_writes(entity))
                for entity in undo_ctx.touched_entities()
            ]
        else:
            groups = [(entity, ctx.pre_images(entity)) for entity in applied]
        for entity, writes in groups:
            if not writes:
                continue
            try:
                yield from self.request(
                    entity, "apply", {"writes": writes},
                    f"{txn_id}/undo/{entity}", retries=4,
                )
            except Exception:
                continue  # best-effort; the invariants judge the residue

    # -- state --------------------------------------------------------------

    def snapshot(self) -> dict[str, list[dict]]:
        state = {}
        for entity in self.spec.entities:
            rows = [
                {k: v for k, v in row.items() if k != "_v"}
                for row in self.app.database_of(entity).engine.all_rows(entity)
            ]
            state[entity] = self.sorted_rows(rows, entity)
        return state

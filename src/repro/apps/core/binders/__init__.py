"""The binder layer: deploy one :class:`AppSpec` onto each runtime.

Importing this package registers the generic binders:

- ``db`` / ``cluster`` — the monolith :class:`DatabaseServer` and the
  sharded (optionally replicated) :class:`ShardedDatabase`;
- ``microservice`` — entity-per-service over RPC with ``2pc`` (sound),
  ``saga`` (compensating) and ``none`` (unsound control) modes;
- ``actor`` — virtual actors under the Orleans-style transaction
  coordinator (or uncoordinated ``plain`` mode);
- ``dataflow`` — the Styx-like transactional dataflow engine;
- ``faas`` — Beldi-style serializable OCC workflows over a shared KV.
"""

from repro.apps.core.binders.actor import ActorBinder, KernelEntityActor
from repro.apps.core.binders.db import DbBinder, ShardedDbBinder
from repro.apps.core.binders.dataflow import DataflowBinder
from repro.apps.core.binders.faas import FaasBinder
from repro.apps.core.binders.micro import MicroserviceBinder

__all__ = [
    "ActorBinder",
    "DataflowBinder",
    "DbBinder",
    "FaasBinder",
    "KernelEntityActor",
    "MicroserviceBinder",
    "ShardedDbBinder",
]

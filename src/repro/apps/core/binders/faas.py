"""The FaaS binder: handlers as Beldi-style serializable OCC workflows.

Each handler registers as a transactional workflow over the shared KV;
reads build a snapshot, writes buffer, and commit validates the read set
— conflicts retry the whole body automatically (the engine's OCC loop),
so handler bodies must be pure functions of their reads, which the
kernel's programming model already guarantees.
"""

from __future__ import annotations

from typing import Any, Generator, Hashable

from repro.apps.core.base import Binder, KernelContext, register_binder, storage_key
from repro.apps.core.spec import AppSpec, HandlerSpec
from repro.faas import SharedKv, TransactionalWorkflows
from repro.net.latency import Latency
from repro.sim import Environment


class _FaasCtx(KernelContext):
    """Entity access over a workflow's OCC read/write sets."""

    def __init__(self, env, op, handler, wctx) -> None:
        super().__init__(env, op, handler)
        self.wctx = wctx

    def _get(self, entity: str, key: Hashable) -> Generator:
        value = yield from self.wctx.read(storage_key(entity, key), None)
        return dict(value) if value is not None else None

    def _put(self, entity: str, key: Hashable, row: dict) -> Generator:
        self.wctx.write(storage_key(entity, key), dict(row))
        return
        yield  # pragma: no cover

    def _delete(self, entity: str, key: Hashable) -> Generator:
        # The KV has no tombstone-free delete; absence is modeled as None
        # and filtered out of reads and snapshots.
        self.wctx.write(storage_key(entity, key), None)
        return
        yield  # pragma: no cover


@register_binder
class FaasBinder(Binder):
    """One app as transactional workflows over a shared KV."""

    runtime = "faas"

    def __init__(self, env: Environment, spec: AppSpec, **workflow_kwargs) -> None:
        super().__init__(env, spec)
        self.kv = SharedKv(env, rtt=Latency.intra_zone())
        self.workflows = TransactionalWorkflows(env, kv=self.kv, **workflow_kwargs)
        for handler in spec.handlers.values():
            self.workflows.register(handler.name, self._bind_handler(handler))

    def _bind_handler(self, handler: HandlerSpec):
        def workflow(wctx, op):
            ctx = _FaasCtx(self.env, op, handler, wctx)
            result = yield from handler.body(ctx, op)
            return result

        return workflow

    def setup(self) -> Generator:
        for entity, key, row in self.initial_rows():
            yield from self.kv.put(storage_key(entity, key), dict(row))

    def execute(self, op: Any) -> Generator:
        handler = self.handler_for(op)
        op_id = getattr(op, "op_id", None)
        result = yield from self.workflows.run(
            handler.name, op, workflow_id=op_id
        )
        self.record_effect(op)
        return result

    def snapshot(self) -> dict[str, list[dict]]:
        state: dict[str, list[dict]] = {name: [] for name in self.spec.entities}
        for skey, value in self.kv.store.items():
            entity, _sep, _key = str(skey).partition("/")
            if entity in state and value is not None:
                state[entity].append(dict(value))
        return {
            entity: self.sorted_rows(rows, entity)
            for entity, rows in state.items()
        }

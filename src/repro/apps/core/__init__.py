"""``repro.apps.core`` — the runtime-agnostic application kernel.

One app definition (:class:`AppSpec`: entities + generator stored
procedures with declared key sets + first-class invariants), five
runtime binders (monolith DB, microservices, actors, transactional
dataflow, FaaS workflows), and an oracle compiler that turns every
invariant into a chaos oracle.  See ``docs/APPS.md``.
"""

from repro.apps.core.base import (
    AppFailure,
    AppUncertain,
    Binder,
    KernelApp,
    KernelContext,
    UndeclaredAccess,
    bind,
    register_binder,
    registered_runtimes,
    storage_key,
)
from repro.apps.core.oracles import AppliedExactlyOracle, SpecOracle, compile_oracles
from repro.apps.core.retry import with_prepared_txn, with_txn
from repro.apps.core.spec import (
    AppSpec,
    CapacityBoundSpec,
    CausalAuditSpec,
    ConservationSpec,
    DoubleEntrySpec,
    EntitySpec,
    GapFreeSequenceSpec,
    HandlerSpec,
    InvariantSpec,
    KeyRef,
)

# Importing the binder modules registers the generic binders.
from repro.apps.core import binders as _binders  # noqa: E402,F401

__all__ = [
    "AppFailure",
    "AppSpec",
    "AppUncertain",
    "AppliedExactlyOracle",
    "Binder",
    "CapacityBoundSpec",
    "CausalAuditSpec",
    "ConservationSpec",
    "DoubleEntrySpec",
    "EntitySpec",
    "GapFreeSequenceSpec",
    "HandlerSpec",
    "InvariantSpec",
    "KernelApp",
    "KernelContext",
    "KeyRef",
    "SpecOracle",
    "UndeclaredAccess",
    "bind",
    "compile_oracles",
    "register_binder",
    "registered_runtimes",
    "storage_key",
    "with_prepared_txn",
    "with_txn",
]

"""Kernel base classes: apps own a ledger, binders deploy a spec.

Three pieces every runtime shares:

- :class:`KernelApp` — owns the :class:`~repro.transactions.anomalies`
  effect ledger, so no app wires its own (every app used to construct and
  thread one by hand);
- :class:`KernelContext` — the access-checked generator protocol a
  handler body runs against (``get``/``put``/``delete`` over
  ``(entity, key)``), enforcing the spec's declared read/write sets;
- :class:`Binder` — the deployment adapter: takes one
  :class:`~repro.apps.core.spec.AppSpec` and runs it on a concrete
  runtime, exposing the uniform ``setup() / execute(op) / snapshot() /
  invariants() / oracles()`` surface the harness, benchmarks, and chaos
  scenarios consume.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Hashable, Iterable, Optional

from repro.apps.core.spec import AppSpec, HandlerSpec, KeyRef
from repro.transactions.anomalies import EffectLedger, Invariant

__all__ = [
    "AppFailure",
    "AppUncertain",
    "Binder",
    "KernelApp",
    "KernelContext",
    "UndeclaredAccess",
    "bind",
    "register_binder",
    "registered_runtimes",
    "storage_key",
]


class AppFailure(Exception):
    """The operation definitely did not take effect (safe to retry)."""


class AppUncertain(Exception):
    """The operation's outcome is unknown (it may or may not have applied)."""


class UndeclaredAccess(Exception):
    """A handler touched a key outside its declared read/write sets."""


def storage_key(entity: str, key: Hashable) -> str:
    """Namespace an ``(entity, key)`` pair into one flat storage keyspace."""
    return f"{entity}/{key}"


class KernelApp:
    """Anything that executes operations and records effects.

    Owning the ledger here is the point: binders (and the hand-tuned
    native apps) inherit it instead of each constructing and threading
    an :class:`EffectLedger` by hand, so effect accounting is uniform —
    the driver acknowledges, the state owner applies, reconcile reports
    lost/duplicate effects the same way for every runtime.
    """

    def __init__(self, env) -> None:
        self.env = env
        self.ledger = EffectLedger()


class KernelContext:
    """The state-access protocol a handler body runs against.

    All accessors are generators (``yield from ctx.get(...)``) so one
    handler body runs unchanged whether the binder's backend answers from
    a local transaction, an RPC, an actor mailbox, or a workflow step.
    Every access is checked against the handler's declared sets — the
    :mod:`repro.parallel.procs` discipline: an access the binder cannot
    see up front is an access it cannot route, lock, or partition.
    """

    def __init__(
        self,
        env,
        op: Any,
        handler: HandlerSpec,
        scratch: Optional[dict] = None,
    ) -> None:
        self.env = env
        self.op = op
        self.handler = handler
        #: survives across steps of a transaction-per-step execution.
        self.scratch: dict = scratch if scratch is not None else {}
        self._readable = frozenset(handler.declared(op))
        self._writable = frozenset(handler.writes(op))

    # -- declared-access checks ---------------------------------------------

    def _check_read(self, entity: str, key: Hashable) -> None:
        if (entity, key) not in self._readable:
            raise UndeclaredAccess(
                f"handler {self.handler.name!r} read undeclared key "
                f"({entity!r}, {key!r})"
            )

    def _check_write(self, entity: str, key: Hashable) -> None:
        if (entity, key) not in self._writable:
            raise UndeclaredAccess(
                f"handler {self.handler.name!r} wrote undeclared key "
                f"({entity!r}, {key!r})"
            )

    # -- the handler-facing API ---------------------------------------------

    def get(self, entity: str, key: Hashable) -> Generator:
        """Read one row (a dict) or ``None``."""
        self._check_read(entity, key)
        row = yield from self._get(entity, key)
        return row

    def put(self, entity: str, key: Hashable, row: dict) -> Generator:
        """Insert or replace one row."""
        self._check_write(entity, key)
        yield from self._put(entity, key, dict(row))

    def delete(self, entity: str, key: Hashable) -> Generator:
        self._check_write(entity, key)
        yield from self._delete(entity, key)

    # -- backend hooks (one per binder) -------------------------------------

    def _get(self, entity: str, key: Hashable) -> Generator:
        raise NotImplementedError

    def _put(self, entity: str, key: Hashable, row: dict) -> Generator:
        raise NotImplementedError

    def _delete(self, entity: str, key: Hashable) -> Generator:
        raise NotImplementedError


#: runtime name -> Binder subclass.
_BINDERS: dict[str, type] = {}


def register_binder(cls: type) -> type:
    """Class decorator: make a binder reachable through :func:`bind`."""
    _BINDERS[cls.runtime] = cls
    return cls


def registered_runtimes() -> list[str]:
    return sorted(_BINDERS)


def bind(runtime: str, env, spec: AppSpec, **opts) -> "Binder":
    """Deploy ``spec`` onto ``runtime``.

    An app may ship a hand-tuned native implementation for a runtime
    (``spec.native_binders``); it wins over the generic binder so the
    kernel can absorb existing apps without perturbing their committed
    golden results.
    """
    factory = spec.native_binders.get(runtime)
    if factory is not None:
        return factory(env, spec, **opts)
    try:
        cls = _BINDERS[runtime]
    except KeyError:
        raise KeyError(
            f"no binder registered for runtime {runtime!r} "
            f"(have {registered_runtimes()})"
        ) from None
    return cls(env, spec, **opts)


class Binder(KernelApp):
    """One deployment of one app spec onto one runtime.

    The uniform adapter surface:

    - ``setup()`` — generator; provision the runtime and load
      ``spec.initial_rows``;
    - ``execute(op)`` — generator; route the op to its handler, run it
      with the runtime's transaction discipline, record the effect;
    - ``snapshot()`` — generator; read committed state back as
      ``{entity: [rows]}`` for invariants and probes;
    - ``invariants()`` / ``oracles()`` — the spec's correctness story,
      as final-state checkers and as history-aware chaos oracles.
    """

    #: the runtime this binder deploys onto (registry key).
    runtime = "abstract"
    #: False marks an intentionally-unsound control variant.
    sound = True

    def __init__(self, env, spec: AppSpec) -> None:
        super().__init__(env)
        self.spec = spec

    # -- lifecycle ----------------------------------------------------------

    def setup(self) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    def execute(self, op: Any) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    def snapshot(self) -> dict[str, list[dict]]:
        """Committed state as ``{entity: [rows]}`` (rows sorted by key).

        Synchronous: every backend exposes a committed-state peek
        (engine rows, KV store, actor provider) that reads no locks —
        call it at quiescence for invariant checks, or mid-run for probes.
        """
        raise NotImplementedError

    # -- correctness --------------------------------------------------------

    def invariants(self) -> list[Invariant]:
        return self.spec.state_invariants()

    def oracles(self) -> list:
        from repro.apps.core.oracles import compile_oracles

        return compile_oracles(self.spec)

    def probe(self, state: dict[str, list[dict]]) -> dict[str, Any]:
        """Live in-workload observation: invariant name -> probe value."""
        values = {}
        for invariant in self.spec.invariants:
            value = invariant.probe_value(state)
            if value is not None:
                values[invariant.name] = value
        return values

    # -- shared helpers -----------------------------------------------------

    def handler_for(self, op: Any) -> HandlerSpec:
        return self.spec.handler_for(op)

    def initial_rows(self) -> Iterable[tuple[str, Hashable, dict]]:
        """``(entity, key, row)`` triples for every seed row, in spec order."""
        for entity, rows in self.spec.initial_rows.items():
            key_field = self.spec.entity(entity).key
            for row in rows:
                yield entity, row[key_field], row

    def record_effect(self, op: Any) -> None:
        """Count one application of ``op``'s effect into committed state."""
        op_id = getattr(op, "op_id", None)
        if op_id is not None:
            self.ledger.apply(op_id)

    def sorted_rows(self, rows: Iterable[dict], entity: str) -> list[dict]:
        key_field = self.spec.entity(entity).key
        return sorted(rows, key=lambda row: repr(row.get(key_field)))

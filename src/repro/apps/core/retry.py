"""Shared local-transaction retry discipline for every database-backed app.

Promoted out of ``repro.apps.shop`` (where microservice handlers grew it)
so every app and binder shares one copy: run a body inside a serializable
local transaction, retry deadlock/conflict aborts with linear backoff —
the way production database clients behave — and let business errors
abort and propagate.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.db import IsolationLevel
from repro.db.errors import TransactionAborted

SER = IsolationLevel.SERIALIZABLE


def with_txn(
    ctx,
    body: Callable,
    retries: int = 8,
    isolation: IsolationLevel = SER,
) -> Generator:
    """Run ``body(txn)`` in a local transaction, retrying aborts.

    ``ctx`` needs ``.db`` (a :class:`~repro.db.server.DatabaseServer`)
    and ``.env``; microservice handler contexts and kernel binders both
    qualify.  Business errors (anything that is not a serialization
    failure) abort the transaction and propagate; deadlock/conflict
    aborts are retried with backoff.
    """
    for attempt in range(retries):
        txn = yield from ctx.db.begin(isolation)
        try:
            result = yield from body(txn)
            yield from ctx.db.commit(txn)
            return result
        except TransactionAborted:
            yield from ctx.db.abort(txn)
            yield ctx.env.timeout(1.0 * (attempt + 1))
        except Exception:
            yield from ctx.db.abort(txn)
            raise
    raise RuntimeError("local transaction retries exhausted")


def with_prepared_txn(ctx, body: Callable, retries: int = 8) -> Generator:
    """Like :func:`with_txn` but ends in *prepare*; returns the txn.

    The 2PC participant's phase-1 discipline: validate and write under the
    local serializable protocol, durably prepare (locks now held), and
    hand the prepared transaction back for the coordinator's decision.
    """
    for attempt in range(retries):
        txn = yield from ctx.db.begin(SER)
        try:
            yield from body(txn)
            yield from ctx.db.prepare(txn)
            return txn
        except TransactionAborted:
            yield from ctx.db.abort(txn)
            yield ctx.env.timeout(1.0 * (attempt + 1))
        except Exception:
            yield from ctx.db.abort(txn)
            raise
    raise RuntimeError("local transaction retries exhausted")

"""Reference applications implemented on every runtime.

The tutorial's comparison only makes sense like-for-like: the *same*
application built on each programming model.  This package provides those
builds, shared by the examples and the benchmark suite:

- :mod:`repro.apps.banking` — money transfers on the database, actors
  (plain and transactional), FaaS (shared-KV, entities, Beldi workflows),
  and dataflow (exactly-once and Styx-transactional);
- :mod:`repro.apps.shop` — the marketplace checkout as microservices,
  with no coordination, saga coordination, or 2PC;
- :mod:`repro.apps.tpcc_impls` — TPC-C-lite on a monolithic database, on
  Beldi-style transactional FaaS, and on the Styx-like dataflow.
"""

from repro.apps.banking import (
    ActorBank,
    DataflowBank,
    DbBank,
    FaasBank,
    StatefunBank,
    TxnDataflowBank,
)
from repro.apps.hotel_impl import HotelApp
from repro.apps.shop import MicroserviceShop
from repro.apps.tpcc_impls import DbTpcc, StyxTpcc, WorkflowTpcc

__all__ = [
    "ActorBank",
    "DataflowBank",
    "DbBank",
    "DbTpcc",
    "FaasBank",
    "HotelApp",
    "MicroserviceShop",
    "StatefunBank",
    "StyxTpcc",
    "TxnDataflowBank",
    "WorkflowTpcc",
]

"""The marketplace checkout as a microservice application.

Three coordination modes for the multi-service checkout (stock → payment →
order), matching the §4.2 spectrum:

- ``"none"`` — fire the steps and hope: a mid-flight failure leaves
  orphan reservations and the invariants catch it;
- ``"saga"`` — orchestrated saga with compensations (release stock,
  refund payment): eventually consistent, non-blocking;
- ``"2pc"`` — atomic commit across the services: each service exposes
  ``prepare_*``/``commit_txn``/``abort_txn`` RPC endpoints over its own
  database's XA interface, and the checkout coordinator drives them.
  This is precisely the §4.2 pain: "using language-specific libraries and
  implementing the protocol phases in each microservice, a complex and
  error-prone task" — and every participant holds its locks from prepare
  until the decision round trip arrives.

Each service owns its database (database-per-service, §3.3).  All requests
carry idempotency keys and services deduplicate them (the §3.2 discipline —
benchmark C5 shows what happens without it), and each service retries its
*local* transaction on serialization failures, as production DB clients do.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.core import KernelApp
from repro.apps.core.retry import with_prepared_txn, with_txn
from repro.db import IsolationLevel
from repro.messaging.rpc import RpcRemoteError
from repro.microservices import Microservice, MicroserviceApp
from repro.sim import Environment
from repro.transactions import Saga, SagaOrchestrator, SagaStep
from repro.workloads.marketplace import CheckoutOp, MarketplaceWorkload

SER = IsolationLevel.SERIALIZABLE


class PaymentDeclined(Exception):
    """Business failure injected by the workload."""


def _register_decision_handlers(service: Microservice, prepared: dict) -> None:
    """Give a service the 2PC decision endpoints over its prepared txns."""

    @service.handler("commit_txn")
    def commit_txn(ctx, payload):
        txn = prepared.pop(payload["order_id"], None)
        if txn is not None:
            yield from ctx.db.commit_prepared(txn)
        return "committed"

    @service.handler("abort_txn")
    def abort_txn(ctx, payload):
        txn = prepared.pop(payload["order_id"], None)
        if txn is not None:
            yield from ctx.db.abort_prepared(txn)
        return "aborted"


class MicroserviceShop(KernelApp):
    """The deployed application plus per-mode checkout executors."""

    def __init__(
        self,
        env: Environment,
        workload: MarketplaceWorkload,
        mode: str = "saga",
        shared_database: bool = False,
        request_timeout: float = 400.0,
        compensation_retries: int = 3,
        zombie_safe_refunds: bool = True,
    ) -> None:
        if mode not in ("none", "saga", "2pc"):
            raise ValueError(f"unknown mode {mode!r}")
        super().__init__(env)
        self.workload = workload
        self.mode = mode
        self.request_timeout = request_timeout
        self.zombie_safe_refunds = zombie_safe_refunds
        self.app = MicroserviceApp(env, shared_database=shared_database,
                                   dedup_requests=True)
        self.app.add_service(self._stock_service())
        self.app.add_service(self._payment_service())
        self.app.add_service(self._order_service())
        self.orchestrator = SagaOrchestrator(
            env, compensation_retries=compensation_retries
        )

    def _call(self, service: str, method: str, payload: dict, key: str) -> Generator:
        """An idempotent service request (the §3.2 discipline)."""
        result = yield from self.app.request(
            service, method, payload,
            timeout=self.request_timeout, retries=2, idempotency_key=key,
        )
        return result

    # -- services ------------------------------------------------------------------

    def _stock_service(self) -> Microservice:
        workload = self.workload

        def init_db(db):
            db.create_table("products", primary_key="id")
            db.create_table("reservations", primary_key="rid")
            db.load("products", workload.initial_products())

        service = Microservice("stock", init_db=init_db)

        @service.handler("reserve")
        def reserve(ctx, payload):
            def body(txn):
                for product, quantity in payload["items"]:
                    row = yield from ctx.db.get(txn, "products", product)
                    if row["stock"] - row["reserved"] < quantity:
                        raise ValueError(f"out of stock: {product}")
                    yield from ctx.db.update(
                        txn, "products", product,
                        {"reserved": row["reserved"] + quantity},
                    )
                    yield from ctx.db.insert(
                        txn, "reservations",
                        {"rid": f"{payload['order_id']}/{product}",
                         "order_id": payload["order_id"],
                         "product": product, "quantity": quantity},
                    )
                return "reserved"

            result = yield from with_txn(ctx, body)
            return result

        @service.handler("confirm")
        def confirm(ctx, payload):
            def body(txn):
                for product, quantity in payload["items"]:
                    row = yield from ctx.db.get(txn, "products", product)
                    yield from ctx.db.update(
                        txn, "products", product,
                        {"stock": row["stock"] - quantity,
                         "reserved": row["reserved"] - quantity},
                    )
                    yield from ctx.db.delete(
                        txn, "reservations", f"{payload['order_id']}/{product}"
                    )
                return "confirmed"

            result = yield from with_txn(ctx, body)
            return result

        @service.handler("release")
        def release(ctx, payload):
            def body(txn):
                for product, quantity in payload["items"]:
                    reservation = yield from ctx.db.get(
                        txn, "reservations", f"{payload['order_id']}/{product}"
                    )
                    if reservation is None:
                        continue  # idempotent release
                    row = yield from ctx.db.get(txn, "products", product)
                    yield from ctx.db.update(
                        txn, "products", product,
                        {"reserved": row["reserved"] - quantity},
                    )
                    yield from ctx.db.delete(
                        txn, "reservations", f"{payload['order_id']}/{product}"
                    )
                return "released"

            result = yield from with_txn(ctx, body)
            return result

        prepared: dict[str, object] = {}

        @service.handler("prepare_deduct")
        def prepare_deduct(ctx, payload):
            def body(txn):
                for product, quantity in payload["items"]:
                    row = yield from ctx.db.get(txn, "products", product)
                    if row["stock"] < quantity:
                        raise ValueError(f"out of stock: {product}")
                    yield from ctx.db.update(
                        txn, "products", product,
                        {"stock": row["stock"] - quantity},
                    )

            txn = yield from with_prepared_txn(ctx, body)
            prepared[payload["order_id"]] = txn
            return "prepared"

        _register_decision_handlers(service, prepared)
        return service

    def _payment_service(self) -> Microservice:
        zombie_safe = self.zombie_safe_refunds

        def init_db(db):
            db.create_table("payments", primary_key="order_id")

        service = Microservice("payment", init_db=init_db)

        @service.handler("charge")
        def charge(ctx, payload):
            if payload.get("fail"):
                raise PaymentDeclined(payload["order_id"])

            def body(txn):
                existing = yield from ctx.db.get(txn, "payments", payload["order_id"])
                if existing is not None and existing.get("refunded"):
                    # A compensation tombstone: this checkout was already
                    # cancelled.  Without this check, a *zombie* charge —
                    # a timed-out request still in flight when the saga
                    # compensated — would land after the refund and leave
                    # a payment no order explains (found by chaos testing).
                    raise ValueError(f"{payload['order_id']} already cancelled")
                if existing is not None:
                    return "charged"  # idempotent replay
                yield from ctx.db.insert(
                    txn, "payments",
                    {"order_id": payload["order_id"], "amount": payload["amount"],
                     "refunded": False},
                )
                return "charged"

            result = yield from with_txn(ctx, body)
            return result

        @service.handler("refund")
        def refund(ctx, payload):
            def body(txn):
                existing = yield from ctx.db.get(txn, "payments", payload["order_id"])
                if existing is None:
                    if zombie_safe:
                        # Nothing charged (yet): leave a tombstone so a
                        # late zombie charge is rejected, not resurrected.
                        yield from ctx.db.insert(
                            txn, "payments",
                            {"order_id": payload["order_id"], "amount": 0,
                             "refunded": True},
                        )
                    # zombie-unsafe variant: refund of nothing is a no-op,
                    # and a late charge will silently land (the anomaly).
                else:
                    if zombie_safe:
                        yield from ctx.db.update(
                            txn, "payments", payload["order_id"],
                            {"refunded": True},
                        )
                    else:
                        yield from ctx.db.delete(
                            txn, "payments", payload["order_id"]
                        )
                return "refunded"

            result = yield from with_txn(ctx, body)
            return result

        prepared: dict[str, object] = {}

        @service.handler("prepare_charge")
        def prepare_charge(ctx, payload):
            if payload.get("fail"):
                raise PaymentDeclined(payload["order_id"])

            def body(txn):
                yield from ctx.db.insert(
                    txn, "payments",
                    {"order_id": payload["order_id"], "amount": payload["amount"]},
                )

            txn = yield from with_prepared_txn(ctx, body)
            prepared[payload["order_id"]] = txn
            return "prepared"

        _register_decision_handlers(service, prepared)
        return service

    def _order_service(self) -> Microservice:
        def init_db(db):
            db.create_table("orders", primary_key="id")

        service = Microservice("orders", init_db=init_db)

        @service.handler("create")
        def create(ctx, payload):
            def body(txn):
                yield from ctx.db.insert(
                    txn, "orders",
                    {"id": payload["order_id"], "items": payload["items"]},
                )
                return "created"

            result = yield from with_txn(ctx, body)
            return result

        prepared: dict[str, object] = {}

        @service.handler("prepare_create")
        def prepare_create(ctx, payload):
            def body(txn):
                yield from ctx.db.insert(
                    txn, "orders",
                    {"id": payload["order_id"], "items": payload["items"]},
                )

            txn = yield from with_prepared_txn(ctx, body)
            prepared[payload["order_id"]] = txn
            return "prepared"

        _register_decision_handlers(service, prepared)
        return service

    # -- checkout executors -----------------------------------------------------------

    def execute(self, op: CheckoutOp) -> Generator:
        if self.mode == "none":
            yield from self._checkout_uncoordinated(op)
        elif self.mode == "saga":
            yield from self._checkout_saga(op)
        else:
            yield from self._checkout_2pc(op)
        self.ledger.apply(op.op_id)

    def _checkout_uncoordinated(self, op: CheckoutOp) -> Generator:
        """Sequential calls, no cleanup on failure (the anti-pattern)."""
        items = list(op.cart)
        yield from self._call("stock", "reserve",
                              {"order_id": op.op_id, "items": items},
                              f"{op.op_id}/reserve")
        yield from self._call(
            "payment", "charge",
            {"order_id": op.op_id, "amount": self._amount(op),
             "fail": op.payment_fails},
            f"{op.op_id}/charge",
        )
        yield from self._call("stock", "confirm",
                              {"order_id": op.op_id, "items": items},
                              f"{op.op_id}/confirm")
        yield from self._call("orders", "create",
                              {"order_id": op.op_id, "items": items},
                              f"{op.op_id}/create")

    def _checkout_saga(self, op: CheckoutOp) -> Generator:
        items = list(op.cart)

        def reserve(ctx):
            result = yield from self._call(
                "stock", "reserve", {"order_id": op.op_id, "items": items},
                f"{op.op_id}/reserve",
            )
            return result

        def release(ctx):
            yield from self._call(
                "stock", "release", {"order_id": op.op_id, "items": items},
                f"{op.op_id}/release",
            )

        def charge(ctx):
            result = yield from self._call(
                "payment", "charge",
                {"order_id": op.op_id, "amount": self._amount(op),
                 "fail": op.payment_fails},
                f"{op.op_id}/charge",
            )
            return result

        def refund(ctx):
            yield from self._call(
                "payment", "refund", {"order_id": op.op_id},
                f"{op.op_id}/refund",
            )

        def finalize(ctx):
            yield from self._call(
                "stock", "confirm", {"order_id": op.op_id, "items": items},
                f"{op.op_id}/confirm",
            )
            yield from self._call(
                "orders", "create", {"order_id": op.op_id, "items": items},
                f"{op.op_id}/create",
            )

        saga = Saga(
            f"checkout-{op.op_id}",
            [
                SagaStep("reserve", reserve, release),
                SagaStep("charge", charge, refund),
                SagaStep("finalize", finalize),
            ],
        )
        outcome = yield from self.orchestrator.execute(saga)
        if outcome.status != "completed":
            raise RpcRemoteError("saga", "checkout", outcome.error or "compensated")

    def _checkout_2pc(self, op: CheckoutOp) -> Generator:
        """2PC with the three services as participants, over RPC.

        Phase 1 calls each service's ``prepare_*`` endpoint (the service
        validates, writes, and durably prepares its local transaction —
        locks now held); phase 2 delivers the decision.  Every phase-1/2
        message is a service round trip: the §4.2 blocking cost is the
        time contended rows stay locked across all of them.
        """
        items = list(op.cart)
        prepared: list[str] = []
        try:
            yield from self._call(
                "stock", "prepare_deduct",
                {"order_id": op.op_id, "items": items},
                f"{op.op_id}/p-stock",
            )
            prepared.append("stock")
            yield from self._call(
                "payment", "prepare_charge",
                {"order_id": op.op_id, "amount": self._amount(op),
                 "fail": op.payment_fails},
                f"{op.op_id}/p-payment",
            )
            prepared.append("payment")
            yield from self._call(
                "orders", "prepare_create",
                {"order_id": op.op_id, "items": items},
                f"{op.op_id}/p-orders",
            )
            prepared.append("orders")
        except Exception:
            for service in prepared:
                yield from self._call(
                    service, "abort_txn", {"order_id": op.op_id},
                    f"{op.op_id}/abort-{service}",
                )
            raise
        for service in prepared:
            yield from self._call(
                service, "commit_txn", {"order_id": op.op_id},
                f"{op.op_id}/commit-{service}",
            )

    def _amount(self, op: CheckoutOp) -> int:
        return sum(quantity for _product, quantity in op.cart)

    # -- final state for invariants ------------------------------------------------------

    def final_state(self) -> dict:
        payments = self.app.database_of("payment").engine.all_rows("payments")
        return {
            "products": self.app.database_of("stock").engine.all_rows("products"),
            "orders": self.app.database_of("orders").engine.all_rows("orders"),
            # Refund tombstones are cancelled charges, not live payments.
            "payments": [p for p in payments if not p.get("refunded")],
        }

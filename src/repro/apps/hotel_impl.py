"""The DeathStarBench-style hotel reservation app on microservices.

A small service graph in the DeathStar shape (paper ref [27]): a frontend
fans out to a search service (read-only queries over a city index) and a
reservation service (the transactional core holding room capacity).  The
capacity invariant — never more confirmed reservations than rooms — is the
workload's correctness criterion and breaks under lost isolation.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.core import KernelApp
from repro.apps.core.retry import with_txn
from repro.db import IsolationLevel
from repro.microservices import Microservice, MicroserviceApp
from repro.sim import Environment
from repro.workloads.hotel import HotelWorkload, ReserveOp, SearchOp

SER = IsolationLevel.SERIALIZABLE


class NoVacancy(Exception):
    """The hotel is fully booked (a business outcome, not a bug)."""


class HotelApp(KernelApp):
    """Deployed hotel application plus workload executors."""

    def __init__(self, env: Environment, workload: HotelWorkload) -> None:
        super().__init__(env)
        self.workload = workload
        self.app = MicroserviceApp(env, dedup_requests=True)
        self.app.add_service(self._search_service())
        self.app.add_service(self._reservation_service())
        self.app.add_service(self._frontend_service())

    # -- services -----------------------------------------------------------------

    def _search_service(self) -> Microservice:
        workload = self.workload

        def init_db(db):
            db.create_table("hotels", primary_key="id")
            db.create_index("hotels", "city")
            db.load("hotels", [
                {"id": h["id"], "city": h["city"], "stars": 3 + (i % 3)}
                for i, h in enumerate(workload.initial_hotels())
            ])

        service = Microservice("search", init_db=init_db)

        @service.handler("nearby")
        def nearby(ctx, payload):
            def body(txn):
                rows = yield from ctx.db.lookup(txn, "hotels", "city", payload["city"])
                return sorted(r["id"] for r in rows)

            result = yield from with_txn(ctx, body)
            return result

        return service

    def _reservation_service(self) -> Microservice:
        workload = self.workload

        def init_db(db):
            db.create_table("capacity", primary_key="id")
            db.create_table("reservations", primary_key="rid")
            db.load("capacity", [
                {"id": h["id"], "capacity": h["capacity"], "available": h["available"]}
                for h in workload.initial_hotels()
            ])

        service = Microservice("reservation", init_db=init_db)

        @service.handler("reserve")
        def reserve(ctx, payload):
            def body(txn):
                row = yield from ctx.db.get(txn, "capacity", payload["hotel"])
                if row is None or row["available"] <= 0:
                    raise NoVacancy(payload["hotel"])
                yield from ctx.db.update(
                    txn, "capacity", payload["hotel"],
                    {"available": row["available"] - 1},
                )
                yield from ctx.db.insert(
                    txn, "reservations",
                    {"rid": payload["reservation_id"],
                     "hotel": payload["hotel"],
                     "customer": payload["customer"],
                     "nights": payload["nights"]},
                )
                return payload["reservation_id"]

            result = yield from with_txn(ctx, body)
            return result

        @service.handler("cancel")
        def cancel(ctx, payload):
            def body(txn):
                reservation = yield from ctx.db.get(
                    txn, "reservations", payload["reservation_id"]
                )
                if reservation is None:
                    return False  # idempotent cancel
                row = yield from ctx.db.get(txn, "capacity", reservation["hotel"])
                yield from ctx.db.update(
                    txn, "capacity", reservation["hotel"],
                    {"available": row["available"] + 1},
                )
                yield from ctx.db.delete(
                    txn, "reservations", payload["reservation_id"]
                )
                return True

            result = yield from with_txn(ctx, body)
            return result

        return service

    def _frontend_service(self) -> Microservice:
        service = Microservice("frontend")

        @service.handler("search")
        def search(ctx, payload):
            hotels = yield from ctx.call("search", "nearby",
                                         {"city": payload["city"]})
            return hotels

        @service.handler("book")
        def book(ctx, payload):
            result = yield from ctx.call(
                "reservation", "reserve", payload,
                idempotency_key=payload["reservation_id"],
            )
            return result

        return service

    # -- executors ------------------------------------------------------------------

    def execute(self, op) -> Generator:
        if isinstance(op, SearchOp):
            yield from self.app.request(
                "frontend", "search", {"city": op.city},
                idempotency_key=op.op_id, timeout=200.0,
            )
        else:
            yield from self.app.request(
                "frontend", "book",
                {"reservation_id": op.op_id, "hotel": op.hotel,
                 "customer": op.customer, "nights": op.nights},
                idempotency_key=op.op_id, timeout=200.0,
            )
        self.ledger.apply(op.op_id)

    # -- final state -------------------------------------------------------------------

    def final_state(self) -> dict:
        reservation_db = self.app.database_of("reservation").engine
        return {
            "hotels": [
                {"id": row["id"], "city": self.workload.city_of(0),
                 "capacity": row["capacity"], "available": row["available"]}
                for row in reservation_db.all_rows("capacity")
            ],
            "reservations": reservation_db.all_rows("reservations"),
        }

"""Money transfers on every runtime — the paradigm-comparison backbone.

Every class exposes the same adapter surface for the harness:

- ``setup()`` — build the runtime and load initial balances;
- ``execute(op)`` — a generator running one
  :class:`~repro.workloads.transfers.TransferOp` end to end, raising on
  client-visible failure, and calling ``ledger.apply`` when the transfer's
  effect lands in state;
- ``balances()`` — final committed state as rows for invariant checks;
- ``audit()`` — a generator reading the total balance *concurrently with
  the workload*, exposing (or not) intermediate states — the isolation
  probe used by benchmark C4.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.actors import Actor, ActorRuntime, ActorTransactionCoordinator, transactional
from repro.apps.core import KernelApp
from repro.dataflow import (
    DataflowRuntime,
    JobGraph,
    StatefunRuntime,
    TransactionalDataflow,
    TxnAbort,
)
from repro.db import DatabaseServer, IsolationLevel
from repro.db.errors import TransactionAborted
from repro.faas import DurableEntities, SharedKv, TransactionalWorkflows
from repro.net.latency import Latency
from repro.sim import Environment
from repro.storage.kv import CasConflict
from repro.workloads.transfers import TransferOp, TransferWorkload


class DbBank(KernelApp):
    """Transfers against the transactional database (the monolith baseline)."""

    def __init__(
        self,
        env: Environment,
        workload: TransferWorkload,
        isolation: IsolationLevel = IsolationLevel.SERIALIZABLE,
        max_retries: int = 8,
        connections: int = 32,
    ) -> None:
        super().__init__(env)
        self.workload = workload
        self.isolation = isolation
        self.max_retries = max_retries
        self.server = DatabaseServer(env, name="bank-db", connections=connections)
        self.server.create_table("accounts", primary_key="id")
        self.server.load("accounts", workload.initial_rows())

    def execute(self, op: TransferOp) -> Generator:
        for attempt in range(self.max_retries):
            txn = yield from self.server.begin(self.isolation)
            try:
                src = yield from self.server.get(txn, "accounts", op.src)
                dst = yield from self.server.get(txn, "accounts", op.dst)
                yield from self.server.put(
                    txn, "accounts", op.src,
                    {"id": op.src, "balance": src["balance"] - op.amount},
                )
                yield from self.server.put(
                    txn, "accounts", op.dst,
                    {"id": op.dst, "balance": dst["balance"] + op.amount},
                )
                yield from self.server.commit(txn)
                self.ledger.apply(op.op_id)
                return
            except TransactionAborted:
                yield from self.server.abort(txn)
                yield self.env.timeout(1.0 + attempt)
        raise RuntimeError(f"{op.op_id}: retries exhausted")

    def balances(self) -> list[dict]:
        return self.server.engine.all_rows("accounts")

    def audit(self) -> Generator:
        """A read-only transaction summing all balances."""
        txn = yield from self.server.begin(self.isolation)
        rows = yield from self.server.scan(txn, "accounts")
        yield from self.server.commit(txn)
        return sum(row["balance"] for row in rows)


@transactional
class _AccountActor(Actor):
    """The bank account as a virtual actor."""

    initial_state = {"balance": 0}

    def load(self, amount):
        self.state["balance"] = amount
        yield from self.save_state()

    def deposit(self, amount):
        self.state["balance"] += amount
        yield from self.save_state()
        return self.state["balance"]

    def withdraw(self, amount):
        self.state["balance"] -= amount
        yield from self.save_state()
        return self.state["balance"]

    def balance(self):
        return self.state["balance"]
        yield  # pragma: no cover

    def txn_deposit(self, amount):
        self.state["balance"] += amount
        return self.state["balance"]
        yield  # pragma: no cover

    def txn_withdraw(self, amount):
        self.state["balance"] -= amount
        return self.state["balance"]
        yield  # pragma: no cover


class ActorBank(KernelApp):
    """Transfers over virtual actors.

    ``mode="plain"`` issues withdraw + deposit as two independent actor
    calls — atomic per actor, *not* across them (the §4.2 default).
    ``mode="transaction"`` uses the Orleans-style coordinator: ACID, at
    the documented performance penalty.
    """

    def __init__(
        self,
        env: Environment,
        workload: TransferWorkload,
        mode: str = "plain",
        num_silos: int = 3,
    ) -> None:
        if mode not in ("plain", "transaction"):
            raise ValueError(f"unknown mode {mode!r}")
        super().__init__(env)
        self.workload = workload
        self.mode = mode
        self.runtime = ActorRuntime(env, num_silos=num_silos)
        self.runtime.register(_AccountActor)
        self.coordinator = ActorTransactionCoordinator(self.runtime)
        self._loaded = False

    def setup(self) -> Generator:
        """Load initial balances (must run inside the simulation)."""
        for row in self.workload.initial_rows():
            ref = self.runtime.ref("_AccountActor", row["id"])
            yield from ref.call("load", row["balance"])
        self._loaded = True

    def execute(self, op: TransferOp) -> Generator:
        if self.mode == "plain":
            yield from self.runtime.ref("_AccountActor", op.src).call(
                "withdraw", op.amount, retries=2
            )
            # Crash window here: withdraw done, deposit maybe never sent.
            yield from self.runtime.ref("_AccountActor", op.dst).call(
                "deposit", op.amount, retries=2
            )
        else:
            yield from self.coordinator.execute([
                ("_AccountActor", op.src, "txn_withdraw", (op.amount,)),
                ("_AccountActor", op.dst, "txn_deposit", (op.amount,)),
            ])
        self.ledger.apply(op.op_id)

    def balances(self) -> list[dict]:
        rows = []
        for row in self.workload.initial_rows():
            state = self.runtime.provider.peek("_AccountActor", row["id"])
            balance = state["balance"] if state else row["balance"]
            rows.append({"id": row["id"], "balance": balance})
        return rows

    def audit(self) -> Generator:
        total = 0
        for row in self.workload.initial_rows():
            ref = self.runtime.ref("_AccountActor", row["id"])
            total += yield from ref.call("balance", retries=2)
        return total


class FaasBank(KernelApp):
    """Transfers on stateful FaaS, at three §4.2 consistency points.

    ``mode="kv"`` — naive read-modify-write on the shared KV: lost
    updates under concurrency (what plain SFaaS gives you).
    ``mode="entities"`` — Durable-Functions-style critical sections.
    ``mode="workflow"`` — Beldi-style serializable OCC workflows.
    """

    def __init__(self, env: Environment, workload: TransferWorkload, mode: str = "workflow") -> None:
        if mode not in ("kv", "entities", "workflow"):
            raise ValueError(f"unknown mode {mode!r}")
        super().__init__(env)
        self.workload = workload
        self.mode = mode
        self.kv = SharedKv(env, rtt=Latency.intra_zone())
        self.entities = DurableEntities(env, rtt=Latency.intra_zone())
        self.entities.define_operation(
            "add", lambda state, amount: state.__setitem__(
                "balance", state.get("balance", 0) + amount
            ) or state["balance"],
        )
        self.entities.define_operation("get", lambda state, _a: state.get("balance", 0))
        self.workflows = TransactionalWorkflows(env, kv=self.kv)
        self.workflows.register("transfer", self._transfer_workflow)

    @staticmethod
    def _transfer_workflow(ctx, payload):
        src = yield from ctx.read(payload["src"], 0)
        dst = yield from ctx.read(payload["dst"], 0)
        ctx.write(payload["src"], src - payload["amount"])
        ctx.write(payload["dst"], dst + payload["amount"])
        return True

    def setup(self) -> Generator:
        for row in self.workload.initial_rows():
            if self.mode == "entities":
                yield from self.entities.signal(row["id"], "add", row["balance"])
            else:
                yield from self.kv.put(row["id"], row["balance"])

    def execute(self, op: TransferOp) -> Generator:
        if self.mode == "kv":
            src = yield from self.kv.get(op.src, 0)
            dst = yield from self.kv.get(op.dst, 0)
            yield from self.kv.put(op.src, src - op.amount)
            yield from self.kv.put(op.dst, dst + op.amount)
        elif self.mode == "entities":
            section = self.entities.critical_section([op.src, op.dst])
            yield from section.enter()
            try:
                yield from section.signal(op.src, "add", -op.amount,
                                          operation_id=f"{op.op_id}/w")
                yield from section.signal(op.dst, "add", op.amount,
                                          operation_id=f"{op.op_id}/d")
            finally:
                section.exit()
        else:
            yield from self.workflows.run(
                "transfer",
                {"src": op.src, "dst": op.dst, "amount": op.amount},
                workflow_id=op.op_id,
            )
        self.ledger.apply(op.op_id)

    def balances(self) -> list[dict]:
        rows = []
        for row in self.workload.initial_rows():
            if self.mode == "entities":
                balance = self.entities.state_of(row["id"]).get("balance", 0)
            else:
                balance = self.kv.store.get(row["id"], 0)
            rows.append({"id": row["id"], "balance": balance})
        return rows

    def audit(self) -> Generator:
        total = 0
        for row in self.workload.initial_rows():
            if self.mode == "entities":
                balance = yield from self.entities.signal(row["id"], "get")
            else:
                balance = yield from self.kv.get(row["id"], 0)
            total += balance
        return total


class DataflowBank(KernelApp):
    """Transfers as a stream through the exactly-once dataflow engine.

    A transfer is one record keyed by the source account; the debit
    operator emits a credit record keyed by the destination.  Both effects
    are exactly-once (checkpoint + replay), but there is **no isolation**:
    between debit and credit the money is in flight, and concurrent audits
    observe inconsistent totals — benchmark C4's point.
    """

    def __init__(
        self,
        env: Environment,
        workload: TransferWorkload,
        checkpoint_interval: float = 100.0,
    ) -> None:
        super().__init__(env)
        self.workload = workload
        graph = JobGraph("bank")
        graph.source("transfers", emit_interval=0.1)
        graph.operator("debit", self._debit, parallelism=2, work_ms=0.1)
        graph.operator("credit", self._credit, parallelism=2, work_ms=0.1)
        graph.sink("done", mode="exactly_once")
        graph.connect("transfers", "debit")
        graph.connect("debit", "credit")
        graph.connect("credit", "done")
        self.runtime = DataflowRuntime(
            env, graph, checkpoint_interval=checkpoint_interval
        )
        self._balances: dict[str, int] = {
            row["id"]: row["balance"] for row in workload.initial_rows()
        }

    def _debit(self, state, key, value, emit):
        balance = state.get(key, self._balances.get(key, 0))
        state.put(key, balance - value["amount"])
        emit(value["dst"], value)

    def _credit(self, state, key, value, emit):
        balance = state.get(key, self._balances.get(key, 0))
        state.put(key, balance + value["amount"])
        emit(key, {"op_id": value["op_id"]})

    def start(self) -> None:
        self.runtime.start()

    def submit(self, op: TransferOp) -> None:
        """Fire-and-forget ingestion (stream semantics)."""
        self.runtime.send(
            "transfers", op.src,
            {"op_id": op.op_id, "src": op.src, "dst": op.dst, "amount": op.amount},
        )

    def completed_ops(self) -> list[str]:
        return [value["op_id"] for _k, value, _t in self.runtime.sink_outputs("done")]

    def balances(self) -> list[dict]:
        # Debit and credit keep separate per-operator state for the same
        # logical account, each lazily initialized from the loaded balance;
        # the true balance is the base plus both operators' deltas.
        deltas: dict[str, int] = {}
        for stage, tasks in self.runtime._operators.items():
            for task in tasks:
                for key, value in task.store.items():
                    base = self._balances.get(key, 0)
                    deltas[key] = deltas.get(key, 0) + (value - base)
        return [
            {"id": key, "balance": self._balances.get(key, 0) + deltas.get(key, 0)}
            for key in self._balances
        ]

    def audit_total(self) -> int:
        """An instantaneous (non-transactional) total over live state."""
        return sum(row["balance"] for row in self.balances())


class DurableWorkflowBank(KernelApp):
    """Transfers as durable orchestrations (Durable Functions style).

    Each transfer is a workflow with two activities (debit, credit)
    against the shared KV.  Workflow *progress* is exactly-once (completed
    activities never re-run, even across engine crashes), but the
    activities are individual KV updates — atomic per key, no isolation
    across the pair, like the entities story of §4.2.
    """

    def __init__(self, env: Environment, workload: TransferWorkload) -> None:
        from repro.faas import DurableWorkflows, SharedKv

        super().__init__(env)
        self.workload = workload
        self.kv = SharedKv(env, rtt=Latency.intra_zone())
        self.engine = DurableWorkflows(env, activity_latency=0.5)

        @self.engine.activity("debit")
        def debit(account, amount):
            balance = yield from self.kv.get(account, 0)
            yield from self.kv.put(account, balance - amount)
            return balance - amount

        @self.engine.activity("credit")
        def credit(account, amount):
            balance = yield from self.kv.get(account, 0)
            yield from self.kv.put(account, balance + amount)
            return balance + amount

        @self.engine.workflow("transfer")
        def transfer(ctx, payload):
            yield ctx.activity("debit", payload["src"], payload["amount"])
            result = yield ctx.activity("credit", payload["dst"], payload["amount"])
            return result

    def setup(self) -> Generator:
        for row in self.workload.initial_rows():
            yield from self.kv.put(row["id"], row["balance"])

    def execute(self, op: TransferOp) -> Generator:
        future = self.engine.start(
            op.op_id, "transfer",
            {"src": op.src, "dst": op.dst, "amount": op.amount},
        )
        yield future
        self.ledger.apply(op.op_id)

    def balances(self) -> list[dict]:
        return [
            {"id": row["id"], "balance": self.kv.store.get(row["id"], 0)}
            for row in self.workload.initial_rows()
        ]


class StatefunBank(KernelApp):
    """Transfers as Statefun entities: debit entity messages credit entity.

    Exactly-once via rewind + replay, atomic *per entity*, no isolation
    across them — the precise §4.2 characterization of Statefun.
    """

    def __init__(
        self,
        env: Environment,
        workload: TransferWorkload,
        checkpoint_interval: float = 100.0,
    ) -> None:
        super().__init__(env)
        self.workload = workload
        self.runtime = StatefunRuntime(env, checkpoint_interval=checkpoint_interval)
        balances = {row["id"]: row["balance"] for row in workload.initial_rows()}

        @self.runtime.function("account")
        def account(ctx, key, message):
            state = ctx.state
            if "balance" not in state:
                state["balance"] = balances.get(key, 0)
            if message["op"] == "debit":
                state["balance"] -= message["amount"]
                ctx.send("account", message["dst"],
                         {"op": "credit", "amount": message["amount"],
                          "op_id": message["op_id"]})
            else:
                state["balance"] += message["amount"]
                ctx.egress(message["op_id"])
            return
            yield  # pragma: no cover

    def start(self) -> None:
        self.runtime.start()

    def submit(self, op: TransferOp) -> None:
        self.runtime.ingress(
            "account", op.src,
            {"op": "debit", "dst": op.dst, "amount": op.amount, "op_id": op.op_id},
        )

    def completed_ops(self) -> list[str]:
        return self.runtime.egress_records()

    def balances(self) -> list[dict]:
        rows = []
        for row in self.workload.initial_rows():
            state = self.runtime.state_of("account", row["id"])
            rows.append({
                "id": row["id"],
                "balance": state.get("balance", row["balance"]),
            })
        return rows

    def audit_total(self) -> int:
        """Instantaneous (non-transactional) total over entity state."""
        return sum(row["balance"] for row in self.balances())


class TxnDataflowBank(KernelApp):
    """Transfers on the Styx-like transactional dataflow: serializable."""

    def __init__(self, env: Environment, workload: TransferWorkload, **engine_kwargs) -> None:
        super().__init__(env)
        self.workload = workload
        engine_kwargs.setdefault("epoch_interval", 5.0)
        self.engine = TransactionalDataflow(env, **engine_kwargs)
        self.engine.register("transfer", self._transfer)
        self.engine.register("_credit_leg", self._credit_leg)
        self.engine.register("load", self._load)
        self.engine.register("audit", self._audit)

    @staticmethod
    def _load(ctx, key, amount):
        ctx.put(key, amount)
        return amount
        yield  # pragma: no cover

    @staticmethod
    def _transfer(ctx, key, payload):
        src_balance = ctx.get(key, 0)
        ctx.put(key, src_balance - payload["amount"])
        result = yield from ctx.call("_credit_leg", payload["dst"], payload["amount"])
        return result

    def _audit(self, ctx, key, account_ids):
        total = 0
        for account in account_ids:
            total += ctx.get(account, 0)
        return total
        yield  # pragma: no cover

    def start(self) -> None:
        self.engine.start()

    @staticmethod
    def _credit_leg(ctx, key, amount):
        ctx.put(key, ctx.get(key, 0) + amount)
        return ctx.get(key)
        yield  # pragma: no cover

    def setup(self) -> Generator:
        futures = [
            self.engine.submit("load", row["id"], row["balance"], keys=[row["id"]])
            for row in self.workload.initial_rows()
        ]
        for future in futures:
            yield future

    def execute(self, op: TransferOp) -> Generator:
        future = self.engine.submit(
            "transfer", op.src,
            {"dst": op.dst, "amount": op.amount},
            keys=[op.src, op.dst],
        )
        yield future
        self.ledger.apply(op.op_id)

    def balances(self) -> list[dict]:
        return [
            {"id": row["id"], "balance": self.engine.state_of(row["id"]) or 0}
            for row in self.workload.initial_rows()
        ]

    def audit(self) -> Generator:
        """A serializable read-only transaction over all accounts."""
        account_ids = [row["id"] for row in self.workload.initial_rows()]
        future = self.engine.submit("audit", account_ids[0], account_ids, keys=account_ids)
        total = yield future
        return total

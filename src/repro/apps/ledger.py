"""The payments ledger: double-entry postings, balanced by construction.

The first app defined purely as an :class:`~repro.apps.core.AppSpec` —
one handler, three entities, three invariants — and deployed onto every
runtime by the generic binders.  A transfer is not two balance updates
that happen to cancel; it is a *posting row* recording both legs plus
the two balance effects plus a causally-tied audit entry, all in one
declared-key transaction:

- ``conservation`` — the balance total never drifts;
- ``double_entry`` — every balance delta is explained by postings (the
  sharpest state-only detector for torn application);
- ``causal_audit`` — the audit trail describes exactly the postings
  that committed (the C12/Antipode concern as app state).
"""

from __future__ import annotations

from typing import Generator

from repro.apps.core import (
    AppSpec,
    CausalAuditSpec,
    ConservationSpec,
    DoubleEntrySpec,
    EntitySpec,
    HandlerSpec,
)
from repro.workloads.transfers import TransferOp, TransferWorkload


def _post(ctx, op: TransferOp) -> Generator:
    src = yield from ctx.get("accounts", op.src)
    dst = yield from ctx.get("accounts", op.dst)
    yield from ctx.put(
        "accounts", op.src, {"id": op.src, "balance": src["balance"] - op.amount}
    )
    yield from ctx.put(
        "accounts", op.dst, {"id": op.dst, "balance": dst["balance"] + op.amount}
    )
    posting = {"id": op.op_id, "src": op.src, "dst": op.dst, "amount": op.amount}
    yield from ctx.put("postings", op.op_id, posting)
    yield from ctx.put("audit", op.op_id, dict(posting))
    return True


def _reads(op: TransferOp):
    return [("accounts", op.src), ("accounts", op.dst)]


def _writes(op: TransferOp):
    return [
        ("accounts", op.src),
        ("accounts", op.dst),
        ("postings", op.op_id),
        ("audit", op.op_id),
    ]


def ledger_spec(workload: TransferWorkload) -> AppSpec:
    """Build the ledger app over a transfer workload's account universe."""
    initial = {row["id"]: row["balance"] for row in workload.initial_rows()}
    return AppSpec(
        name="ledger",
        entities=[
            EntitySpec("accounts"),
            EntitySpec("postings"),
            EntitySpec("audit"),
        ],
        handlers=[HandlerSpec("posting", _post, _reads, _writes)],
        invariants=[
            ConservationSpec("accounts", "balance", workload.expected_total),
            DoubleEntrySpec("accounts", "postings", initial),
            CausalAuditSpec("postings", "audit",
                            match_fields=("src", "dst", "amount")),
        ],
        initial_rows={"accounts": workload.initial_rows()},
        kind="posting",
        effect_entity="postings",
    )

"""Workload generators and arrival processes for the benchmark suite.

The paper argues (§5.3) that existing cloud-application benchmarks miss
data-management requirements — multi-item transactions, data invariants,
exactly-once semantics — and that request-arrival modeling must respect the
open/closed distinction (Schroeder et al.).  This package supplies:

- :mod:`repro.workloads.arrivals` — open (Poisson), closed (think-time),
  and partly-open arrival processes;
- :mod:`repro.workloads.ycsb` — YCSB-style KV mixes with zipfian skew;
- :mod:`repro.workloads.transfers` — the bank-transfer microbenchmark with
  a conservation invariant (the anomaly detector's favourite prey);
- :mod:`repro.workloads.tpcc` — TPC-C-lite (NewOrder/Payment/OrderStatus)
  with consistency conditions;
- :mod:`repro.workloads.marketplace` — an Online-Marketplace-style
  checkout (cart → stock → payment) with oversell/double-charge invariants;
- :mod:`repro.workloads.hotel` — a DeathStarBench-style hotel reservation
  workload with capacity invariants.
"""

from repro.workloads.arrivals import (
    ClosedLoop,
    OpenLoop,
    PartlyOpenLoop,
)
from repro.workloads.transfers import TransferWorkload
from repro.workloads.tpcc import TpccLite
from repro.workloads.marketplace import MarketplaceWorkload
from repro.workloads.hotel import HotelWorkload
from repro.workloads.ycsb import YcsbWorkload, ZipfianGenerator

__all__ = [
    "ClosedLoop",
    "HotelWorkload",
    "MarketplaceWorkload",
    "OpenLoop",
    "PartlyOpenLoop",
    "TpccLite",
    "TransferWorkload",
    "YcsbWorkload",
    "ZipfianGenerator",
]

"""An Online-Marketplace-style checkout workload.

Modeled on the paper's own benchmark line of work (ref [38], "Online
Marketplace: A Benchmark for Data Management in Microservices"): a
checkout spans cart, stock, payment, and order services, and correctness
is defined by *cross-service* data invariants:

- **no oversell** — units reserved never exceed units stocked;
- **charge exactly once** — one payment per confirmed order;
- **no orphan reservations** — a failed checkout leaves no stock reserved.

The operation stream mixes checkouts with a configurable fraction of
payment failures, so compensation paths (sagas) get exercised, not just
happy paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.transactions.anomalies import Invariant, Violation
from repro.workloads.ycsb import ZipfianGenerator


@dataclass(frozen=True)
class CheckoutOp:
    """One customer checkout: a cart of (product, quantity) pairs."""

    op_id: str
    customer: str
    cart: tuple[tuple[str, int], ...]
    payment_fails: bool  # injected business failure (card declined)


@dataclass
class MarketplaceWorkload:
    """Checkout generator + invariants."""

    num_products: int = 50
    num_customers: int = 100
    initial_stock: int = 100
    payment_failure_rate: float = 0.1
    max_cart_size: int = 3
    theta: float = 0.5  # product popularity skew

    def __post_init__(self) -> None:
        if self.num_products <= 0 or self.num_customers <= 0:
            raise ValueError("need products and customers")
        self._zipf = ZipfianGenerator(self.num_products, self.theta)

    @staticmethod
    def product(index: int) -> str:
        return f"prod-{index:04d}"

    def initial_products(self) -> list[dict]:
        return [
            {"id": self.product(i), "stock": self.initial_stock, "reserved": 0}
            for i in range(self.num_products)
        ]

    def operations(self, rng: random.Random, count: int) -> Iterator[CheckoutOp]:
        for index in range(count):
            size = rng.randint(1, self.max_cart_size)
            products = {self.product(p) for p in self._zipf.sample_distinct(rng, size)}
            cart = tuple((p, rng.randint(1, 3)) for p in sorted(products))
            yield CheckoutOp(
                op_id=f"order-{index:06d}",
                customer=f"cust-{rng.randrange(self.num_customers):04d}",
                cart=cart,
                payment_fails=rng.random() < self.payment_failure_rate,
            )

    def invariants(self) -> list[Invariant]:
        return [
            _NoOversellInvariant(self.initial_stock),
            _ChargeExactlyOnceInvariant(),
            _NoOrphanReservationInvariant(),
        ]


class _NoOversellInvariant(Invariant):
    """Units sold + remaining stock per product must equal the initial stock."""

    name = "marketplace.no_oversell"

    def __init__(self, initial_stock: int) -> None:
        self.initial_stock = initial_stock

    def check(self, state: dict) -> list[Violation]:
        violations = []
        sold: dict[str, int] = {}
        for order in state["orders"]:
            for product, quantity in order["items"]:
                sold[product] = sold.get(product, 0) + quantity
        for product_row in state["products"]:
            total = product_row["stock"] + sold.get(product_row["id"], 0)
            if product_row["stock"] < 0 or total > self.initial_stock:
                violations.append(
                    Violation(
                        self.name,
                        f"{product_row['id']}: stock={product_row['stock']}, "
                        f"sold={sold.get(product_row['id'], 0)}, "
                        f"initial={self.initial_stock}",
                    )
                )
        return violations


class _ChargeExactlyOnceInvariant(Invariant):
    """Every confirmed order has exactly one payment; no payment is orphan."""

    name = "marketplace.charge_exactly_once"

    def check(self, state: dict) -> list[Violation]:
        violations = []
        payments_by_order: dict[str, int] = {}
        for payment in state["payments"]:
            payments_by_order[payment["order_id"]] = (
                payments_by_order.get(payment["order_id"], 0) + 1
            )
        order_ids = {order["id"] for order in state["orders"]}
        for order_id in order_ids:
            count = payments_by_order.get(order_id, 0)
            if count != 1:
                violations.append(
                    Violation(self.name, f"order {order_id}: {count} payments")
                )
        for order_id, count in payments_by_order.items():
            if order_id not in order_ids:
                violations.append(
                    Violation(self.name, f"payment without order: {order_id} x{count}")
                )
        return violations


class _NoOrphanReservationInvariant(Invariant):
    """After quiescence, no stock remains flagged as reserved."""

    name = "marketplace.no_orphan_reservation"

    def check(self, state: dict) -> list[Violation]:
        return [
            Violation(self.name, f"{row['id']}: reserved={row['reserved']}")
            for row in state["products"]
            if row.get("reserved", 0) != 0
        ]

"""The invoicing workload: issue invoices with gap-free sequence numbers.

Real billing systems carry a legal obligation that invoice numbers be
contiguous — an auditor reading 17, 18, 20 assumes a destroyed invoice.
The workload itself is embarrassingly simple (issue N invoices); all the
difficulty lives in the invariant: numbers must stay gap-free and
duplicate-free through contention, shard migration, and leader failover,
which is exactly what the chaos scenario exercises.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.transactions.anomalies import Invariant, PredicateInvariant


@dataclass(frozen=True)
class InvoiceOp:
    """Issue one invoice; the sequence number is assigned transactionally."""

    op_id: str
    customer: str
    amount: int
    kind: str = "invoice"


@dataclass
class InvoicingWorkload:
    """Configuration + generator for invoice operations."""

    num_customers: int = 10
    min_amount: int = 5
    max_amount: int = 250

    counter_key: str = "invoice"

    def initial_rows(self) -> dict[str, list[dict]]:
        return {"counters": [{"id": self.counter_key, "next": 1}]}

    def operations(self, rng: random.Random, count: int) -> Iterator[InvoiceOp]:
        for index in range(count):
            yield InvoiceOp(
                op_id=f"inv-{index:06d}",
                customer=f"cust-{rng.randrange(self.num_customers):03d}",
                amount=rng.randint(self.min_amount, self.max_amount),
            )

    def invariants(self) -> list[Invariant]:
        """Snapshot-level check (the spec's GapFreeSequenceSpec is richer)."""

        def gap_free(state) -> bool:
            numbers = sorted(row["number"] for row in state.get("invoices", []))
            return numbers == list(range(1, len(numbers) + 1))

        return [
            PredicateInvariant(
                "gap_free(invoices.number)", gap_free,
                "invoice numbers are not contiguous from 1",
            )
        ]

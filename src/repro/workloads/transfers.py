"""The bank-transfer microbenchmark: the anomaly detector's litmus test.

Each operation moves a fixed amount between two zipf-chosen accounts.  The
invariants are unforgiving:

- **conservation** — the sum of balances never changes;
- **exactly-once** — every acknowledged transfer applied exactly once
  (checked via the :class:`~repro.transactions.anomalies.EffectLedger`).

Lost updates, duplicated messages, partial saga states, and replay bugs
all leave fingerprints here, which is why C3, C4 and C5 are built on it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.transactions.anomalies import ConservationInvariant, Invariant
from repro.workloads.ycsb import ZipfianGenerator


@dataclass(frozen=True)
class TransferOp:
    """Move ``amount`` from ``src`` to ``dst``; ``op_id`` keys the ledger."""

    op_id: str
    src: str
    dst: str
    amount: int


@dataclass
class TransferWorkload:
    """Configuration + generator for transfer operations."""

    num_accounts: int = 100
    initial_balance: int = 1000
    amount: int = 10
    theta: float = 0.6  # contention knob: higher = more conflicts

    def __post_init__(self) -> None:
        if self.num_accounts < 2:
            raise ValueError("need at least two accounts")
        self._zipf = ZipfianGenerator(self.num_accounts, self.theta)

    @staticmethod
    def account(index: int) -> str:
        return f"acct-{index:05d}"

    def initial_rows(self) -> list[dict]:
        return [
            {"id": self.account(i), "balance": self.initial_balance}
            for i in range(self.num_accounts)
        ]

    @property
    def expected_total(self) -> int:
        return self.num_accounts * self.initial_balance

    def operations(self, rng: random.Random, count: int) -> Iterator[TransferOp]:
        for index in range(count):
            src = self._zipf.next(rng)
            dst = self._zipf.next(rng)
            while dst == src:
                dst = self._zipf.next(rng)
            yield TransferOp(
                op_id=f"xfer-{index:06d}",
                src=self.account(src),
                dst=self.account(dst),
                amount=self.amount,
            )

    def invariants(self) -> list[Invariant]:
        return [ConservationInvariant("balance", self.expected_total)]

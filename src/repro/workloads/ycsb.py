"""YCSB-style key-value workloads with zipfian skew.

The operation mixes follow the YCSB core workloads (A: 50/50 read/update,
B: 95/5, C: read-only, ...); keys are drawn from the classic Gray et al.
zipfian generator so that contention is tunable via ``theta``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional


class ZipfianGenerator:
    """Zipf-distributed integers in ``[0, n)`` (Gray et al. / YCSB method).

    ``theta`` near 0 is uniform; the YCSB default 0.99 is heavily skewed.
    """

    def __init__(self, n: int, theta: float = 0.99) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0 <= theta < 1:
            raise ValueError("theta must be in [0, 1)")
        self.n = n
        self.theta = theta
        self._zetan = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        if n <= 2:
            # Gray's method divides by zero for tiny n; sample exactly.
            weights = [1.0 / (i ** theta) for i in range(1, n + 1)]
            total = sum(weights)
            self._small_cdf = []
            acc = 0.0
            for weight in weights:
                acc += weight / total
                self._small_cdf.append(acc)
            return
        self._small_cdf = None
        self._alpha = 1.0 / (1.0 - theta)
        zeta2 = sum(1.0 / (i ** theta) for i in range(1, min(3, n + 1)))
        self._eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - zeta2 / self._zetan)

    def next(self, rng: random.Random) -> int:
        u = rng.random()
        if self._small_cdf is not None:
            for index, bound in enumerate(self._small_cdf):
                if u <= bound:
                    return index
            return self.n - 1
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * ((self._eta * u) - self._eta + 1) ** self._alpha)

    def sample_distinct(self, rng: random.Random, count: int) -> list[int]:
        """``count`` distinct zipf-distributed values (for multi-key txns)."""
        if count > self.n:
            raise ValueError("cannot sample more distinct keys than exist")
        seen: set[int] = set()
        while len(seen) < count:
            seen.add(self.next(rng))
        return sorted(seen)


@dataclass(frozen=True)
class YcsbOp:
    """One abstract operation: the adapter decides how to run it."""

    kind: str  # "read" | "update" | "insert" | "scan" | "rmw"
    key: str
    value: Optional[dict] = None
    scan_length: int = 0


_MIXES = {
    "A": {"read": 0.5, "update": 0.5},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.0},
    "D": {"read": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"read": 0.5, "rmw": 0.5},
}


@dataclass
class YcsbWorkload:
    """A YCSB core workload instance.

    ``mix`` is a letter A–F or a custom ``{kind: fraction}`` dict.
    """

    record_count: int = 1000
    mix: object = "A"
    theta: float = 0.99
    value_size: int = 8

    def __post_init__(self) -> None:
        if isinstance(self.mix, str):
            if self.mix not in _MIXES:
                raise ValueError(f"unknown YCSB mix {self.mix!r}")
            self._fractions = _MIXES[self.mix]
        else:
            self._fractions = dict(self.mix)
        total = sum(self._fractions.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mix fractions sum to {total}, expected 1.0")
        self._zipf = ZipfianGenerator(self.record_count, self.theta)
        self._insert_counter = self.record_count

    @staticmethod
    def key_of(index: int) -> str:
        return f"user{index:08d}"

    def initial_rows(self) -> list[dict]:
        """Rows to load before the run."""
        return [
            {"id": self.key_of(i), "field0": "x" * self.value_size}
            for i in range(self.record_count)
        ]

    def operations(self, rng: random.Random, count: int) -> Iterator[YcsbOp]:
        """Generate ``count`` operations according to the mix."""
        kinds = list(self._fractions)
        weights = [self._fractions[k] for k in kinds]
        for _ in range(count):
            kind = rng.choices(kinds, weights=weights)[0]
            if kind == "insert":
                self._insert_counter += 1
                yield YcsbOp(
                    "insert",
                    self.key_of(self._insert_counter),
                    {"field0": "y" * self.value_size},
                )
            elif kind == "scan":
                yield YcsbOp(
                    "scan",
                    self.key_of(self._zipf.next(rng)),
                    scan_length=rng.randint(1, 20),
                )
            else:
                key = self.key_of(self._zipf.next(rng))
                value = {"field0": "z" * self.value_size} if kind in ("update", "rmw") else None
                yield YcsbOp(kind, key, value)

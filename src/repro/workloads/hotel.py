"""A DeathStarBench-style hotel-reservation workload.

DeathStarBench (paper ref [27]) is the de-facto microservice benchmark;
its hotel-reservation application is the scenario used by Boki and
friends.  We keep its essential data-management shape: a search over
nearby hotels followed by a reservation against finite room capacity, with
a capacity invariant that breaks under lost isolation (two concurrent
reservations both observing the last room).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.transactions.anomalies import Invariant, Violation


@dataclass(frozen=True)
class SearchOp:
    op_id: str
    city: str


@dataclass(frozen=True)
class ReserveOp:
    op_id: str
    hotel: str
    customer: str
    nights: int


@dataclass
class HotelWorkload:
    """Search/reserve mix over a set of hotels with finite capacity."""

    num_hotels: int = 20
    num_cities: int = 4
    capacity_per_hotel: int = 10
    reserve_fraction: float = 0.4
    num_customers: int = 200

    def __post_init__(self) -> None:
        if self.num_hotels <= 0 or self.num_cities <= 0:
            raise ValueError("need hotels and cities")

    @staticmethod
    def hotel(index: int) -> str:
        return f"hotel-{index:03d}"

    def city_of(self, hotel_index: int) -> str:
        return f"city-{hotel_index % self.num_cities}"

    def initial_hotels(self) -> list[dict]:
        return [
            {
                "id": self.hotel(i),
                "city": self.city_of(i),
                "capacity": self.capacity_per_hotel,
                "available": self.capacity_per_hotel,
            }
            for i in range(self.num_hotels)
        ]

    def operations(self, rng: random.Random, count: int) -> Iterator[object]:
        for index in range(count):
            op_id = f"hotel-{index:06d}"
            if rng.random() < self.reserve_fraction:
                yield ReserveOp(
                    op_id=op_id,
                    hotel=self.hotel(rng.randrange(self.num_hotels)),
                    customer=f"cust-{rng.randrange(self.num_customers):04d}",
                    nights=rng.randint(1, 5),
                )
            else:
                yield SearchOp(op_id=op_id, city=f"city-{rng.randrange(self.num_cities)}")

    def invariants(self) -> list[Invariant]:
        return [_CapacityInvariant()]


class _CapacityInvariant(Invariant):
    """available + confirmed reservations == capacity, and available >= 0."""

    name = "hotel.capacity"

    def check(self, state: dict) -> list[Violation]:
        violations = []
        reserved: dict[str, int] = {}
        for reservation in state["reservations"]:
            reserved[reservation["hotel"]] = reserved.get(reservation["hotel"], 0) + 1
        for hotel in state["hotels"]:
            total = hotel["available"] + reserved.get(hotel["id"], 0)
            if hotel["available"] < 0 or total != hotel["capacity"]:
                violations.append(
                    Violation(
                        self.name,
                        f"{hotel['id']}: available={hotel['available']}, "
                        f"reserved={reserved.get(hotel['id'], 0)}, "
                        f"capacity={hotel['capacity']}",
                    )
                )
        return violations

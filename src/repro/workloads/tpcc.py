"""TPC-C-lite: the complex-transaction stress test for cloud runtimes.

A faithful subset of TPC-C at laptop scale (paper §4.2/§5.3: "recent work
has found challenges in supporting large-scale, complex transactional
applications like TPC-C in existing state-of-the-art SFaaS systems").
Implemented transactions:

- **NewOrder** — read customer/warehouse, update 5–15 stock rows (1% of
  line items from a *remote* warehouse — the cross-partition trigger),
  insert order + order lines;
- **Payment** — update warehouse/district YTD, update customer balance
  (15% pay through a remote warehouse);
- **OrderStatus** — read a customer's latest order (read-only).

Consistency conditions (from the TPC-C spec §3.3.2, adapted):

- warehouse YTD equals the sum of its districts' YTD;
- every order has exactly as many lines as recorded in ``ol_cnt``;
- stock never goes negative (we *reject* under-stock orders, so a negative
  value is a runtime isolation bug, not business as usual).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.transactions.anomalies import Invariant, Violation

DISTRICTS_PER_WAREHOUSE = 4
CUSTOMERS_PER_DISTRICT = 30
ITEMS = 100
INITIAL_STOCK = 1000


@dataclass(frozen=True)
class NewOrderOp:
    op_id: str
    warehouse: int
    district: int
    customer: int
    # (item_id, supply_warehouse, quantity)
    lines: tuple[tuple[int, int, int], ...]


@dataclass(frozen=True)
class PaymentOp:
    op_id: str
    warehouse: int
    district: int
    customer: int
    customer_warehouse: int  # may differ: remote payment
    amount: int


@dataclass(frozen=True)
class OrderStatusOp:
    op_id: str
    warehouse: int
    district: int
    customer: int


@dataclass
class TpccLite:
    """Scaled-down TPC-C: generator + schema + consistency checks."""

    warehouses: int = 2
    new_order_fraction: float = 0.45
    payment_fraction: float = 0.43
    # remainder: order-status
    remote_line_fraction: float = 0.01
    remote_payment_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.warehouses <= 0:
            raise ValueError("need at least one warehouse")

    # -- initial data -----------------------------------------------------------

    def initial_warehouses(self) -> list[dict]:
        return [{"id": w, "ytd": 0} for w in range(self.warehouses)]

    def initial_districts(self) -> list[dict]:
        return [
            {"id": f"{w}:{d}", "warehouse": w, "ytd": 0, "next_o_id": 1}
            for w in range(self.warehouses)
            for d in range(DISTRICTS_PER_WAREHOUSE)
        ]

    def initial_customers(self) -> list[dict]:
        return [
            {
                "id": f"{w}:{d}:{c}",
                "warehouse": w,
                "district": d,
                "balance": 0,
                "payment_cnt": 0,
            }
            for w in range(self.warehouses)
            for d in range(DISTRICTS_PER_WAREHOUSE)
            for c in range(CUSTOMERS_PER_DISTRICT)
        ]

    def initial_items(self) -> list[dict]:
        return [{"id": i, "price": 1 + (i % 50)} for i in range(ITEMS)]

    def initial_stock(self) -> list[dict]:
        return [
            {"id": f"{w}:{i}", "warehouse": w, "item": i, "quantity": INITIAL_STOCK}
            for w in range(self.warehouses)
            for i in range(ITEMS)
        ]

    # -- operation stream -----------------------------------------------------------

    def operations(self, rng: random.Random, count: int) -> Iterator[Any]:
        for index in range(count):
            roll = rng.random()
            warehouse = rng.randrange(self.warehouses)
            district = rng.randrange(DISTRICTS_PER_WAREHOUSE)
            customer = rng.randrange(CUSTOMERS_PER_DISTRICT)
            op_id = f"tpcc-{index:06d}"
            if roll < self.new_order_fraction:
                yield self._new_order(rng, op_id, warehouse, district, customer)
            elif roll < self.new_order_fraction + self.payment_fraction:
                customer_warehouse = warehouse
                if (
                    self.warehouses > 1
                    and rng.random() < self.remote_payment_fraction
                ):
                    customer_warehouse = rng.randrange(self.warehouses)
                yield PaymentOp(
                    op_id=op_id,
                    warehouse=warehouse,
                    district=district,
                    customer=customer,
                    customer_warehouse=customer_warehouse,
                    amount=1 + rng.randrange(50),
                )
            else:
                yield OrderStatusOp(
                    op_id=op_id,
                    warehouse=warehouse,
                    district=district,
                    customer=customer,
                )

    def _new_order(
        self, rng: random.Random, op_id: str, warehouse: int, district: int, customer: int
    ) -> NewOrderOp:
        num_lines = rng.randint(5, 15)
        items = rng.sample(range(ITEMS), num_lines)
        lines = []
        for item in items:
            supply = warehouse
            if self.warehouses > 1 and rng.random() < self.remote_line_fraction:
                supply = rng.randrange(self.warehouses)
            lines.append((item, supply, rng.randint(1, 10)))
        return NewOrderOp(
            op_id=op_id,
            warehouse=warehouse,
            district=district,
            customer=customer,
            lines=tuple(lines),
        )

    # -- consistency conditions --------------------------------------------------------

    def invariants(self) -> list[Invariant]:
        return [
            _WarehouseYtdInvariant(),
            _OrderLineCountInvariant(),
            _StockNonNegativeInvariant(),
        ]


class _WarehouseYtdInvariant(Invariant):
    """TPC-C condition 1: W_YTD = sum(D_YTD) per warehouse."""

    name = "tpcc.warehouse_ytd"

    def check(self, state: dict) -> list[Violation]:
        violations = []
        district_totals: dict[int, int] = {}
        for district in state["districts"]:
            warehouse = district["warehouse"]
            district_totals[warehouse] = district_totals.get(warehouse, 0) + district["ytd"]
        for warehouse in state["warehouses"]:
            expected = district_totals.get(warehouse["id"], 0)
            if warehouse["ytd"] != expected:
                violations.append(
                    Violation(
                        self.name,
                        f"warehouse {warehouse['id']}: W_YTD={warehouse['ytd']} "
                        f"!= sum(D_YTD)={expected}",
                    )
                )
        return violations


class _OrderLineCountInvariant(Invariant):
    """TPC-C condition 3-ish: each order has ol_cnt order lines."""

    name = "tpcc.order_line_count"

    def check(self, state: dict) -> list[Violation]:
        violations = []
        lines_per_order: dict[str, int] = {}
        for line in state["order_lines"]:
            lines_per_order[line["order_id"]] = lines_per_order.get(line["order_id"], 0) + 1
        for order in state["orders"]:
            actual = lines_per_order.get(order["id"], 0)
            if actual != order["ol_cnt"]:
                violations.append(
                    Violation(
                        self.name,
                        f"order {order['id']}: {actual} lines, expected {order['ol_cnt']}",
                    )
                )
        return violations


class _StockNonNegativeInvariant(Invariant):
    """Stock must never be driven below zero (orders are rejected instead)."""

    name = "tpcc.stock_non_negative"

    def check(self, state: dict) -> list[Violation]:
        return [
            Violation(self.name, f"stock {row['id']}: quantity={row['quantity']}")
            for row in state["stock"]
            if row["quantity"] < 0
        ]

"""Arrival processes: open, closed, and partly-open system models.

Schroeder, Wierman & Harchol-Balter (NSDI'06, paper ref [56]) showed that
whether a benchmark models arrivals as *open* (requests arrive by a clock,
regardless of completions) or *closed* (a fixed client population with
think time) changes its conclusions.  Benchmark C9 reproduces that; every
other benchmark states which model it uses.

Each process drives an ``issue(op_index) -> Generator`` callback supplied
by the harness; the callback performs one operation end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.sim import Environment, Interrupted

IssueFn = Callable[[int], Generator]


@dataclass
class OpenLoop:
    """Poisson arrivals at ``rate_per_s``, independent of completions.

    The defining property: queueing delay does not throttle new arrivals,
    so an overloaded system's latency grows without bound.
    """

    rate_per_s: float
    total_ops: int

    def drive(self, env: Environment, issue: IssueFn) -> Generator:
        """Spawn one process per arrival; returns when all ops complete."""
        if self.rate_per_s <= 0 or self.total_ops <= 0:
            raise ValueError("rate_per_s and total_ops must be positive")
        rng = env.stream("open-arrivals")
        mean_gap_ms = 1000.0 / self.rate_per_s
        running = []
        for index in range(self.total_ops):
            yield env.timeout(rng.expovariate(1.0 / mean_gap_ms))
            running.append(env.process(issue(index), label=f"op-{index}"))
        for process in running:
            if process.done:
                continue
            try:
                yield process
            except Interrupted:
                raise
            except Exception:  # noqa: BLE001 - op failures already recorded
                pass

    @property
    def name(self) -> str:
        return f"open({self.rate_per_s}/s)"


@dataclass
class ClosedLoop:
    """A fixed population of clients: issue, wait, think, repeat.

    The defining property: completions gate arrivals, so the offered load
    self-throttles under slowdown — flattering to slow systems.
    """

    clients: int
    ops_per_client: int
    think_time_ms: float = 10.0

    def drive(self, env: Environment, issue: IssueFn) -> Generator:
        if self.clients <= 0 or self.ops_per_client <= 0:
            raise ValueError("clients and ops_per_client must be positive")
        rng = env.stream("closed-arrivals")

        def client(client_index: int) -> Generator:
            for i in range(self.ops_per_client):
                op_index = client_index * self.ops_per_client + i
                try:
                    yield from issue(op_index)
                except Interrupted:
                    raise
                except Exception:  # noqa: BLE001 - client moves on after failure
                    pass
                if self.think_time_ms > 0:
                    yield env.timeout(rng.expovariate(1.0 / self.think_time_ms))

        processes = [
            env.process(client(c), label=f"client-{c}") for c in range(self.clients)
        ]
        for process in processes:
            if not process.done:
                yield process

    @property
    def total_ops(self) -> int:
        return self.clients * self.ops_per_client

    @property
    def name(self) -> str:
        return f"closed({self.clients} clients)"


@dataclass
class PartlyOpenLoop:
    """Sessions arrive openly; each session issues a short closed burst.

    The model Schroeder et al. recommend for web workloads: arrivals are
    open (new users show up on their own schedule) but each user performs
    several dependent requests.
    """

    session_rate_per_s: float
    total_sessions: int
    ops_per_session: int = 3
    think_time_ms: float = 5.0

    def drive(self, env: Environment, issue: IssueFn) -> Generator:
        if self.total_sessions <= 0 or self.session_rate_per_s <= 0:
            raise ValueError("sessions and rate must be positive")
        rng = env.stream("partly-open-arrivals")
        mean_gap_ms = 1000.0 / self.session_rate_per_s

        def session(session_index: int) -> Generator:
            for i in range(self.ops_per_session):
                op_index = session_index * self.ops_per_session + i
                try:
                    yield from issue(op_index)
                except Interrupted:
                    raise
                except Exception:  # noqa: BLE001
                    pass
                if self.think_time_ms > 0:
                    yield env.timeout(rng.expovariate(1.0 / self.think_time_ms))

        running = []
        for index in range(self.total_sessions):
            yield env.timeout(rng.expovariate(1.0 / mean_gap_ms))
            running.append(env.process(session(index), label=f"session-{index}"))
        for process in running:
            if process.done:
                continue
            try:
                yield process
            except Interrupted:
                raise
            except Exception:  # noqa: BLE001 - op failures already recorded
                pass

    @property
    def total_ops(self) -> int:
        return self.total_sessions * self.ops_per_session

    @property
    def name(self) -> str:
        return f"partly-open({self.session_rate_per_s}/s x {self.ops_per_session})"

"""Unit tests for the hierarchical lock manager and deadlock detection."""

import pytest

from repro.db.errors import DeadlockAbort
from repro.db.locks import LockManager, LockMode, combine, compatible
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment(seed=1)


@pytest.fixture
def lm(env):
    return LockManager(env)


class TestCompatibility:
    def test_shared_locks_coexist(self):
        assert compatible(LockMode.S, LockMode.S)

    def test_exclusive_conflicts_with_everything(self):
        for mode in LockMode:
            assert not compatible(LockMode.X, mode)

    def test_intention_locks_coexist(self):
        assert compatible(LockMode.IS, LockMode.IX)
        assert compatible(LockMode.IX, LockMode.IX)

    def test_table_scan_conflicts_with_writer_intent(self):
        assert not compatible(LockMode.S, LockMode.IX)

    def test_combine_upgrades(self):
        assert combine(LockMode.S, LockMode.X) is LockMode.X
        assert combine(LockMode.IS, LockMode.S) is LockMode.S
        assert combine(LockMode.IX, LockMode.S) is LockMode.X
        assert combine(LockMode.S, LockMode.S) is LockMode.S


class TestGrants:
    def test_immediate_grant_when_free(self, env, lm):
        fut = lm.acquire(1, "r", LockMode.X)
        assert fut.done

    def test_shared_granted_concurrently(self, env, lm):
        assert lm.acquire(1, "r", LockMode.S).done
        assert lm.acquire(2, "r", LockMode.S).done
        assert lm.holders("r") == {1: LockMode.S, 2: LockMode.S}

    def test_exclusive_blocks_second(self, env, lm):
        assert lm.acquire(1, "r", LockMode.X).done
        fut = lm.acquire(2, "r", LockMode.X)
        assert not fut.done
        lm.release_all(1)
        env.run()
        assert fut.done

    def test_reacquire_same_mode_is_noop(self, env, lm):
        lm.acquire(1, "r", LockMode.S)
        assert lm.acquire(1, "r", LockMode.S).done

    def test_fifo_no_overtaking(self, env, lm):
        lm.acquire(1, "r", LockMode.X)
        waiter_x = lm.acquire(2, "r", LockMode.X)
        waiter_s = lm.acquire(3, "r", LockMode.S)
        lm.release_all(1)
        env.run()
        assert waiter_x.done
        assert not waiter_s.done  # S must wait behind the earlier X
        lm.release_all(2)
        env.run()
        assert waiter_s.done

    def test_upgrade_succeeds_when_sole_holder(self, env, lm):
        lm.acquire(1, "r", LockMode.S)
        assert lm.acquire(1, "r", LockMode.X).done
        assert lm.holders("r")[1] is LockMode.X

    def test_upgrade_waits_for_other_sharers(self, env, lm):
        lm.acquire(1, "r", LockMode.S)
        lm.acquire(2, "r", LockMode.S)
        upgrade = lm.acquire(1, "r", LockMode.X)
        assert not upgrade.done
        lm.release_all(2)
        env.run()
        assert upgrade.done

    def test_upgrade_jumps_queue(self, env, lm):
        lm.acquire(1, "r", LockMode.S)
        newcomer = lm.acquire(2, "r", LockMode.X)  # queued
        upgrade = lm.acquire(1, "r", LockMode.X)  # should go in front
        lm.release_all(1)
        env.run()
        assert newcomer.done  # after 1 fully released, 2 gets the lock
        # The key property: upgrade did not deadlock behind the newcomer.
        assert upgrade.done or upgrade.failed


class TestRelease:
    def test_release_wakes_waiters(self, env, lm):
        lm.acquire(1, "r", LockMode.X)
        fut_a = lm.acquire(2, "r", LockMode.S)
        fut_b = lm.acquire(3, "r", LockMode.S)
        lm.release_all(1)
        env.run()
        assert fut_a.done and fut_b.done  # both sharers granted together

    def test_release_removes_queued_requests(self, env, lm):
        lm.acquire(1, "r", LockMode.X)
        lm.acquire(2, "r", LockMode.X)
        lm.release_all(2)  # 2 gives up while still queued
        lm.release_all(1)
        env.run()
        assert lm.holders("r") == {}

    def test_release_unknown_txn_is_noop(self, lm):
        lm.release_all(999)


class TestDeadlocks:
    def test_two_txn_cycle_detected(self, env, lm):
        lm.acquire(1, "a", LockMode.X)
        lm.acquire(2, "b", LockMode.X)
        fut1 = lm.acquire(1, "b", LockMode.X)  # 1 waits on 2
        fut2 = lm.acquire(2, "a", LockMode.X)  # closes the cycle
        env.run()
        assert fut2.failed
        assert isinstance(fut2.exception(), DeadlockAbort)
        assert not fut1.done  # 1 still waiting (until 2 releases)
        lm.release_all(2)
        env.run()
        assert fut1.done

    def test_three_txn_cycle_detected(self, env, lm):
        lm.acquire(1, "a", LockMode.X)
        lm.acquire(2, "b", LockMode.X)
        lm.acquire(3, "c", LockMode.X)
        assert not lm.acquire(1, "b", LockMode.X).done
        assert not lm.acquire(2, "c", LockMode.X).done
        victim = lm.acquire(3, "a", LockMode.X)
        env.run()
        assert victim.failed
        assert lm.stats.deadlocks == 1

    def test_upgrade_deadlock_detected(self, env, lm):
        lm.acquire(1, "r", LockMode.S)
        lm.acquire(2, "r", LockMode.S)
        up1 = lm.acquire(1, "r", LockMode.X)
        up2 = lm.acquire(2, "r", LockMode.X)
        env.run()
        assert up2.failed or up1.failed
        assert lm.stats.deadlocks >= 1

    def test_no_false_deadlock_on_plain_contention(self, env, lm):
        lm.acquire(1, "r", LockMode.X)
        futs = [lm.acquire(tid, "r", LockMode.X) for tid in (2, 3, 4)]
        env.run()
        assert not any(f.failed for f in futs)
        assert lm.stats.deadlocks == 0

    def test_cycle_through_queue_order_detected(self, env, lm):
        # T2 queued behind T3's incompatible request; T3 waits on T2's lock.
        lm.acquire(1, "a", LockMode.X)
        lm.acquire(2, "b", LockMode.X)
        fut3 = lm.acquire(3, "a", LockMode.X)  # 3 waits on 1
        fut2 = lm.acquire(2, "a", LockMode.X)  # 2 waits on 1 and (queue) 3
        fut3b = lm.acquire(3, "b", LockMode.X)  # 3 waits on 2 -> cycle 2->3->2
        env.run()
        assert fut3b.failed or fut2.failed


class TestIntrospection:
    def test_held_by(self, lm):
        lm.acquire(1, "a", LockMode.S)
        lm.acquire(1, "b", LockMode.X)
        assert lm.held_by(1) == {"a", "b"}

    def test_queue_length(self, env, lm):
        lm.acquire(1, "r", LockMode.X)
        lm.acquire(2, "r", LockMode.X)
        lm.acquire(3, "r", LockMode.X)
        assert lm.queue_length("r") == 2


class TestIndexes:
    """The per-txn held/waiting indexes behind O(locks-touched) release."""

    def test_release_does_not_scan_unrelated_locks(self, env, lm):
        # A large standing population of other txns' locks must not be
        # visited when an unrelated txn commits.
        for tid in range(100, 600):
            lm.acquire(tid, ("row", "t", tid), LockMode.X)
        lm.acquire(1, "mine", LockMode.X)
        lm.release_all(1)
        env.run()
        assert lm.held_by(1) == set()
        # Standing locks are untouched.
        assert lm.holders(("row", "t", 100)) == {100: LockMode.X}

    def test_waiting_index_cleared_on_grant(self, env, lm):
        lm.acquire(1, "r", LockMode.X)
        fut = lm.acquire(2, "r", LockMode.X)
        assert "r" in lm._waiting_by_txn.get(2, {})
        lm.release_all(1)
        env.run()
        assert fut.done
        assert 2 not in lm._waiting_by_txn
        assert "r" in lm._held_by_txn[2]

    def test_waiting_index_cleared_on_deadlock_abort(self, env, lm):
        lm.acquire(1, "a", LockMode.X)
        lm.acquire(2, "b", LockMode.X)
        lm.acquire(1, "b", LockMode.X)
        victim = lm.acquire(2, "a", LockMode.X)
        env.run()
        assert victim.failed
        assert "a" not in lm._waiting_by_txn.get(2, {})

    def test_release_while_queued_clears_waiting_index(self, env, lm):
        lm.acquire(1, "r", LockMode.X)
        lm.acquire(2, "r", LockMode.X)
        lm.release_all(2)
        assert 2 not in lm._waiting_by_txn
        lm.release_all(1)
        env.run()
        assert lm.holders("r") == {}

    def test_held_index_insertion_ordered(self, env, lm):
        # Wake order on release follows acquisition order — deterministic
        # regardless of PYTHONHASHSEED (the C2 stability fix).
        resources = [("row", "t", k) for k in ("zebra", "apple", "mango")]
        for resource in resources:
            lm.acquire(1, resource, LockMode.X)
        assert list(lm._held_by_txn[1]) == resources


class TestIncrementalDetection:
    """Tail enqueues compute only the new waiter's edges, one DFS."""

    def test_enqueue_sets_edges_to_holders_and_waiters_ahead(self, env, lm):
        lm.acquire(1, "r", LockMode.X)
        lm.acquire(2, "r", LockMode.X)
        lm.acquire(3, "r", LockMode.X)
        assert lm._waits_for[2] == {1}
        assert lm._waits_for[3] == {1, 2}

    def test_victim_is_the_requester_that_closed_the_cycle(self, env, lm):
        lm.acquire(1, "a", LockMode.X)
        lm.acquire(2, "b", LockMode.X)
        fut1 = lm.acquire(1, "b", LockMode.X)
        fut2 = lm.acquire(2, "a", LockMode.X)  # closes the cycle -> victim
        env.run()
        assert fut2.failed and not fut1.done
        assert lm.stats.deadlocks == 1

    def test_detection_matches_across_many_random_schedules(self, env):
        # The incremental edges must find exactly the deadlocks the full
        # rebuild would: replay random acquire/release interleavings and
        # check the books stay consistent.
        import random

        rng = random.Random(42)
        lm = LockManager(env)
        live = set()
        for step in range(400):
            tid = rng.randrange(8)
            if tid in live and rng.random() < 0.3:
                lm.release_all(tid)
                live.discard(tid)
            else:
                resource = ("row", "t", rng.randrange(4))
                mode = rng.choice([LockMode.S, LockMode.X])
                lm.acquire(tid, resource, mode)
                live.add(tid)
            env.run()
        for tid in list(live):
            lm.release_all(tid)
        env.run()
        assert lm._locks == {}
        assert lm._waiting_by_txn == {}
        assert lm._waits_for == {}

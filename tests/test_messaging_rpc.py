"""Tests for RPC: calls, timeouts, retries, duplicates, idempotency."""

import pytest

from repro.messaging import (
    IdempotencyStore,
    RpcClient,
    RpcRemoteError,
    RpcServer,
    RpcTimeout,
)
from repro.net import Latency, Network
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment(seed=6)


@pytest.fixture
def net(env):
    network = Network(env, default_latency=Latency.constant(1.0))
    network.add_node("client")
    network.add_node("server")
    return network


def make_counter_server(net, dedup=None):
    """A server whose 'incr' handler counts executions."""
    state = {"count": 0}
    server = RpcServer(net, net.node("server"), dedup_store=dedup)

    def incr(payload):
        state["count"] += payload.get("by", 1)
        yield net.env.timeout(0.5)  # some processing time
        return state["count"]

    server.register("incr", incr)

    def boom(payload):
        yield net.env.timeout(0.1)
        raise ValueError("handler exploded")

    server.register("boom", boom)
    return server, state


def run(env, gen):
    return env.run_until(env.process(gen))


class TestBasicCalls:
    def test_call_returns_handler_result(self, env, net):
        make_counter_server(net)
        client = RpcClient(net, net.node("client"))

        def flow():
            result = yield from client.call("server", "incr", {"by": 5})
            return result

        assert run(env, flow()) == 5

    def test_sequential_calls_accumulate(self, env, net):
        _, state = make_counter_server(net)
        client = RpcClient(net, net.node("client"))

        def flow():
            yield from client.call("server", "incr", {"by": 1})
            yield from client.call("server", "incr", {"by": 2})
            return state["count"]

        assert run(env, flow()) == 3

    def test_unknown_method_is_remote_error(self, env, net):
        make_counter_server(net)
        client = RpcClient(net, net.node("client"))

        def flow():
            yield from client.call("server", "nope")

        with pytest.raises(RpcRemoteError):
            run(env, flow())

    def test_handler_exception_propagates(self, env, net):
        make_counter_server(net)
        client = RpcClient(net, net.node("client"))

        def flow():
            yield from client.call("server", "boom")

        with pytest.raises(RpcRemoteError, match="handler exploded"):
            run(env, flow())

    def test_concurrent_calls_match_replies(self, env, net):
        """Reply correlation: interleaved calls get their own results."""
        server = RpcServer(net, net.node("server"))

        def echo_slow(payload):
            yield net.env.timeout(payload["delay"])
            return payload["tag"]

        server.register("echo", echo_slow)
        client = RpcClient(net, net.node("client"))
        results = {}

        def caller(tag, delay):
            value = yield from client.call(
                "server", "echo", {"tag": tag, "delay": delay}, timeout=100
            )
            results[tag] = value

        env.process(caller("slow", 20))
        env.process(caller("fast", 1))
        env.run()
        assert results == {"slow": "slow", "fast": "fast"}


class TestTimeoutsAndRetries:
    def test_timeout_when_server_dead(self, env, net):
        make_counter_server(net)
        net.node("server").crash()
        client = RpcClient(net, net.node("client"))

        def flow():
            yield from client.call("server", "incr", timeout=5, retries=2)

        with pytest.raises(RpcTimeout) as excinfo:
            run(env, flow())
        assert excinfo.value.attempts == 3
        assert client.stats.retries == 2
        assert client.stats.timeouts == 1

    def test_retry_succeeds_after_loss(self, env, net):
        _, state = make_counter_server(net)
        client = RpcClient(net, net.node("client"))
        net.set_loss(1.0, src="client", dst="server")
        env.schedule(6.0, net.set_loss, 0.0, "client", "server")

        def flow():
            result = yield from client.call("server", "incr", {"by": 1}, timeout=5, retries=3)
            return result

        assert run(env, flow()) == 1
        assert client.stats.retries >= 1

    def test_lost_reply_causes_duplicate_execution(self, env, net):
        """The §3.2 anomaly: execution happened, reply lost, retry re-executes."""
        _, state = make_counter_server(net)
        client = RpcClient(net, net.node("client"))
        net.set_loss(1.0, src="server", dst="client")  # replies vanish
        env.schedule(6.0, net.set_loss, 0.0, "server", "client")

        def flow():
            result = yield from client.call(
                "server", "incr", {"by": 1}, timeout=5, retries=3,
                idempotency_key="op-1",
            )
            return result

        run(env, flow())
        assert state["count"] == 2  # executed twice!

    def test_idempotency_key_prevents_duplicate_execution(self, env, net):
        dedup = IdempotencyStore()
        _, state = make_counter_server(net, dedup=dedup)
        client = RpcClient(net, net.node("client"))
        net.set_loss(1.0, src="server", dst="client")
        env.schedule(6.0, net.set_loss, 0.0, "server", "client")

        def flow():
            result = yield from client.call(
                "server", "incr", {"by": 1}, timeout=5, retries=3,
                idempotency_key="op-1",
            )
            return result

        result = run(env, flow())
        assert state["count"] == 1  # executed once
        assert result == 1  # recorded response returned to the retry

    def test_dedup_returns_first_response_to_later_duplicates(self, env, net):
        dedup = IdempotencyStore()
        _, state = make_counter_server(net, dedup=dedup)
        client = RpcClient(net, net.node("client"))

        def flow():
            first = yield from client.call(
                "server", "incr", {"by": 1}, idempotency_key="k"
            )
            second = yield from client.call(
                "server", "incr", {"by": 1}, idempotency_key="k"
            )
            return first, second

        assert run(env, flow()) == (1, 1)
        assert state["count"] == 1


class TestCrashRecovery:
    def test_server_restart_reregisters_listener(self, env, net):
        server, state = make_counter_server(net)
        client = RpcClient(net, net.node("client"))

        def flow():
            yield from client.call("server", "incr", {"by": 1})
            net.node("server").crash()
            net.node("server").restart()
            result = yield from client.call("server", "incr", {"by": 1}, timeout=5, retries=2)
            return result

        assert run(env, flow()) == 2

    def test_crash_mid_handler_drops_request(self, env, net):
        """Partial failure: request executing when the node dies -> timeout."""
        server, state = make_counter_server(net)
        client = RpcClient(net, net.node("client"))
        env.schedule(1.2, net.node("server").crash)  # mid-handler

        def flow():
            yield from client.call("server", "incr", {"by": 1}, timeout=5, retries=0)

        with pytest.raises(RpcTimeout):
            run(env, flow())

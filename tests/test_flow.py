"""Tests for repro.flow and its integration into RPC, retries, and the broker.

Covers the overload-protection stack end to end: retry budgets,
priority-class admission control, credit gates, the EWMA load signal,
deadline propagation, the client-restart pending-call regression, and
bounded broker partitions.
"""

import pytest

from repro.flow import (
    AdmissionController,
    AdmissionRejected,
    CreditGate,
    LoadSignal,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    RetryBudget,
)
from repro.messaging import Broker, RpcError, RpcRejected, RpcTimeout
from repro.messaging.rpc import RpcClient, RpcServer
from repro.microservices import RetryBudgetExhausted, RetryPolicy
from repro.net import Latency, Network
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment(seed=17)


@pytest.fixture
def net(env):
    network = Network(env, default_latency=Latency.constant(1.0))
    network.add_node("client")
    network.add_node("server")
    return network


def run(env, gen):
    return env.run_until(env.process(gen))


class TestRetryBudget:
    def test_burst_then_dry(self):
        budget = RetryBudget(capacity=3.0, refund=0.0)
        assert [budget.try_spend() for _ in range(4)] == [True, True, True, False]
        assert budget.exhausted
        assert budget.spent == 3
        assert budget.denied == 1

    def test_successes_refill_fractionally(self):
        budget = RetryBudget(capacity=2.0, refund=0.5)
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()
        budget.on_success()
        assert not budget.try_spend()  # 0.5 tokens: still below a whole one
        budget.on_success()
        assert budget.try_spend()  # 1.0 tokens: one retry earned back
        assert budget.refunded == 2

    def test_refund_capped_at_capacity(self):
        budget = RetryBudget(capacity=2.0, refund=1.0)
        for _ in range(5):
            budget.on_success()
        assert budget.tokens == 2.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RetryBudget(capacity=0)
        with pytest.raises(ValueError):
            RetryBudget(refund=-0.1)


class TestAdmissionController:
    def test_priority_watermarks(self):
        ctrl = AdmissionController(10)
        assert ctrl.limit_for(PRIORITY_LOW) == 5
        assert ctrl.limit_for(PRIORITY_NORMAL) == 9
        assert ctrl.limit_for(PRIORITY_HIGH) == 10

    def test_low_priority_sheds_first(self):
        ctrl = AdmissionController(4)  # limits: low 2, normal 3, high 4
        assert ctrl.try_admit(PRIORITY_LOW) and ctrl.try_admit(PRIORITY_LOW)
        assert not ctrl.try_admit(PRIORITY_LOW)  # low watermark hit ...
        assert ctrl.try_admit(PRIORITY_NORMAL)  # ... but normal still fits
        assert not ctrl.try_admit(PRIORITY_NORMAL)
        assert ctrl.try_admit(PRIORITY_HIGH)  # high gets the last slot
        assert not ctrl.try_admit(PRIORITY_HIGH)
        assert ctrl.stats.shed == {PRIORITY_LOW: 1, PRIORITY_NORMAL: 1,
                                   PRIORITY_HIGH: 1}
        assert ctrl.stats.shed_total == 3

    def test_release_reopens_admission(self):
        ctrl = AdmissionController(1)
        assert ctrl.try_admit(PRIORITY_HIGH)
        assert not ctrl.try_admit(PRIORITY_HIGH)
        ctrl.release()
        assert ctrl.try_admit(PRIORITY_HIGH)
        assert ctrl.stats.admitted == 2
        assert ctrl.stats.completed == 1

    def test_admit_raises_typed_error(self):
        ctrl = AdmissionController(1, name="front-door")
        ctrl.admit(PRIORITY_NORMAL)
        with pytest.raises(AdmissionRejected) as excinfo:
            ctrl.admit(PRIORITY_NORMAL)
        assert excinfo.value.resource == "front-door"
        assert excinfo.value.priority == PRIORITY_NORMAL

    def test_release_without_admit_raises(self):
        with pytest.raises(RuntimeError):
            AdmissionController(1).release()


class TestCreditGate:
    def test_try_acquire_until_empty(self, env):
        gate = CreditGate(env, 2)
        assert gate.try_acquire() and gate.try_acquire()
        assert not gate.try_acquire()
        gate.release()
        assert gate.available == 1

    def test_acquire_blocks_and_wakes_fifo(self, env):
        gate = CreditGate(env, 1)
        order = []

        def worker(name, hold_ms):
            yield gate.acquire()
            order.append(f"{name}:in")
            yield env.timeout(hold_ms)
            order.append(f"{name}:out")
            gate.release()

        env.process(worker("a", 5))
        env.process(worker("b", 5))
        env.process(worker("c", 5))
        env.run()
        assert order == ["a:in", "a:out", "b:in", "b:out", "c:in", "c:out"]
        assert gate.blocked == 2

    def test_release_beyond_capacity_raises(self, env):
        gate = CreditGate(env, 1)
        with pytest.raises(RuntimeError):
            gate.release()


class TestLoadSignal:
    def test_cold_signal_reads_live_window(self, env):
        signal = LoadSignal(env, window_ms=10.0, alpha=0.5)
        assert signal.load() == 0.0
        signal.record()
        signal.record()
        assert signal.load() == pytest.approx(1.0)  # alpha * live window

    def test_idle_windows_decay_signal(self, env):
        signal = LoadSignal(env, window_ms=10.0, alpha=0.5)
        for _ in range(8):
            signal.record()

        def flow():
            yield env.timeout(10.0)
            after_roll = signal.load()
            yield env.timeout(50.0)
            return after_roll, signal.load()

        after_roll, after_idle = run(env, flow())
        assert after_roll == pytest.approx(4.0)  # 8 ops folded at alpha=0.5
        assert after_idle < 0.2  # five idle windows ≈ signal gone

    def test_steady_rate_converges(self, env):
        signal = LoadSignal(env, window_ms=10.0, alpha=0.5)

        def flow():
            for _ in range(200):
                signal.record()
                yield env.timeout(1.0)
            return signal.load()

        assert run(env, flow()) == pytest.approx(10.0, rel=0.15)


def make_slow_server(net, admission=None, service_ms=10.0):
    server = RpcServer(net, net.node("server"), admission=admission)

    def slow(payload):
        yield net.env.timeout(service_ms)
        return "done"

    server.register("slow", slow)
    return server


class TestRpcAdmission:
    def test_shed_is_distinct_typed_error(self, env, net):
        """Rejection must never look like a timeout: shed work definitely
        did not execute, timed-out work may have."""
        admission = AdmissionController(4)  # limits: low 2, normal 3, high 4
        server = make_slow_server(net, admission=admission)
        client = RpcClient(net, net.node("client"))
        outcomes = {}

        def caller(tag, priority):
            try:
                outcomes[tag] = (yield from client.call(
                    "server", "slow", timeout=50, retries=0, priority=priority
                ))
            except RpcRejected as exc:
                outcomes[tag] = exc

        for i, priority in enumerate(
            [PRIORITY_LOW, PRIORITY_LOW, PRIORITY_LOW,
             PRIORITY_NORMAL, PRIORITY_HIGH]
        ):
            env.schedule(0.1 * i, lambda t=i, p=priority: env.process(
                caller(t, p)))
        env.run()

        # 2 low + 1 normal + 1 high admitted; the third low-priority shed.
        assert isinstance(outcomes[2], RpcRejected)
        assert not isinstance(outcomes[2], RpcTimeout)
        for tag in (0, 1, 3, 4):
            assert outcomes[tag] == "done"
        assert server.stats.shed == 1
        assert client.stats.rejected == 1
        assert admission.stats.shed == {PRIORITY_LOW: 1}

    def test_rejection_is_never_retried(self, env, net):
        admission = AdmissionController(1)
        server = make_slow_server(net, admission=admission, service_ms=30.0)
        client = RpcClient(net, net.node("client"))

        def occupy():
            yield from client.call("server", "slow", timeout=50,
                                   priority=PRIORITY_HIGH)

        outcome = {}

        def shed_me():
            try:
                yield from client.call("server", "slow", timeout=50, retries=5)
            except RpcRejected as exc:
                outcome["error"] = exc
                outcome["at"] = env.now

        env.process(occupy())
        env.schedule(2.0, lambda: env.process(shed_me()))
        env.run()
        assert isinstance(outcome["error"], RpcRejected)
        assert outcome["at"] < 10.0  # failed fast, well before the timeout
        assert client.stats.retries == 0  # no retry storm

    def test_slots_free_after_completion(self, env, net):
        admission = AdmissionController(1)
        make_slow_server(net, admission=admission)
        client = RpcClient(net, net.node("client"))

        def flow():
            first = yield from client.call("server", "slow", timeout=50,
                                           priority=PRIORITY_HIGH)
            second = yield from client.call("server", "slow", timeout=50,
                                            priority=PRIORITY_HIGH)
            return first, second

        assert run(env, flow()) == ("done", "done")
        assert admission.inflight == 0
        assert admission.stats.completed == 2


class TestRpcDeadline:
    def test_server_drops_expired_request(self, env, net):
        """Deadline propagation: work nobody is waiting for is not done."""
        state = {"executed": 0}
        server = RpcServer(net, net.node("server"))

        def handler(payload):
            state["executed"] += 1
            yield net.env.timeout(1.0)
            return "done"

        server.register("op", handler)
        client = RpcClient(net, net.node("client"))

        def flow():
            # Deadline expires while the request is in flight (1 ms latency).
            yield from client.call("server", "op", timeout=50, retries=2,
                                   deadline=env.now + 0.5)

        with pytest.raises(RpcTimeout):
            run(env, flow())
        assert client.stats.retries == 0  # no retry past the deadline
        env.run()  # let the in-flight request reach the server
        assert state["executed"] == 0
        assert server.stats.expired_dropped == 1

    def test_deadline_bounds_total_wait(self, env, net):
        make_slow_server(net)
        net.node("server").crash()
        client = RpcClient(net, net.node("client"))

        def flow():
            yield from client.call("server", "slow", timeout=100, retries=5,
                                   deadline=env.now + 10.0)

        with pytest.raises(RpcTimeout):
            run(env, flow())
        assert env.now <= 10.0 + 1e-9


class TestRpcRetryBudget:
    def test_budget_exhaustion_stops_retries(self, env, net):
        make_slow_server(net)
        net.node("server").crash()
        client = RpcClient(net, net.node("client"))
        budget = RetryBudget(capacity=2.0, refund=0.1)

        def flow():
            yield from client.call("server", "slow", timeout=5, retries=10,
                                   retry_budget=budget)

        with pytest.raises(RpcTimeout) as excinfo:
            run(env, flow())
        assert excinfo.value.attempts == 3  # initial + 2 budgeted retries
        assert client.stats.retries == 2
        assert client.stats.budget_stopped == 1
        assert budget.exhausted
        assert budget.denied == 1

    def test_successes_earn_retries_back(self, env, net):
        make_slow_server(net, service_ms=1.0)
        client = RpcClient(net, net.node("client"))
        budget = RetryBudget(capacity=2.0, refund=0.5)

        def flow():
            for _ in range(4):
                yield from client.call("server", "slow", timeout=50,
                                       retry_budget=budget)

        run(env, flow())
        assert budget.refunded == 4
        assert budget.tokens == pytest.approx(2.0)  # capped at capacity


class TestRpcClientRestart:
    def test_restart_fails_pending_calls(self, env, net):
        """Regression: ``_pending`` futures survived a client-node restart,
        leaking calls that could never complete (their reply correlation
        state was gone) and stalling callers until the full timeout."""
        make_slow_server(net, service_ms=20.0)
        client = RpcClient(net, net.node("client"))
        outcome = {}

        def flow():
            try:
                yield from client.call("server", "slow", timeout=100, retries=0)
            except RpcError as exc:
                outcome["error"] = exc
                outcome["at"] = env.now

        env.process(flow())
        env.schedule(5.0, net.node("client").crash)
        env.schedule(8.0, net.node("client").restart)
        env.run()

        assert "restarted" in str(outcome["error"])
        assert not isinstance(outcome["error"], RpcTimeout)
        assert outcome["at"] == 8.0  # failed at restart, not after 100 ms
        assert client.stats.restart_failed_calls == 1
        assert not client._pending  # the leak this regression test pins

    def test_client_usable_after_restart(self, env, net):
        make_slow_server(net, service_ms=1.0)
        client = RpcClient(net, net.node("client"))

        def flow():
            net.node("client").crash()
            net.node("client").restart()
            return (yield from client.call("server", "slow", timeout=50))

        assert run(env, flow()) == "done"


class TestRetryPolicyDelay:
    def test_jitter_never_exceeds_max_delay(self, env):
        """Regression: jitter was applied after the cap, so a capped delay
        could exceed ``max_delay`` by up to the jitter fraction."""
        policy = RetryPolicy(max_attempts=8, base_delay=10.0, factor=3.0,
                             max_delay=60.0, jitter=0.2)
        rng = env.stream("jitter-test")
        for attempt in range(1, 50):
            assert policy.delay(attempt, rng) <= policy.max_delay

    def test_jitter_spreads_below_cap(self, env):
        policy = RetryPolicy(base_delay=10.0, max_delay=60.0, jitter=0.2)
        rng = env.stream("jitter-test")
        delays = {round(policy.delay(1, rng), 6) for _ in range(20)}
        assert len(delays) > 1  # jitter still applies below the cap
        assert all(8.0 <= d <= 12.0 for d in delays)

    def test_per_call_substream_isolation(self):
        """Regression: concurrent ``run`` calls shared one RNG stream, so
        one caller's jitter draws depended on the other's schedule."""
        policy = RetryPolicy(max_attempts=3, base_delay=5.0, jitter=0.5)

        def failing(env, log, fail_times):
            def attempt():
                log.append("try")
                yield env.timeout(0.1)
                if log.count("try") <= fail_times:
                    raise ValueError("transient")
                return "ok"

            return attempt

        def trial(interleaved):
            env = Environment(seed=99)
            done = {}

            def tracked(name, log):
                yield from policy.run(env, failing(env, log, 2))
                done[name] = env.now

            env.process(tracked("a", []))
            if interleaved:
                env.process(tracked("b", []))
            env.run()
            return done["a"]

        # Caller A's finish time must not depend on whether B also ran.
        assert trial(interleaved=False) == trial(interleaved=True)

    def test_budget_exhausted_raises_typed_error(self, env):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, jitter=0.0)
        budget = RetryBudget(capacity=1.0, refund=0.0)

        def always_fails():
            yield env.timeout(0.1)
            raise ValueError("transient")

        def flow():
            yield from policy.run(env, always_fails, budget=budget)

        with pytest.raises(RetryBudgetExhausted) as excinfo:
            run(env, flow())
        assert isinstance(excinfo.value.last_error, ValueError)
        assert budget.spent == 1  # one budgeted retry, then fail fast


class TestBoundedBroker:
    def test_producer_blocks_at_backlog_bound(self, env):
        broker = Broker(env, max_backlog=2)
        broker.create_topic("jobs", partitions=1)
        published = []

        def producer():
            for i in range(5):
                yield from broker.publish("jobs", "k", i)
                published.append(i)

        env.process(producer())
        env.run(until=50.0)
        # No consumer has ever committed: the producer stalls at the bound.
        assert published == [0, 1]
        assert broker.stats.blocked_publishes == 0  # still parked, not woken
        assert broker.backlog("jobs", 0) == 2

    def test_consumer_commit_releases_producer_credits(self, env):
        broker = Broker(env, max_backlog=2)
        broker.create_topic("jobs", partitions=1)
        published = []

        def producer():
            for i in range(5):
                yield from broker.publish("jobs", "k", i)
                published.append(i)

        def consumer():
            c = broker.consumer("g", "jobs")
            seen = []
            while len(seen) < 5:
                batch = yield from c.poll(max_records=1)
                seen.extend(r.value for r in batch)
                yield env.timeout(5.0)  # slow consumer ...
                yield from c.commit()  # ... whose commits pace the producer
            return seen

        env.process(producer())
        consumed = run(env, consumer())
        assert published == [0, 1, 2, 3, 4]
        assert consumed == [0, 1, 2, 3, 4]
        assert broker.stats.blocked_publishes >= 1
        assert broker.backlog("jobs", 0) == 0

    def test_unbounded_broker_unchanged(self, env):
        broker = Broker(env)
        broker.create_topic("jobs", partitions=1)

        def producer():
            for i in range(100):
                yield from broker.publish("jobs", "k", i)
            return broker.backlog("jobs", 0)

        assert run(env, producer()) == 100  # grew without blocking
        assert broker.stats.blocked_publishes == 0

    def test_invalid_bound_rejected(self, env):
        with pytest.raises(ValueError):
            Broker(env, max_backlog=0)

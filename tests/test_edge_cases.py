"""Edge-case tests for paths the mainline suites do not reach."""

import pytest

from repro.core.faults import FaultEvent, FaultPlan
from repro.dataflow import JobGraph
from repro.db import Database, IsolationLevel
from repro.messaging import Broker
from repro.net import Latency, Network
from repro.sim import Environment, Store
from repro.storage import LsmStore


@pytest.fixture
def env():
    return Environment(seed=201)


def run(env, gen):
    return env.run_until(env.process(gen))


class TestFaultPlanEdges:
    def test_unknown_fault_kind_raises(self, env):
        net = Network(env)
        bad = FaultEvent(at=1.0, kind="meteor")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan._execute(net, bad)

    def test_plan_is_chainable_and_ordered(self, env):
        net = Network(env)
        net.add_node("n")
        net.add_node("m")
        plan = (FaultPlan()
                .loss(0.5, at=1.0)
                .duplication(0.1, at=2.0)
                .crash("n", at=3.0)
                .restart("n", at=4.0)
                .partition(["n"], ["m"], at=5.0, heal_at=6.0))
        assert [e.at for e in plan.events] == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]


class TestJobGraphEdges:
    def test_sink_cannot_produce(self):
        graph = JobGraph("g")
        graph.source("s")
        graph.sink("out")
        graph.operator("op", lambda s, k, v, e: None)
        with pytest.raises(ValueError, match="sink cannot produce"):
            graph.connect("out", "op")

    def test_cycle_detection(self):
        graph = JobGraph("g")
        graph.source("s")
        graph.operator("a", lambda s, k, v, e: None)
        graph.operator("b", lambda s, k, v, e: None)
        graph.sink("out")
        graph.connect("s", "a")
        graph.connect("a", "b")
        graph.connect("b", "a")  # cycle
        graph.connect("b", "out")
        with pytest.raises(ValueError, match="cycle"):
            graph.validate()


class TestDatabaseEdges:
    def test_duplicate_table_rejected(self, env):
        db = Database(env)
        db.create_table("t")
        with pytest.raises(ValueError):
            db.create_table("t")

    def test_resolve_unknown_in_doubt_is_noop(self, env):
        db = Database(env)
        db.resolve_in_doubt(999, commit=True)  # no exception

    def test_read_only_txn_commits(self, env):
        db = Database(env)
        db.create_table("t")
        db.load("t", [{"id": 1, "v": "x"}])

        def flow():
            txn = db.begin(IsolationLevel.SNAPSHOT)
            row = yield from db.get(txn, "t", 1)
            yield from db.commit(txn)
            return row

        assert run(env, flow())["v"] == "x"
        assert db.stats.committed == 1

    def test_delete_then_insert_same_key_in_txn(self, env):
        db = Database(env)
        db.create_table("t")
        db.load("t", [{"id": 1, "v": "old"}])

        def flow():
            txn = db.begin(IsolationLevel.SERIALIZABLE)
            yield from db.delete(txn, "t", 1)
            yield from db.insert(txn, "t", {"id": 1, "v": "new"})
            yield from db.commit(txn)

        run(env, flow())
        assert db.read_latest("t", 1)["v"] == "new"

    def test_snapshot_scan_is_stable_under_concurrent_inserts(self, env):
        db = Database(env)
        db.create_table("t")
        db.load("t", [{"id": i} for i in range(3)])
        counts = []

        def scanner():
            txn = db.begin(IsolationLevel.SNAPSHOT)
            rows1 = yield from db.scan(txn, "t")
            yield env.timeout(10)
            rows2 = yield from db.scan(txn, "t")
            yield from db.commit(txn)
            counts.extend([len(rows1), len(rows2)])

        def inserter():
            yield env.timeout(5)
            txn = db.begin(IsolationLevel.READ_COMMITTED)
            yield from db.insert(txn, "t", {"id": 99})
            yield from db.commit(txn)

        env.process(scanner())
        env.process(inserter())
        env.run()
        assert counts == [3, 3]  # no phantom inside the snapshot

    def test_multiple_loads_survive_recovery(self, env):
        db = Database(env)
        db.create_table("t")
        db.load("t", [{"id": 1}])
        db.load("t", [{"id": 2}])
        db.crash()
        db.recover()
        assert {r["id"] for r in db.all_rows("t")} == {1, 2}


class TestLsmEdges:
    def test_deep_compaction_cascade(self):
        lsm = LsmStore(memtable_limit=2, level0_limit=2, level_ratio=2)
        for i in range(200):
            lsm.put(f"k{i:04d}", i)
        lsm.flush()
        assert len(lsm) == 200
        for i in (0, 57, 123, 199):
            assert lsm.get(f"k{i:04d}") == i
        assert lsm.stats.compactions > 3
        assert lsm.num_runs < 10

    def test_overwrite_heavy_workload_reclaims(self):
        lsm = LsmStore(memtable_limit=4, level0_limit=2, level_ratio=2)
        for round_index in range(20):
            for key_index in range(5):
                lsm.put(f"k{key_index}", round_index)
        assert len(lsm) == 5
        assert all(lsm.get(f"k{i}") == 19 for i in range(5))


class TestBrokerEdges:
    def test_publish_now_is_instant(self, env):
        broker = Broker(env)
        broker.create_topic("t")
        record = broker.publish_now("t", "k", "v")
        assert record.offset == 0
        assert env.now == 0.0

    def test_end_offsets(self, env):
        broker = Broker(env)
        broker.create_topic("t", partitions=2)
        for i in range(5):
            broker.publish_now("t", f"k{i}", i)
        assert sum(broker.end_offsets("t")) == 5


class TestStoreEdges:
    def test_putters_queue_in_order(self, env):
        store = Store(env, capacity=1)
        order = []

        def producer(name):
            yield store.put(name)
            order.append(name)

        def consumer():
            yield env.timeout(10)
            for _ in range(2):
                yield store.get()
                yield env.timeout(10)

        env.process(producer("a"))
        env.process(producer("b"))
        env.process(producer("c"))
        env.process(consumer())
        env.run()
        assert order == ["a", "b", "c"]


class TestNodeEdges:
    def test_deliver_to_unbound_port_returns_false(self, env):
        net = Network(env)
        node = net.add_node("n")
        assert not node.deliver("ghost-port", "payload")

    def test_deliver_to_dead_node_returns_false(self, env):
        net = Network(env)
        node = net.add_node("n")
        node.bind("p")
        node.crash()
        assert not node.deliver("p", "payload")

    def test_link_latency_override(self, env):
        net = Network(env, default_latency=Latency.constant(1.0))
        net.add_node("a")
        net.add_node("b")
        net.set_link_latency("a", "b", Latency.constant(50.0))
        inbox = net.node("b").bind("svc")
        arrived = []

        def pump():
            message = yield inbox.get()
            arrived.append(env.now)

        net.node("b").spawn(pump())
        net.send("a", "b", "svc", None)
        env.run()
        assert arrived[0] == pytest.approx(50.0)


class TestActorDeactivation:
    def test_deactivate_calls_hook_and_reactivates_fresh(self, env):
        from repro.actors import Actor, ActorRuntime

        hooks = []

        class Session(Actor):
            initial_state = {"n": 0}

            def bump(self):
                self.state["n"] += 1
                yield from self.save_state()
                return self.state["n"]

            def on_deactivate(self):
                hooks.append(("deactivated", self.key))
                return
                yield  # pragma: no cover

        runtime = ActorRuntime(env, num_silos=1)
        runtime.register(Session)
        ref = runtime.ref("Session", "s1")

        def flow():
            yield from ref.call("bump")
            silo = runtime.silos[0]
            yield from silo.deactivate("Session", "s1")
            # Next call re-activates; saved state reloads.
            return (yield from ref.call("bump"))

        assert run(env, flow()) == 2
        assert hooks == [("deactivated", "s1")]
        assert runtime.stats.activations == 2

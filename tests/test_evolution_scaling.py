"""Tests for schema evolution (§4.3) and autoscaling (§4.3)."""

import pytest

from repro.messaging.rpc import RpcClient
from repro.microservices.evolution import (
    IncompatibleEvent,
    SchemaError,
    SchemaRegistry,
)
from repro.microservices.scaling import Autoscaler, ReplicaSet
from repro.net import Latency, Network
from repro.sim import Environment


@pytest.fixture
def registry():
    reg = SchemaRegistry()
    reg.define("OrderPlaced", 1, required=["order_id", "total"])
    reg.define("OrderPlaced", 2, required=["order_id", "total", "currency"])

    @reg.upcaster("OrderPlaced", 1)
    def add_currency(payload):
        payload["currency"] = "EUR"  # historical default
        return payload

    return reg


class TestSchemaRegistry:
    def test_write_validates(self, registry):
        event = registry.write("OrderPlaced", {"order_id": "o1", "total": 10},
                               version=1)
        assert event["_version"] == 1

    def test_write_rejects_missing_fields(self, registry):
        with pytest.raises(SchemaError, match="missing"):
            registry.write("OrderPlaced", {"order_id": "o1"}, version=1)

    def test_write_rejects_unknown_fields(self, registry):
        with pytest.raises(SchemaError, match="unknown"):
            registry.write("OrderPlaced",
                           {"order_id": "o1", "total": 1, "zzz": 2}, version=1)

    def test_write_defaults_to_latest(self, registry):
        event = registry.write(
            "OrderPlaced", {"order_id": "o1", "total": 1, "currency": "DKK"}
        )
        assert event["_version"] == 2

    def test_read_upcasts_old_events(self, registry):
        old = registry.write("OrderPlaced", {"order_id": "o1", "total": 10},
                             version=1)
        payload = registry.read(old)  # consumer wants latest (v2)
        assert payload == {"order_id": "o1", "total": 10, "currency": "EUR"}
        assert registry.upcasts_performed == 1

    def test_read_current_version_is_passthrough(self, registry):
        event = registry.write(
            "OrderPlaced", {"order_id": "o1", "total": 1, "currency": "USD"}
        )
        assert registry.read(event)["currency"] == "USD"

    def test_newer_event_than_consumer_rejected(self, registry):
        event = registry.write(
            "OrderPlaced", {"order_id": "o1", "total": 1, "currency": "USD"}
        )
        with pytest.raises(IncompatibleEvent, match="upgrade consumers"):
            registry.read(event, want_version=1)

    def test_missing_upcaster_detected(self):
        reg = SchemaRegistry()
        reg.define("E", 1, required=["a"])
        reg.define("E", 2, required=["a", "b"])
        event = reg.write("E", {"a": 1}, version=1)
        with pytest.raises(IncompatibleEvent, match="no upcaster"):
            reg.read(event)

    def test_rollout_check(self, registry):
        assert registry.check_rollout("OrderPlaced") == []
        registry.define("OrderPlaced", 3,
                        required=["order_id", "total", "currency", "channel"])
        problems = registry.check_rollout("OrderPlaced")
        assert problems == ["missing upcaster OrderPlaced v2 -> v3"]

    def test_chained_upcasting(self, registry):
        registry.define("OrderPlaced", 3,
                        required=["order_id", "total", "currency", "channel"])

        @registry.upcaster("OrderPlaced", 2)
        def add_channel(payload):
            payload["channel"] = "web"
            return payload

        old = registry.write("OrderPlaced", {"order_id": "o1", "total": 10},
                             version=1)
        payload = registry.read(old)
        assert payload["currency"] == "EUR" and payload["channel"] == "web"
        assert registry.upcasts_performed == 2

    def test_versions_must_be_sequential(self):
        reg = SchemaRegistry()
        with pytest.raises(SchemaError):
            reg.define("E", 2, required=["a"])

    def test_unstamped_event_rejected(self, registry):
        with pytest.raises(SchemaError, match="no schema stamp"):
            registry.read({"order_id": "o1"})


def make_replica_set(env, replicas=2, provision_delay=50.0, work_ms=5.0):
    net = Network(env, default_latency=Latency.constant(1.0))
    hits = {"by_replica": {}}

    def handler(payload):
        yield env.timeout(work_ms)
        return payload

    handlers = {"work": handler}
    replica_set = ReplicaSet(env, net, "svc", handlers,
                             initial_replicas=replicas,
                             provision_delay=provision_delay)
    client_node = net.add_node("client")
    client = RpcClient(net, client_node)
    return net, replica_set, client, hits


class TestReplicaSet:
    def test_call_roundtrip(self):
        env = Environment(seed=141)
        _net, replica_set, client, _ = make_replica_set(env)

        def flow():
            return (yield from replica_set.call(client, "work", 42))

        assert env.run_until(env.process(flow())) == 42

    def test_load_spreads_over_replicas(self):
        env = Environment(seed=142)
        _net, replica_set, client, _ = make_replica_set(env, replicas=3)
        used = set()
        original_pick = replica_set.pick

        def spy_pick():
            choice = original_pick()
            used.add(choice)
            return choice

        replica_set.pick = spy_pick
        for _ in range(9):
            env.process(replica_set.call(client, "work", 1))
        env.run()
        assert len(used) == 3

    def test_failover_to_surviving_replica(self):
        env = Environment(seed=143)
        _net, replica_set, client, _ = make_replica_set(env, replicas=2)
        replica_set.crash_replica(0)

        def flow():
            return (yield from replica_set.call(client, "work", "x", timeout=10))

        assert env.run_until(env.process(flow())) == "x"

    def test_scale_up_takes_provision_delay(self):
        env = Environment(seed=144)
        _net, replica_set, client, _ = make_replica_set(env, provision_delay=80.0)

        def flow():
            yield from replica_set.scale_up()
            return env.now

        assert env.run_until(env.process(flow())) == pytest.approx(80.0)
        assert replica_set.replica_count == 3

    def test_scale_down_keeps_at_least_one(self):
        env = Environment(seed=145)
        _net, replica_set, _client, _ = make_replica_set(env, replicas=2)
        assert replica_set.scale_down() is not None
        assert replica_set.scale_down() is None
        assert replica_set.replica_count == 1

    def test_all_replicas_down_raises(self):
        env = Environment(seed=146)
        _net, replica_set, client, _ = make_replica_set(env, replicas=1)
        replica_set.crash_replica(0)

        def flow():
            yield from replica_set.call(client, "work", 1, timeout=5)

        with pytest.raises(RuntimeError, match="no alive replica"):
            env.run_until(env.process(flow()))


class TestAutoscaler:
    def _drive_load(self, env, replica_set, client, rate_per_ms, duration):
        def load():
            rng = env.stream("load")
            while env.now < duration:
                yield env.timeout(rng.expovariate(rate_per_ms))
                env.process(self._one(replica_set, client))

        env.process(load())

    @staticmethod
    def _one(replica_set, client):
        try:
            yield from replica_set.call(client, "work", 1, timeout=200)
        except Exception:
            pass

    def test_scales_up_under_load(self):
        env = Environment(seed=147)
        _net, replica_set, client, _ = make_replica_set(
            env, replicas=1, provision_delay=30.0, work_ms=20.0
        )
        scaler = Autoscaler(env, replica_set, target_outstanding=2.0,
                            max_replicas=6, interval=20.0, cooldown=50.0)
        scaler.start()
        self._drive_load(env, replica_set, client, rate_per_ms=0.5, duration=1500)
        env.run(until=2000)
        scaler.stop()
        peak = max(replicas for _t, _load, replicas in scaler.samples)
        assert peak > 1  # scaled up under load
        assert any(e.action == "up" for e in replica_set.scale_events)
        # ...and back down after the load subsided (elasticity, §4.3).
        assert replica_set.replica_count < peak

    def test_scales_down_when_idle(self):
        env = Environment(seed=148)
        _net, replica_set, client, _ = make_replica_set(
            env, replicas=4, provision_delay=30.0
        )
        scaler = Autoscaler(env, replica_set, target_outstanding=2.0,
                            min_replicas=1, interval=20.0, cooldown=40.0)
        scaler.start()
        env.run(until=1000)  # no load at all
        scaler.stop()
        assert replica_set.replica_count < 4
        assert any(e.action == "down" for e in replica_set.scale_events)

    def test_bounds_respected(self):
        env = Environment(seed=149)
        _net, replica_set, client, _ = make_replica_set(env, replicas=2)
        scaler = Autoscaler(env, replica_set, min_replicas=2, max_replicas=3,
                            interval=10.0, cooldown=10.0)
        scaler.start()
        env.run(until=500)
        scaler.stop()
        assert 2 <= replica_set.replica_count <= 3

    def test_invalid_bounds(self):
        env = Environment(seed=150)
        _net, replica_set, _client, _ = make_replica_set(env)
        with pytest.raises(ValueError):
            Autoscaler(env, replica_set, min_replicas=5, max_replicas=2)

"""Tests for the transactional engine: CRUD, isolation, recovery, XA."""

import pytest

from repro.db import (
    Database,
    DeadlockAbort,
    DuplicateKey,
    IsolationLevel,
    TxnStatus,
    WriteConflict,
)
from repro.db.errors import InvalidTransactionState, NoSuchTable
from repro.sim import Environment

RC = IsolationLevel.READ_COMMITTED
SI = IsolationLevel.SNAPSHOT
SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def env():
    return Environment(seed=2)


@pytest.fixture
def db(env):
    database = Database(env)
    database.create_table("accounts", primary_key="id")
    database.load(
        "accounts",
        [
            {"id": "alice", "balance": 100},
            {"id": "bob", "balance": 50},
        ],
    )
    return database


def run(env, gen):
    """Drive a generator to completion as a simulation process."""
    return env.run_until(env.process(gen))


class TestCrud:
    def test_get_existing(self, env, db):
        def txn_body():
            txn = db.begin(SER)
            row = yield from db.get(txn, "accounts", "alice")
            yield from db.commit(txn)
            return row

        assert run(env, txn_body())["balance"] == 100

    def test_get_missing_returns_none(self, env, db):
        def txn_body():
            txn = db.begin(SER)
            row = yield from db.get(txn, "accounts", "nobody")
            yield from db.commit(txn)
            return row

        assert run(env, txn_body()) is None

    def test_insert_and_read_back(self, env, db):
        def txn_body():
            txn = db.begin(SER)
            yield from db.insert(txn, "accounts", {"id": "carol", "balance": 10})
            row = yield from db.get(txn, "accounts", "carol")
            yield from db.commit(txn)
            return row

        assert run(env, txn_body())["balance"] == 10
        assert db.read_latest("accounts", "carol")["balance"] == 10

    def test_insert_duplicate_raises_and_aborts(self, env, db):
        def txn_body():
            txn = db.begin(SER)
            yield from db.insert(txn, "accounts", {"id": "alice", "balance": 0})

        with pytest.raises(DuplicateKey):
            run(env, txn_body())
        assert db.read_latest("accounts", "alice")["balance"] == 100

    def test_update_merges_changes(self, env, db):
        def txn_body():
            txn = db.begin(SER)
            row = yield from db.update(txn, "accounts", "bob", {"balance": 75})
            yield from db.commit(txn)
            return row

        assert run(env, txn_body())["balance"] == 75

    def test_update_missing_raises(self, env, db):
        def txn_body():
            txn = db.begin(SER)
            yield from db.update(txn, "accounts", "ghost", {"balance": 1})

        with pytest.raises(KeyError):
            run(env, txn_body())

    def test_delete(self, env, db):
        def txn_body():
            txn = db.begin(SER)
            yield from db.delete(txn, "accounts", "bob")
            yield from db.commit(txn)

        run(env, txn_body())
        assert db.read_latest("accounts", "bob") is None

    def test_scan_with_predicate(self, env, db):
        def txn_body():
            txn = db.begin(SER)
            rows = yield from db.scan(txn, "accounts", lambda r: r["balance"] > 60)
            yield from db.commit(txn)
            return rows

        rows = run(env, txn_body())
        assert [r["id"] for r in rows] == ["alice"]

    def test_scan_sees_own_writes(self, env, db):
        def txn_body():
            txn = db.begin(SER)
            yield from db.insert(txn, "accounts", {"id": "zed", "balance": 1})
            yield from db.delete(txn, "accounts", "bob")
            rows = yield from db.scan(txn, "accounts")
            yield from db.commit(txn)
            return sorted(r["id"] for r in rows)

        assert run(env, txn_body()) == ["alice", "zed"]

    def test_abort_discards_writes(self, env, db):
        def txn_body():
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 0})
            db.abort(txn)

        run(env, txn_body())
        assert db.read_latest("accounts", "alice")["balance"] == 100

    def test_no_such_table(self, env, db):
        def txn_body():
            txn = db.begin(SER)
            yield from db.get(txn, "nope", 1)

        with pytest.raises(NoSuchTable):
            run(env, txn_body())

    def test_operations_on_finished_txn_rejected(self, env, db):
        def txn_body():
            txn = db.begin(SER)
            yield from db.commit(txn)
            yield from db.get(txn, "accounts", "alice")

        with pytest.raises(InvalidTransactionState):
            run(env, txn_body())

    def test_returned_rows_cannot_corrupt_store(self, env, db):
        def txn_body():
            txn = db.begin(SER)
            row = yield from db.get(txn, "accounts", "alice")
            # Committed rows are immutable (copy elision): in-place mutation
            # raises instead of silently leaking into the store, and a
            # dict(row) copy is free to change.
            with pytest.raises(TypeError):
                row["balance"] = -999
            scratch = dict(row)
            scratch["balance"] = -999
            yield from db.commit(txn)

        run(env, txn_body())
        assert db.read_latest("accounts", "alice")["balance"] == 100


class TestSecondaryIndex:
    def test_lookup_by_indexed_column(self, env, db):
        db.create_index("accounts", "balance")

        def txn_body():
            txn = db.begin(SER)
            rows = yield from db.lookup(txn, "accounts", "balance", 50)
            yield from db.commit(txn)
            return rows

        assert [r["id"] for r in run(env, txn_body())] == ["bob"]

    def test_index_maintained_on_update(self, env, db):
        db.create_index("accounts", "balance")

        def writer():
            txn = db.begin(SER)
            yield from db.update(txn, "accounts", "bob", {"balance": 100})
            yield from db.commit(txn)

        run(env, writer())

        def reader():
            txn = db.begin(SER)
            rows = yield from db.lookup(txn, "accounts", "balance", 100)
            yield from db.commit(txn)
            return rows

        assert sorted(r["id"] for r in run(env, reader())) == ["alice", "bob"]

    def test_lookup_without_index_raises(self, env, db):
        def txn_body():
            txn = db.begin(SER)
            yield from db.lookup(txn, "accounts", "balance", 50)

        with pytest.raises(ValueError):
            run(env, txn_body())

    def test_lookup_sees_own_insert(self, env, db):
        db.create_index("accounts", "balance")

        def txn_body():
            txn = db.begin(SER)
            yield from db.insert(txn, "accounts", {"id": "dave", "balance": 50})
            rows = yield from db.lookup(txn, "accounts", "balance", 50)
            yield from db.commit(txn)
            return sorted(r["id"] for r in rows)

        assert run(env, txn_body()) == ["bob", "dave"]


class TestIsolationAnomalies:
    """Each isolation level shows (exactly) its textbook anomalies."""

    def _racing_increments(self, env, db, isolation):
        """Two read-modify-write txns on the same key; think time overlaps."""
        outcomes = []

        def incrementer(delay):
            txn = db.begin(isolation)
            row = yield from db.get(txn, "accounts", "alice")
            yield env.timeout(delay)  # overlap window
            try:
                yield from db.put(
                    txn, "accounts", "alice",
                    {"id": "alice", "balance": row["balance"] + 10},
                )
                yield from db.commit(txn)
                outcomes.append("committed")
            except (WriteConflict, DeadlockAbort):
                db.abort(txn)
                outcomes.append("aborted")

        env.process(incrementer(5))
        env.process(incrementer(5))
        env.run()
        return outcomes

    def test_read_committed_allows_lost_update(self, env, db):
        outcomes = self._racing_increments(env, db, RC)
        assert outcomes == ["committed", "committed"]
        # Both added 10, but one update was lost:
        assert db.read_latest("accounts", "alice")["balance"] == 110

    def test_snapshot_prevents_lost_update(self, env, db):
        outcomes = self._racing_increments(env, db, SI)
        assert sorted(outcomes) == ["aborted", "committed"]
        assert db.read_latest("accounts", "alice")["balance"] == 110

    def test_serializable_prevents_lost_update(self, env, db):
        outcomes = self._racing_increments(env, db, SER)
        # 2PL: S->X upgrade deadlock aborts one; the other commits.
        assert sorted(outcomes) == ["aborted", "committed"]
        assert db.read_latest("accounts", "alice")["balance"] == 110

    def test_snapshot_allows_write_skew(self, env, db):
        """Constraint: alice + bob >= 0; both withdraw based on the sum."""

        def withdrawer(me, other):
            txn = db.begin(SI)
            mine = yield from db.get(txn, "accounts", me)
            theirs = yield from db.get(txn, "accounts", other)
            yield env.timeout(5)
            if mine["balance"] + theirs["balance"] >= 150:
                yield from db.put(
                    txn, "accounts", me,
                    {"id": me, "balance": mine["balance"] - 100},
                )
            yield from db.commit(txn)

        env.process(withdrawer("alice", "bob"))
        env.process(withdrawer("bob", "alice"))
        env.run()
        total = (
            db.read_latest("accounts", "alice")["balance"]
            + db.read_latest("accounts", "bob")["balance"]
        )
        assert total == -50  # write skew broke the invariant

    def test_serializable_prevents_write_skew(self, env, db):
        aborted = []

        def withdrawer(me, other):
            txn = db.begin(SER)
            try:
                mine = yield from db.get(txn, "accounts", me)
                theirs = yield from db.get(txn, "accounts", other)
                yield env.timeout(5)
                if mine["balance"] + theirs["balance"] >= 150:
                    yield from db.put(
                        txn, "accounts", me,
                        {"id": me, "balance": mine["balance"] - 100},
                    )
                yield from db.commit(txn)
            except DeadlockAbort:
                db.abort(txn)
                aborted.append(me)

        env.process(withdrawer("alice", "bob"))
        env.process(withdrawer("bob", "alice"))
        env.run()
        total = (
            db.read_latest("accounts", "alice")["balance"]
            + db.read_latest("accounts", "bob")["balance"]
        )
        assert total >= 0
        assert len(aborted) == 1

    def test_snapshot_reads_are_repeatable(self, env, db):
        readings = []

        def reader():
            txn = db.begin(SI)
            row1 = yield from db.get(txn, "accounts", "alice")
            yield env.timeout(10)
            row2 = yield from db.get(txn, "accounts", "alice")
            yield from db.commit(txn)
            readings.extend([row1["balance"], row2["balance"]])

        def writer():
            yield env.timeout(5)
            txn = db.begin(RC)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 0})
            yield from db.commit(txn)

        env.process(reader())
        env.process(writer())
        env.run()
        assert readings == [100, 100]

    def test_read_committed_sees_fresh_data(self, env, db):
        readings = []

        def reader():
            txn = db.begin(RC)
            row1 = yield from db.get(txn, "accounts", "alice")
            yield env.timeout(10)
            row2 = yield from db.get(txn, "accounts", "alice")
            yield from db.commit(txn)
            readings.extend([row1["balance"], row2["balance"]])

        def writer():
            yield env.timeout(5)
            txn = db.begin(RC)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 0})
            yield from db.commit(txn)

        env.process(reader())
        env.process(writer())
        env.run()
        assert readings == [100, 0]  # non-repeatable read, by design

    def test_no_dirty_reads_at_any_level(self, env, db):
        """Deferred updates: uncommitted writes are never visible."""
        seen = []

        def writer():
            txn = db.begin(RC)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": -1})
            yield env.timeout(10)
            db.abort(txn)

        def reader():
            yield env.timeout(5)
            txn = db.begin(RC)
            row = yield from db.get(txn, "accounts", "alice")
            yield from db.commit(txn)
            seen.append(row["balance"])

        env.process(writer())
        env.process(reader())
        env.run()
        assert seen == [100]

    def test_serializable_blocks_phantoms(self, env, db):
        """A scan's table lock delays a concurrent insert."""
        events = []

        def scanner():
            txn = db.begin(SER)
            rows = yield from db.scan(txn, "accounts")
            events.append(("scan", len(rows)))
            yield env.timeout(10)
            rows2 = yield from db.scan(txn, "accounts")
            events.append(("scan", len(rows2)))
            yield from db.commit(txn)

        def inserter():
            yield env.timeout(2)
            txn = db.begin(SER)
            yield from db.insert(txn, "accounts", {"id": "eve", "balance": 5})
            yield from db.commit(txn)
            events.append(("inserted", env.now))

        env.process(scanner())
        env.process(inserter())
        env.run()
        assert events[0] == ("scan", 2)
        assert events[1] == ("scan", 2)  # no phantom
        assert events[2][1] >= 10  # insert waited for the scanner


class TestRecovery:
    def test_committed_data_survives_crash(self, env, db):
        def writer():
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 7})
            yield from db.commit(txn)

        run(env, writer())
        env.run()  # drain the instant: the shared group fsync runs end-of-instant
        db.crash()
        db.recover()
        assert db.read_latest("accounts", "alice")["balance"] == 7
        assert db.read_latest("accounts", "bob")["balance"] == 50

    def test_uncommitted_data_lost_on_crash(self, env, db):
        def writer():
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 7})
            # no commit -> nothing logged

        run(env, writer())
        db.crash()
        db.recover()
        assert db.read_latest("accounts", "alice")["balance"] == 100

    def test_recovery_is_idempotent(self, env, db):
        db.crash()
        db.recover()
        first = db.all_rows("accounts")
        db.crash()
        db.recover()
        assert db.all_rows("accounts") == first

    def test_indexes_rebuilt_after_recovery(self, env, db):
        db.create_index("accounts", "balance")
        db.crash()
        db.recover()

        def reader():
            txn = db.begin(SER)
            rows = yield from db.lookup(txn, "accounts", "balance", 100)
            yield from db.commit(txn)
            return rows

        assert [r["id"] for r in run(env, reader())] == ["alice"]

    def test_prepared_txn_becomes_in_doubt(self, env, db):
        def preparer():
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 1})
            yield from db.prepare(txn)
            return txn.tid

        tid = run(env, preparer())
        db.crash()
        db.recover()
        assert db.in_doubt() == [tid]
        assert db.read_latest("accounts", "alice")["balance"] == 100

    def test_in_doubt_resolution_commit(self, env, db):
        def preparer():
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 1})
            yield from db.prepare(txn)
            return txn.tid

        tid = run(env, preparer())
        db.crash()
        db.recover()
        db.resolve_in_doubt(tid, commit=True)
        assert db.read_latest("accounts", "alice")["balance"] == 1
        assert db.in_doubt() == []

    def test_in_doubt_resolution_abort(self, env, db):
        def preparer():
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 1})
            yield from db.prepare(txn)
            return txn.tid

        tid = run(env, preparer())
        db.crash()
        db.recover()
        db.resolve_in_doubt(tid, commit=False)
        assert db.read_latest("accounts", "alice")["balance"] == 100


class TestXa:
    def test_prepare_then_commit(self, env, db):
        def flow():
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 5})
            yield from db.prepare(txn)
            assert txn.status is TxnStatus.PREPARED
            db.commit_prepared(txn)

        run(env, flow())
        assert db.read_latest("accounts", "alice")["balance"] == 5

    def test_prepare_then_abort(self, env, db):
        def flow():
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 5})
            yield from db.prepare(txn)
            db.abort_prepared(txn)

        run(env, flow())
        assert db.read_latest("accounts", "alice")["balance"] == 100

    def test_prepared_txn_still_holds_locks(self, env, db):
        """The blocking window of 2PC: locks held between prepare and decision."""
        progress = []

        def preparer():
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 5})
            yield from db.prepare(txn)
            yield env.timeout(50)  # coordinator is slow to decide
            db.commit_prepared(txn)

        def blocked_reader():
            yield env.timeout(1)
            txn = db.begin(SER)
            row = yield from db.get(txn, "accounts", "alice")
            progress.append((env.now, row["balance"]))
            yield from db.commit(txn)

        env.process(preparer())
        env.process(blocked_reader())
        env.run()
        assert progress[0][0] >= 50  # reader blocked for the whole window
        assert progress[0][1] == 5

    def test_snapshot_validation_happens_at_prepare(self, env, db):
        def conflicting():
            txn_a = db.begin(SI)
            txn_b = db.begin(SI)
            row = yield from db.get(txn_a, "accounts", "alice")
            yield from db.put(txn_a, "accounts", "alice", {**row, "balance": 1})
            yield from db.commit(txn_a)
            yield from db.put(txn_b, "accounts", "alice", {"id": "alice", "balance": 2})
            yield from db.prepare(txn_b)

        with pytest.raises(WriteConflict):
            run(env, conflicting())


class TestAdaptiveFlushWindow:
    """Load-adaptive group-commit/GC windows (``adaptive=True``)."""

    def _hammer(self, env, db, commits=150):
        def writer():
            for i in range(commits):
                txn = db.begin(SI)
                yield from db.put(txn, "t", f"k{i % 8}", {"id": f"k{i % 8}", "v": i})
                yield from db.commit(txn)

        run(env, writer())

    def test_reference_mode_has_no_signal_and_never_defers(self, env):
        db = Database(env)
        db.create_table("t", primary_key="id")
        self._hammer(env, db)
        assert db.load_signal is None
        assert db.stats.adaptive_deferrals == 0

    def test_sustained_load_defers_group_flushes(self, env):
        # fast_grants=False: with the uncontended-grant fast path on, this
        # no-timeout hammer loop runs in a single virtual instant and all
        # commits legitimately share one group, so deferral never triggers.
        db = Database(env, adaptive=True, flush_window_ms=2.0, load_knee=2.0,
                      fast_grants=False)
        db.create_table("t", primary_key="id")
        self._hammer(env, db)
        assert db.stats.adaptive_deferrals > 0
        assert db.load_signal.load() > 2.0

    def test_flush_delay_zero_below_knee_capped_above(self, env):
        db = Database(env, adaptive=True, flush_window_ms=2.0, load_knee=8.0)
        assert db._flush_delay() == 0.0  # idle: identical to reference
        for _ in range(500):  # far past 4x the knee
            db.load_signal.record()
        assert db._flush_delay() == pytest.approx(2.0)  # saturates at window

    def test_gc_threshold_stretches_under_load(self, env):
        db = Database(env, adaptive=True, load_knee=4.0)
        base = db._gc_chain_threshold
        assert db._effective_gc_threshold() == base  # idle
        for _ in range(400):
            db.load_signal.record()
        stretched = db._effective_gc_threshold()
        assert stretched == 4 * base  # caps at 4x

    def test_adaptive_commits_ack_synchronously(self, env):
        """The golden contract: deferring the fsync must not delay the ack."""
        plain = Database(env, name="plain")
        plain.create_table("t", primary_key="id")
        env2 = Environment(seed=2)
        adaptive = Database(env2, name="adaptive", adaptive=True, load_knee=0.5)
        adaptive.create_table("t", primary_key="id")

        def timeline(database, environment):
            acks = []

            def writer():
                for i in range(40):
                    txn = database.begin(SI)
                    yield from database.put(txn, "t", "k", {"id": "k", "v": i})
                    yield from database.commit(txn)
                    acks.append(environment.now)

            environment.run_until(environment.process(writer()))
            return acks

        assert timeline(plain, env) == timeline(adaptive, env2)

    def test_invalid_adaptive_parameters(self, env):
        with pytest.raises(ValueError):
            Database(env, adaptive=True, flush_window_ms=-1.0)
        with pytest.raises(ValueError):
            Database(env, adaptive=True, load_knee=0.0)

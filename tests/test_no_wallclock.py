"""Static determinism guard: no wall clocks or unseeded randomness in src.

The whole repository's value rests on runs being a pure function of the
seed.  A single ``time.time()`` or module-level ``random.random()`` call in
the simulation substrate silently breaks that, so this test greps the
source tree for the known hazard patterns.  Seeded generators obtained via
``env.stream(...)`` / ``random.Random(seed)`` are the sanctioned substitute
and do not match any pattern below.
"""

import os
import re

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

#: Calls that read the wall clock or the process-global (unseeded) RNG.
HAZARDS = [
    re.compile(pattern)
    for pattern in (
        r"\btime\.time\(",
        r"\btime\.monotonic\(",
        r"\btime\.perf_counter\(",
        r"\btime\.time_ns\(",
        r"\bdatetime\.now\(",
        r"\bdatetime\.utcnow\(",
        # The module-level random API (random.Random instances are fine:
        # they are explicitly seeded and the pattern requires the bare
        # module prefix, which `rng.random()` etc. never has).
        r"(?<![\w.])random\.random\(",
        r"(?<![\w.])random\.randint\(",
        r"(?<![\w.])random\.randrange\(",
        r"(?<![\w.])random\.choice\(",
        r"(?<![\w.])random\.shuffle\(",
        r"(?<![\w.])random\.uniform\(",
        r"(?<![\w.])random\.expovariate\(",
        r"(?<![\w.])random\.sample\(",
        r"(?<![\w.])random\.seed\(",
    )
]

#: (relative path, pattern substring) pairs that are deliberately exempt.
#: Empty today — add entries only with a comment explaining why the use
#: cannot perturb simulated behaviour (e.g. wall-clock *reporting* of a
#: benchmark's real runtime, never fed back into the simulation).
ALLOWLIST: set[tuple[str, str]] = set()


def python_sources():
    for root, _dirs, files in os.walk(SRC):
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(root, name)


def test_src_tree_exists_and_is_nonempty():
    assert list(python_sources()), f"no python sources found under {SRC}"


def test_no_wallclock_or_unseeded_random_in_src():
    violations = []
    for path in python_sources():
        relative = os.path.relpath(path, SRC)
        with open(path) as handle:
            for lineno, line in enumerate(handle, 1):
                stripped = line.split("#", 1)[0]  # ignore commented-out code
                for pattern in HAZARDS:
                    if not pattern.search(stripped):
                        continue
                    if (relative, pattern.pattern) in ALLOWLIST:
                        continue
                    violations.append(f"{relative}:{lineno}: {line.strip()}")
    assert not violations, (
        "wall-clock/unseeded-random calls break determinism; use the "
        "virtual clock (env.now) and seeded streams (env.stream) instead:\n"
        + "\n".join(violations)
    )


def test_hazard_patterns_actually_match():
    # Guard the guard: if a refactor broke the regexes, this test would
    # silently pass forever.  Each hazard must match its canonical form.
    canonical = {
        r"\btime\.time\(": "t = time.time()",
        r"(?<![\w.])random\.random\(": "x = random.random()",
        r"\bdatetime\.now\(": "now = datetime.now()",
    }
    for pattern in HAZARDS:
        sample = canonical.get(pattern.pattern)
        if sample is not None:
            assert pattern.search(sample)
    # And the sanctioned forms must NOT match.
    clean = [
        "rng = random.Random(42)",
        "value = rng.random()",
        "value = self._rng.randint(0, 9)",
        "gap = env.stream('arrivals').expovariate(1.0)",
    ]
    for line in clean:
        assert not any(p.search(line) for p in HAZARDS), line

"""Tests for quorum-replicated shards (``repro.replication``).

Covers the replica-group protocol (deterministic bootstrap, quorum
commits, elections after leader loss, split votes), the fencing rule (a
deposed leader's in-flight commit is installed by the quorum but its
acknowledgement is refused), snapshot + log-suffix catch-up after a
follower restart, consistency levels (linearizable leader reads,
bounded-stale follower reads with read-your-writes sessions), the
replicated :class:`~repro.db.sharding.ShardedDatabase` (single-shard and
2PC commits, whole-group migration, a migration racing a leader
election), the ``kill_leader`` fault class, follower-mode
:class:`~repro.db.server.DatabaseServer`, and hash-seed invariance of
the whole election/replication path.
"""

import subprocess
import sys

import pytest

from repro.chaos import run_trial
from repro.cluster import ClusterError, Rebalancer
from repro.core.faults import FaultPlan, FaultPlanError
from repro.db import FencedOut, IsolationLevel, ShardedDatabase
from repro.db.engine import Database
from repro.db.errors import InvalidTransactionState
from repro.db.server import DatabaseServer
from repro.db.sharding import shard_of
from repro.net import Network
from repro.replication import (
    NoLeader,
    QuorumTimeout,
    ReplicaGroup,
    ReplicationConfig,
    Session,
)
from repro.sim import Environment

SER = IsolationLevel.SERIALIZABLE


def run(env, gen, label="test"):
    return env.run_until(env.process(gen, label=label))


def make_group(env, config=None, name="g", nodes=("n0", "n1", "n2")):
    net = Network(env)

    def factory(node_name):
        engine = Database(env, name=f"{name}@{node_name}")
        engine.create_table("kv")
        return engine

    group = ReplicaGroup(
        env, net, name=name, config=config or ReplicationConfig(),
        engine_factory=factory, node_names=list(nodes),
    )
    return net, group


def commit_row(env, group, key, value, replica=None, gid=None):
    """Stage one write on the leader engine and replicate it to quorum."""
    leader = replica or group.leader_replica()
    engine = leader.engine
    txn = engine.begin(SER)
    yield from engine.put(txn, "kv", key, {"id": key, "value": value})
    gid = gid or ("t", env.next_id("test-gid"))
    writes = engine.stage_replicated(txn, gid)
    index = yield from group.replicate(("commit", gid, writes), replica=leader)
    return index


def key_on(shard, num_shards, start=0):
    """The first integer key at/after ``start`` that routes to ``shard``."""
    key = start
    while shard_of(key, num_shards) != shard:
        key += 1
    return key


class TestReplicaGroup:
    def test_deterministic_bootstrap_and_quorum_commit(self):
        env = Environment(seed=1)
        _net, group = make_group(env)
        leader = group.leader_replica()
        assert leader is group.replicas[0] and leader.term == 1

        index = run(env, commit_row(env, group, "a", 7))
        assert index == 2  # index 1 is the term-start no-op
        env.run(until=env.now + 100.0)
        for replica in group.replicas:
            assert replica.applied_index == 2
            assert replica.engine.read_latest("kv", "a") == {"id": "a", "value": 7}

    def test_commit_requires_quorum(self):
        env = Environment(seed=2)
        net, group = make_group(env)
        leader = group.leader_replica()
        # Cut the leader off from both followers: nothing can commit.
        net.partition(["n0"], ["n1", "n2"])

        with pytest.raises(QuorumTimeout):
            run(env, commit_row(env, group, "a", 1, replica=leader))
        assert leader.engine.read_latest("kv", "a") is None  # never committed
        for follower in group.replicas[1:]:
            assert follower.engine.read_latest("kv", "a") is None

        # The followers elected a fresh leader behind the partition; on
        # heal the new leadership truncates the never-replicated entry —
        # the timeout meant "unknown", and the outcome resolved to abort,
        # consistently on every replica.
        net.heal()
        env.run(until=env.now + 300.0)
        new_leader = group.leader_replica()
        assert new_leader is not None and new_leader.term >= 2
        for replica in group.replicas:
            assert replica.engine.read_latest("kv", "a") is None
        assert leader.engine.stats.aborted == 1  # the staged txn rolled back


class TestElections:
    def test_failover_elects_new_leader_and_catches_up_crashed_node(self):
        env = Environment(seed=3)
        net, group = make_group(env)
        run(env, commit_row(env, group, "a", 1))

        net.nodes["n0"].crash("test")
        env.run(until=env.now + 400.0)
        leader = group.leader_replica()
        assert leader is not None and leader.node.name in ("n1", "n2")
        assert leader.term >= 2

        index = run(env, commit_row(env, group, "b", 2, replica=leader))
        net.nodes["n0"].restart()
        env.run(until=env.now + 300.0)
        n0 = group.replica_on("n0")
        assert n0.role == "follower"
        assert n0.applied_index >= index
        assert n0.engine.read_latest("kv", "b") == {"id": "b", "value": 2}

    def test_split_vote_then_reelection(self):
        env = Environment(seed=4)
        net, group = make_group(env)
        net.nodes["n0"].crash("test")
        # Both survivors start an election in the same instant: each votes
        # for itself, denies the other, and the round yields no leader.
        group.replica_on("n1").force_election()
        group.replica_on("n2").force_election()
        env.run(until=env.now + 1.0)
        assert group.replica_on("n1").role == "candidate"
        assert group.replica_on("n2").role == "candidate"
        assert group.replica_on("n1").term == 2
        assert group.replica_on("n2").term == 2
        assert group.leader_replica() is None

        # The randomized timers break the tie in a later term.
        env.run(until=env.now + 600.0)
        leader = group.leader_replica()
        assert leader is not None and leader.term >= 3
        others = [r for r in group.replicas[1:] if r is not leader]
        assert all(r.role != "leader" for r in others)
        run(env, commit_row(env, group, "a", 1, replica=leader))


class TestFencing:
    def test_stale_leader_is_fenced_mid_commit(self):
        """A leader that proposes, replicates, then gets deposed must not
        acknowledge: the entry commits under the new leadership, but the
        old leader's engine refuses the ack (FencedOut)."""
        env = Environment(seed=5)
        net, group = make_group(env)
        leader = group.leader_replica()

        def scenario():
            engine = leader.engine
            txn = engine.begin(SER)
            yield from engine.put(txn, "kv", "k", {"id": "k", "value": 7})
            writes = engine.stage_replicated(txn, ("t", 1))
            # The entry reaches the followers, but every reply back to the
            # leader is lost — it can never learn the quorum outcome.
            net.set_loss(1.0, src="n1", dst="n0")
            net.set_loss(1.0, src="n2", dst="n0")
            yield from group.replicate(("commit", ("t", 1), writes),
                                       replica=leader)

        outcome = env.future(label="fence-outcome")

        def guarded():
            try:
                yield from scenario()
            except Exception as exc:  # noqa: BLE001 - asserted below
                outcome.try_succeed(exc)
                return
            outcome.try_succeed(None)

        def heal():
            net.set_loss(0.0, src="n1", dst="n0")
            net.set_loss(0.0, src="n2", dst="n0")

        env.process(guarded(), label="fence-test")
        # t=45: the entry has replicated (the first append round holds the
        # sync slot until the 30 ms rpc timeout, so the entry ships on the
        # second round at ~30 ms); n1 wins on log completeness.  t=80: the
        # deposed leader reconnects and learns the outcome — fenced.
        env.schedule(45.0, group.replica_on("n1").force_election)
        env.schedule(80.0, heal)
        result = env.run_until(outcome)

        assert isinstance(result, FencedOut)
        n0 = group.replica_on("n0")
        assert n0.role == "follower"  # deposed by the term-2 append
        assert n0.engine.stats.fenced_acks == 1
        new_leader = group.leader_replica()
        assert new_leader is group.replica_on("n1")
        # The write is committed state everywhere — installed exactly once.
        env.run(until=env.now + 100.0)
        for replica in group.replicas:
            assert replica.engine.read_latest("kv", "k") == {"id": "k", "value": 7}
            assert replica.engine.stats.committed == 1


class TestSnapshotCatchup:
    def test_follower_restart_catches_up_from_snapshot_plus_suffix(self):
        env = Environment(seed=6)
        config = ReplicationConfig(compact_threshold=8, compact_keep=2)
        net, group = make_group(env, config=config)
        net.nodes["n2"].crash("test")

        leader = group.leader_replica()
        for i in range(20):
            run(env, commit_row(env, group, f"k{i}", i, replica=leader))
        assert leader.log.snapshot_index > 0  # the leader compacted

        net.nodes["n2"].restart()
        env.run(until=env.now + 300.0)
        n2 = group.replica_on("n2")
        # Catch-up went through InstallSnapshot (the compacted prefix is
        # gone from the leader's log) plus the live suffix.
        assert n2.log.snapshot_index >= leader.log.snapshot_index > 0
        assert n2.applied_index == leader.applied_index
        assert n2.log.last_index == leader.log.last_index
        for i in (0, 10, 19):
            assert n2.engine.read_latest("kv", f"k{i}") == {"id": f"k{i}", "value": i}


class TestReads:
    def test_leader_read_and_follower_read(self):
        env = Environment(seed=7)
        _net, group = make_group(env)
        session = Session()
        index = run(env, commit_row(env, group, "a", 1))
        session.observe(index)

        row = run(env, group.leader_read("kv", "a"))
        assert row == {"id": "a", "value": 1}
        # The read-index barrier costs a quorum round trip: time advanced.
        assert env.now > 0

        row = run(env, group.follower_read("kv", "a", session=session))
        assert row == {"id": "a", "value": 1}

    def test_read_your_writes_survives_failover(self):
        env = Environment(seed=8)
        net, group = make_group(env)
        session = Session()
        session.observe(run(env, commit_row(env, group, "a", 1)))

        net.nodes["n0"].crash("test")
        env.run(until=env.now + 400.0)
        leader = group.leader_replica()
        session.observe(run(env, commit_row(env, group, "a", 2, replica=leader)))

        # The restarted old leader is behind; a session read pinned to it
        # must wait for catch-up rather than serve the stale value.
        net.nodes["n0"].restart()
        env.run(until=env.now + 1.0)
        row = run(env, group.follower_read("kv", "a", session=session, node="n0"))
        assert row == {"id": "a", "value": 2}
        assert group.replica_on("n0").applied_index >= session.min_index


class TestHashseedInvariance:
    _PROBE = '''\
import hashlib
import sys

sys.path.insert(0, {src!r})

from repro.db import IsolationLevel
from repro.db.engine import Database
from repro.net import Network
from repro.replication import ReplicaGroup, ReplicationConfig
from repro.sim import Environment

env = Environment(seed=7)
net = Network(env)


def factory(node_name):
    engine = Database(env, name="probe@" + node_name)
    engine.create_table("kv")
    return engine


group = ReplicaGroup(env, net, name="probe", config=ReplicationConfig(),
                     engine_factory=factory, node_names=["n0", "n1", "n2"])


def commit(key, value):
    leader = group.leader_replica()
    engine = leader.engine
    txn = engine.begin(IsolationLevel.SERIALIZABLE)
    yield from engine.put(txn, "kv", key, {{"id": key, "value": value}})
    gid = ("t", env.next_id("gid"))
    writes = engine.stage_replicated(txn, gid)
    return (yield from group.replicate(("commit", gid, writes), replica=leader))


trace = []
for round_no in range(3):
    for k in range(4):
        index = env.run_until(env.process(commit(f"k{{round_no}}-{{k}}",
                                                 round_no * 10 + k)))
        trace.append((round_no, k, index, round(env.now, 6)))
    victim = group.leader_replica().node
    victim.crash("probe")
    env.run(until=env.now + 400.0)
    victim.restart()
    env.run(until=env.now + 400.0)
    leader = group.leader_replica()
    trace.append((leader.node.name, leader.term, round(env.now, 6)))

keys = [f"k{{i}}-{{j}}" for i in range(3) for j in range(4)]
state = [
    (r.node.name, r.term, r.applied_index,
     tuple((key, (r.engine.read_latest("kv", key) or {{}}).get("value"))
           for key in keys))
    for r in group.replicas
]
print(hashlib.sha256(repr((trace, state)).encode()).hexdigest())
'''

    def test_elections_and_replication_are_hashseed_invariant(self, tmp_path):
        """The full propose/elect/failover/catch-up path must not leak
        ``PYTHONHASHSEED``: named streams and stable iteration orders only."""
        import os

        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        script = tmp_path / "probe.py"
        script.write_text(self._PROBE.format(src=src))
        digests = set()
        for seed in ("0", "1", "424242"):
            out = subprocess.run(
                [sys.executable, str(script)],
                env={**os.environ, "PYTHONHASHSEED": seed},
                capture_output=True, text=True, check=True,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1 and "" not in digests


class TestReplicatedShardedDatabase:
    def _make_db(self, env, num_shards=2, num_nodes=3, **kwargs):
        db = ShardedDatabase(
            env, num_shards=num_shards, num_nodes=num_nodes, name="bank",
            rtt_ms=1.0, replication=ReplicationConfig(), **kwargs,
        )
        db.create_table("accounts")
        return db

    def _transfer(self, db, src, dst, amount):
        txn = db.begin(SER)
        try:
            a = yield from db.get(txn, "accounts", src)
            b = yield from db.get(txn, "accounts", dst)
            yield from db.put(txn, "accounts", src,
                              {"id": src, "balance": a["balance"] - amount})
            yield from db.put(txn, "accounts", dst,
                              {"id": dst, "balance": b["balance"] + amount})
            yield from db.commit(txn)
        finally:
            if txn.status == "active":
                db.abort(txn)
        return txn

    def test_single_shard_commit_replicates_to_quorum(self):
        env = Environment(seed=9)
        db = self._make_db(env)
        k1 = key_on(0, 2)
        k2 = key_on(0, 2, start=k1 + 1)
        db.load("accounts", [{"id": k, "balance": 100} for k in (k1, k2)])

        txn = run(env, self._transfer(db, k1, k2, 30))
        assert txn.status == "committed"
        assert not txn.is_distributed
        assert 0 in txn.applied  # the quorum-acked log index
        assert db.read_latest("accounts", k1)["balance"] == 70

        env.run(until=env.now + 100.0)
        for engine in db.replica_group(0).engines():
            assert engine.read_latest("accounts", k1)["balance"] == 70
            assert engine.read_latest("accounts", k2)["balance"] == 130

    def test_cross_shard_2pc_commits_on_both_groups(self):
        env = Environment(seed=10)
        db = self._make_db(env)
        k0, k1 = key_on(0, 2), key_on(1, 2)
        db.load("accounts", [{"id": k, "balance": 100} for k in (k0, k1)])

        txn = run(env, self._transfer(db, k0, k1, 25))
        assert txn.status == "committed"
        assert txn.is_distributed
        assert set(txn.applied) == {0, 1}
        total = sum(row["balance"] for row in db.all_rows("accounts"))
        assert total == 200

        env.run(until=env.now + 200.0)
        for shard in (0, 1):
            for engine in db.replica_group(shard).engines():
                assert engine.in_doubt() == []  # no torn prepares left

    def test_unreplicated_mode_is_unchanged(self):
        env = Environment(seed=11)
        db = ShardedDatabase(env, num_shards=4)
        assert isinstance(db.shards, list) and len(db.shards) == 4
        assert not hasattr(db, "repl_net")
        with pytest.raises(ClusterError):
            db.replica_group(0)
        with pytest.raises(ClusterError):
            run(env, db.migrate_shard(0, db.nodes[1], [db.nodes[1]]))

    def test_migration_moves_whole_group_atomically(self):
        env = Environment(seed=12)
        db = self._make_db(env, num_nodes=4)
        keys = [key_on(0, 2, start=i * 7) for i in range(6)]
        db.load("accounts", [{"id": k, "balance": 50} for k in dict.fromkeys(keys)])
        old_group = db.replica_group(0)
        dest = db.nodes[3]

        run(env, db.migrate_shard(0, dest))
        new_group = db.replica_group(0)
        assert new_group is not old_group
        assert all(r.role == "stopped" for r in old_group.replicas)
        assert db.directory.group_of(0)[0] == dest
        assert new_group.leader_name() == dest
        assert db.migration_stats.completed == 1

        # Data survived the move and the shard still takes writes.
        k1, k2 = sorted(dict.fromkeys(keys))[:2]
        txn = run(env, self._transfer(db, k1, k2, 5))
        assert txn.status == "committed"
        total = sum(row["balance"] for row in db.all_rows("accounts"))
        assert total == 50 * len(dict.fromkeys(keys))

    def test_migration_racing_leader_election_aborts_cleanly(self):
        """Satellite regression: a leader election (here: leader crash)
        during the copy phase aborts the migration — ownership unchanged,
        the old group keeps serving after failover."""
        env = Environment(seed=13)
        db = self._make_db(env, num_nodes=4, drain_timeout_ms=250.0)
        keys = list(dict.fromkeys(key_on(0, 2, start=i * 3) for i in range(120)))
        db.load("accounts", [{"id": k, "balance": 10} for k in keys])
        old_group = db.replica_group(0)
        leader_node = old_group.leader_replica().node

        env.schedule(5.0, leader_node.crash, "race")
        with pytest.raises(ClusterError):
            run(env, db.migrate_shard(0, db.nodes[3]))
        assert db.replica_group(0) is old_group
        assert db.migration_stats.aborted == 1
        assert db.directory.group_of(0)[0] == db.nodes[0]

        # After the failover (and the crashed node's restart) the shard
        # serves transactions from the surviving replicas.
        leader_node.restart()
        env.run(until=env.now + 500.0)
        txn = run(env, self._transfer(db, keys[0], keys[1], 1))
        assert txn.status == "committed"
        total = sum(row["balance"] for row in db.all_rows("accounts"))
        assert total == 10 * len(keys)

    def test_rebalancer_plans_full_group_membership(self):
        env = Environment(seed=14)
        db = self._make_db(env, num_shards=4, num_nodes=5)
        rebalancer = Rebalancer(env, db, min_load=0.5)
        for _ in range(4):
            db.shard_stats.record(0, 10.0)
        db.shard_stats.roll_window()

        move = rebalancer.plan()
        assert move is not None and move.shard == 0
        assert move.dest_nodes and move.dest_nodes[0] == move.dest
        assert len(move.dest_nodes) == db.replication.factor
        assert len(set(move.dest_nodes)) == len(move.dest_nodes)
        assert all(node in db.nodes for node in move.dest_nodes)

    def test_rebalancer_plan_is_empty_membership_when_unreplicated(self):
        env = Environment(seed=15)
        db = ShardedDatabase(env, num_shards=4, name="plain")
        rebalancer = Rebalancer(env, db, min_load=0.5)
        for _ in range(4):
            db.shard_stats.record(0, 10.0)
        db.shard_stats.roll_window()
        move = rebalancer.plan()
        assert move is not None and move.dest_nodes == ()


class TestKillLeaderFault:
    def test_plan_validates_and_requires_resolver(self):
        plan = FaultPlan().kill_leader("shard0", at=10.0, until=50.0)
        plan.validate()
        env = Environment(seed=16)
        net = Network(env)
        with pytest.raises(FaultPlanError):
            plan.apply(env, net)

    def test_kill_leader_crashes_resolved_node_and_restarts_it(self):
        env = Environment(seed=17)
        net = Network(env)
        net.add_node("n0")
        plan = FaultPlan().kill_leader("shard0", at=10.0, until=50.0)
        plan.apply(env, net, resolver=lambda label: "n0")
        env.run(until=20.0)
        assert not net.nodes["n0"].alive
        env.run(until=60.0)
        assert net.nodes["n0"].alive

    def test_kill_leader_skips_leaderless_group(self):
        env = Environment(seed=18)
        net = Network(env)
        net.add_node("n0")
        plan = FaultPlan().kill_leader("shard0", at=10.0, until=50.0)
        plan.apply(env, net, resolver=lambda label: None)
        env.run(until=60.0)
        assert net.nodes["n0"].alive


class TestFollowerServer:
    def test_follower_refuses_transactions_and_applies_suffix(self):
        env = Environment(seed=19)
        server = DatabaseServer(env, name="replica", follower=True)
        server.create_table("kv")
        with pytest.raises(InvalidTransactionState):
            run(env, server.begin())

        entries = [
            (1, 1, ("noop",)),
            (2, 1, ("commit", "g1", ((("kv", "a"), {"id": "a", "value": 1}),))),
            (3, 1, ("commit", "g2", ((("kv", "b"), {"id": "b", "value": 2}),))),
        ]
        assert run(env, server.apply_log_suffix(entries)) == 3
        assert server.applied_index == 3
        # Idempotent catch-up: re-shipping an overlapping suffix is a no-op.
        assert run(env, server.apply_log_suffix(entries)) == 0
        assert run(env, server.read_latest("kv", "a"))["value"] == 1
        assert run(env, server.read_latest("kv", "b"))["value"] == 2

        server.promote()
        txn = run(env, server.begin())
        run(env, server.put(txn, "kv", "c", {"id": "c", "value": 3}))
        run(env, server.commit(txn))
        assert run(env, server.read_latest("kv", "c"))["value"] == 3


class TestReplicationChaos:
    def test_sound_trial_is_clean_and_deterministic(self):
        first = run_trial("replication", seed=11)
        second = run_trial("replication", seed=11)
        assert first.violations == []
        assert first.history_digest == second.history_digest
        assert first.plan_json == second.plan_json

    def test_broken_no_fencing_variant_is_caught(self):
        result = run_trial("replication", seed=8, broken=True)
        assert result.violations, "no-fencing variant must violate the oracles"
        invariants = {v.invariant for v in result.violations}
        assert invariants & {"conservation", "transfer_exactly_once"}

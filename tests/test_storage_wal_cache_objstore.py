"""Tests for the WAL, object store, and LRU/TTL cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.latency import Latency
from repro.sim import Environment
from repro.storage import LruCache, ObjectStore, ObjectStoreServer, WriteAheadLog
from repro.storage.object_store import NoSuchKey


class TestWal:
    def test_lsns_are_sequential(self):
        wal = WriteAheadLog()
        assert wal.append("a", 1) == 1
        assert wal.append("b", 2) == 2
        assert wal.last_lsn == 2

    def test_flush_moves_durability_horizon(self):
        wal = WriteAheadLog()
        wal.append("a", 1)
        assert wal.flushed_lsn == 0
        wal.flush()
        assert wal.flushed_lsn == 1

    def test_crash_loses_unflushed_tail(self):
        wal = WriteAheadLog()
        wal.append("keep", 1)
        wal.flush()
        wal.append("lose", 2)
        wal.crash()
        kinds = [r.kind for r in wal.records()]
        assert kinds == ["keep"]
        assert wal.last_lsn == 1

    def test_lsns_continue_after_crash(self):
        wal = WriteAheadLog()
        wal.append("a", 1)
        wal.flush()
        wal.append("b", 2)
        wal.crash()
        assert wal.append("c", 3) == 2  # reuses the lost LSN

    def test_durable_records_exclude_tail(self):
        wal = WriteAheadLog()
        wal.append("a", 1)
        wal.flush()
        wal.append("b", 2)
        assert [r.kind for r in wal.durable_records()] == ["a"]

    def test_read_by_lsn(self):
        wal = WriteAheadLog()
        wal.append("a", "x")
        wal.append("b", "y")
        assert wal.read(2).payload == "y"
        assert wal.read(99) is None

    def test_truncate(self):
        wal = WriteAheadLog()
        for i in range(5):
            wal.append("r", i)
        dropped = wal.truncate(before_lsn=3)
        assert dropped == 2
        assert [r.lsn for r in wal.records()] == [3, 4, 5]
        assert wal.read(1) is None
        assert wal.read(4).payload == 3

    def test_records_from_lsn(self):
        wal = WriteAheadLog()
        for i in range(4):
            wal.append("r", i)
        assert [r.payload for r in wal.records(from_lsn=3)] == [2, 3]


@settings(max_examples=50, deadline=None)
@given(
    flush_points=st.sets(st.integers(min_value=1, max_value=30)),
    count=st.integers(min_value=1, max_value=30),
)
def test_wal_crash_preserves_exactly_flushed_prefix(flush_points, count):
    """Property: after a crash, the log is exactly the flushed prefix."""
    wal = WriteAheadLog()
    flushed_upto = 0
    for i in range(1, count + 1):
        wal.append("rec", i)
        if i in flush_points:
            wal.flush()
            flushed_upto = i
    wal.crash()
    assert [r.payload for r in wal.records()] == list(range(1, flushed_upto + 1))


class TestObjectStore:
    def test_put_get_roundtrip(self):
        store = ObjectStore()
        store.put("ckpt", "state-1", {"a": 1})
        assert store.get("ckpt", "state-1") == {"a": 1}

    def test_missing_key_raises(self):
        store = ObjectStore()
        with pytest.raises(NoSuchKey):
            store.get("b", "missing")

    def test_list_prefix_sorted(self):
        store = ObjectStore()
        store.put("b", "ckpt/2", None)
        store.put("b", "ckpt/1", None)
        store.put("b", "other", None)
        assert store.list("b", "ckpt/") == ["ckpt/1", "ckpt/2"]

    def test_delete(self):
        store = ObjectStore()
        store.put("b", "k", 1)
        assert store.delete("b", "k")
        assert not store.exists("b", "k")
        assert not store.delete("b", "k")

    def test_server_charges_latency(self):
        env = Environment(seed=3)
        server = ObjectStoreServer(env, latency=Latency.constant(10.0))

        def writer(env):
            yield from server.put("b", "k", "v", size=100)
            return env.now

        proc = env.process(writer(env))
        env.run()
        assert proc.result() == pytest.approx(10.0 + 0.01 * 100)
        assert server.store.get("b", "k") == "v"

    def test_server_get_returns_value(self):
        env = Environment(seed=3)
        server = ObjectStoreServer(env, latency=Latency.constant(1.0))
        server.store.put("b", "k", 42)

        def reader(env):
            value = yield from server.get("b", "k")
            return value

        proc = env.process(reader(env))
        env.run()
        assert proc.result() == 42

    def test_durability_across_node_crash(self):
        """Objects survive crashes of the nodes that wrote them."""
        from repro.net import Network

        env = Environment(seed=3)
        net = Network(env)
        node = net.add_node("writer")
        server = ObjectStoreServer(env, latency=Latency.constant(1.0))

        def writer(env):
            yield from server.put("b", "k", "precious")

        node.spawn(writer(env))
        env.run()
        node.crash()
        assert server.store.get("b", "k") == "precious"


class TestLruCache:
    def test_basic_hit_miss(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.stats.evictions == 1

    def test_ttl_expiry_uses_clock(self):
        clock = {"t": 0.0}
        cache = LruCache(capacity=10, ttl=5.0, clock=lambda: clock["t"])
        cache.put("a", 1)
        clock["t"] = 3.0
        assert cache.get("a") == 1
        clock["t"] = 6.0
        assert cache.get("a") is None
        assert cache.stats.expirations == 1

    def test_invalidate(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.get("a") is None

    def test_put_refresh_does_not_grow(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 2)
        cache.put("b", 3)
        assert len(cache) == 2
        assert cache.get("a") == 2

    def test_hit_rate(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        assert cache.stats.hit_rate == 0.5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LruCache(capacity=0)

"""Unit tests for the versioned key-value store."""

import pytest

from repro.storage import KeyValueStore
from repro.storage.kv import CasConflict


@pytest.fixture
def kv():
    return KeyValueStore()


class TestBasics:
    def test_get_absent_returns_default(self, kv):
        assert kv.get("x") is None
        assert kv.get("x", 7) == 7

    def test_put_then_get(self, kv):
        kv.put("x", 1)
        assert kv.get("x") == 1
        assert "x" in kv
        assert len(kv) == 1

    def test_overwrite(self, kv):
        kv.put("x", 1)
        kv.put("x", 2)
        assert kv.get("x") == 2

    def test_delete(self, kv):
        kv.put("x", 1)
        assert kv.delete("x")
        assert "x" not in kv
        assert not kv.delete("x")

    def test_update(self, kv):
        kv.put("n", 10)
        assert kv.update("n", lambda v: v + 5) == 15
        assert kv.get("n") == 15

    def test_update_with_default(self, kv):
        assert kv.update("n", lambda v: v + 1, default=0) == 1

    def test_scan_prefix(self, kv):
        kv.put("user:1", "a")
        kv.put("user:2", "b")
        kv.put("order:1", "c")
        assert kv.scan("user:") == [("user:1", "a"), ("user:2", "b")]


class TestVersions:
    def test_versions_increase(self, kv):
        assert kv.put("x", 1) == 1
        assert kv.put("x", 2) == 2
        assert kv.version("x") == 2

    def test_delete_bumps_version(self, kv):
        kv.put("x", 1)
        kv.delete("x")
        assert kv.version("x") == 2

    def test_get_versioned(self, kv):
        kv.put("x", "v")
        versioned = kv.get_versioned("x")
        assert versioned.value == "v"
        assert versioned.version == 1
        assert kv.get_versioned("nope") is None


class TestCas:
    def test_cas_insert_if_absent(self, kv):
        assert kv.compare_and_set("x", 1, expected_version=0) == 1

    def test_cas_succeeds_at_matching_version(self, kv):
        v = kv.put("x", 1)
        assert kv.compare_and_set("x", 2, expected_version=v) == 2

    def test_cas_conflict(self, kv):
        kv.put("x", 1)
        kv.put("x", 2)
        with pytest.raises(CasConflict):
            kv.compare_and_set("x", 3, expected_version=1)

    def test_cas_after_delete_requires_tombstone_version(self, kv):
        kv.put("x", 1)
        kv.delete("x")
        with pytest.raises(CasConflict):
            kv.compare_and_set("x", 2, expected_version=0)
        assert kv.compare_and_set("x", 2, expected_version=2) == 3

    def test_lost_update_prevented_by_cas(self, kv):
        """Two read-modify-write racers: exactly one CAS wins."""
        kv.put("counter", 0)
        snap_a = kv.get_versioned("counter")
        snap_b = kv.get_versioned("counter")
        kv.compare_and_set("counter", snap_a.value + 1, snap_a.version)
        with pytest.raises(CasConflict):
            kv.compare_and_set("counter", snap_b.value + 1, snap_b.version)
        assert kv.get("counter") == 1


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self, kv):
        kv.put("a", 1)
        kv.put("b", 2)
        snap = kv.snapshot()
        kv.put("a", 99)
        kv.delete("b")
        kv.restore(snap)
        assert kv.get("a") == 1
        assert kv.get("b") == 2

    def test_snapshot_is_isolated(self, kv):
        kv.put("a", 1)
        snap = kv.snapshot()
        snap["a"] = 42
        assert kv.get("a") == 1

    def test_counters(self, kv):
        kv.put("a", 1)
        kv.get("a")
        assert kv.write_count == 1
        assert kv.read_count == 1

"""Tests for the replay-based durable workflow engine."""

import pytest

from repro.faas import DurableWorkflows, NonDeterminismError, WorkflowFailed
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment(seed=161)


def make_engine(env):
    engine = DurableWorkflows(env, activity_latency=1.0)
    executions = {"log": []}

    @engine.activity("reserve")
    def reserve(item):
        yield env.timeout(2.0)
        executions["log"].append(("reserve", item))
        return f"res-{item}"

    @engine.activity("charge")
    def charge(amount):
        yield env.timeout(2.0)
        executions["log"].append(("charge", amount))
        return f"paid-{amount}"

    @engine.activity("boom")
    def boom():
        yield env.timeout(1.0)
        raise ValueError("activity exploded")

    @engine.workflow("checkout")
    def checkout(ctx, payload):
        reservation = yield ctx.activity("reserve", payload["item"])
        receipt = yield ctx.activity("charge", payload["amount"])
        return {"reservation": reservation, "receipt": receipt}

    @engine.workflow("with_timer")
    def with_timer(ctx, payload):
        yield ctx.timer(50.0)
        result = yield ctx.activity("reserve", "after-timer")
        return result

    @engine.workflow("parallel")
    def parallel(ctx, payload):
        results = yield ctx.all([
            ctx.activity("reserve", "a"),
            ctx.activity("reserve", "b"),
            ctx.activity("charge", 7),
        ])
        return results

    @engine.workflow("failing")
    def failing(ctx, payload):
        yield ctx.activity("boom")

    return engine, executions


def run(env, fut):
    return env.run_until(fut)


class TestHappyPath:
    def test_sequential_activities(self, env):
        engine, executions = make_engine(env)
        result = run(env, engine.start("wf-1", "checkout",
                                       {"item": "book", "amount": 30}))
        assert result == {"reservation": "res-book", "receipt": "paid-30"}
        assert executions["log"] == [("reserve", "book"), ("charge", 30)]
        assert engine.status_of("wf-1") == "completed"

    def test_history_records_command_order(self, env):
        engine, _ = make_engine(env)
        run(env, engine.start("wf-1", "checkout", {"item": "x", "amount": 1}))
        assert engine.history_of("wf-1") == [
            ("activity", "reserve"), ("activity", "charge"),
        ]

    def test_start_is_idempotent(self, env):
        engine, executions = make_engine(env)
        fut1 = engine.start("wf-1", "checkout", {"item": "x", "amount": 1})
        fut2 = engine.start("wf-1", "checkout", {"item": "x", "amount": 1})
        run(env, fut1)
        env.run()
        assert fut2.done
        assert executions["log"].count(("reserve", "x")) == 1

    def test_durable_timer(self, env):
        engine, _ = make_engine(env)
        fut = engine.start("wf-t", "with_timer", None)
        result = run(env, fut)
        assert result == "res-after-timer"
        assert env.now >= 50.0
        assert engine.stats.timers_fired == 1

    def test_parallel_activities(self, env):
        engine, executions = make_engine(env)
        started = env.now
        results = run(env, engine.start("wf-p", "parallel", None))
        assert results == ["res-a", "res-b", "paid-7"]
        # Concurrent, not sequential: ~one activity duration, not three.
        assert env.now - started < 3 * 3.0

    def test_unknown_workflow(self, env):
        engine, _ = make_engine(env)
        with pytest.raises(KeyError):
            engine.start("wf-1", "nope")


class TestFailures:
    def test_activity_failure_fails_workflow(self, env):
        engine, _ = make_engine(env)
        fut = engine.start("wf-f", "failing", None)
        with pytest.raises(WorkflowFailed, match="exploded"):
            run(env, fut)
        assert engine.status_of("wf-f") == "failed"

    def test_workflow_exception_fails_instance(self, env):
        engine, _ = make_engine(env)

        @engine.workflow("raises")
        def raises(ctx, payload):
            yield ctx.timer(1.0)
            raise RuntimeError("business error")

        fut = engine.start("wf-r", "raises", None)
        with pytest.raises(WorkflowFailed, match="business error"):
            run(env, fut)

    def test_nondeterministic_workflow_detected(self, env):
        engine, _ = make_engine(env)
        flip = {"n": 0}

        @engine.workflow("flaky")
        def flaky(ctx, payload):
            flip["n"] += 1
            if flip["n"] == 1:
                yield ctx.activity("reserve", "first")
            else:
                yield ctx.activity("charge", 99)  # different command on replay!
            yield ctx.activity("reserve", "second")

        fut = engine.start("wf-nd", "flaky", None)
        env.run()
        assert engine.status_of("wf-nd") == "failed"
        assert "replay mismatch" in engine._instances["wf-nd"].result
        with pytest.raises(WorkflowFailed, match="replay mismatch"):
            fut.result()

    def test_yielding_garbage_detected(self, env):
        engine, _ = make_engine(env)

        @engine.workflow("garbage")
        def garbage(ctx, payload):
            yield 42

        fut = engine.start("wf-g", "garbage", None)
        env.run()
        with pytest.raises(WorkflowFailed, match="may be yielded"):
            fut.result()


class TestCrashRecovery:
    def test_progress_survives_crash(self, env):
        """Crash after the first activity: replay skips it, runs the second."""
        engine, executions = make_engine(env)
        engine.start("wf-1", "checkout", {"item": "book", "amount": 30})
        env.run(until=4.0)  # reserve completed (t=3), charge in flight
        assert ("reserve", "book") in executions["log"]
        engine.crash()
        engine.recover()
        result = run(env, engine.wait("wf-1"))
        assert result == {"reservation": "res-book", "receipt": "paid-30"}
        # reserve executed once (its completion was recorded pre-crash);
        # charge executed at least once (lost in-flight, re-run on recovery).
        assert executions["log"].count(("reserve", "book")) == 1
        assert executions["log"].count(("charge", 30)) >= 1

    def test_activity_in_flight_at_crash_runs_again(self, env):
        """At-least-once activities: the §3.2 idempotency burden."""
        engine, executions = make_engine(env)
        engine.start("wf-1", "checkout", {"item": "x", "amount": 5})
        env.run(until=1.5)  # reserve dispatched, not yet completed
        engine.crash()
        engine.recover()
        run(env, engine.wait("wf-1"))
        assert executions["log"].count(("reserve", "x")) >= 1

    def test_crash_during_timer_resumes_timer(self, env):
        engine, _ = make_engine(env)
        engine.start("wf-t", "with_timer", None)
        env.run(until=20.0)  # mid-timer
        engine.crash()
        engine.recover()
        result = run(env, engine.wait("wf-t"))
        assert result == "res-after-timer"

    def test_completed_instance_unaffected_by_recovery(self, env):
        engine, executions = make_engine(env)
        run(env, engine.start("wf-1", "checkout", {"item": "x", "amount": 5}))
        count_before = len(executions["log"])
        engine.crash()
        engine.recover()
        env.run()
        assert len(executions["log"]) == count_before
        assert run(env, engine.wait("wf-1"))["receipt"] == "paid-5"

    def test_replay_count_visible(self, env):
        engine, _ = make_engine(env)
        run(env, engine.start("wf-1", "checkout", {"item": "x", "amount": 5}))
        # initial drive + one re-drive per completed command.
        assert engine.stats.replays == 3

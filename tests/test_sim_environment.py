"""Unit tests for the environment, processes, and interrupts."""

import pytest

from repro.sim import Environment, Interrupted, SimulationError


@pytest.fixture
def env():
    return Environment(seed=7)


class TestClock:
    def test_time_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_timeout_advances_clock(self, env):
        fired = []
        env.schedule(5.0, lambda: fired.append(env.now))
        env.run()
        assert fired == [5.0]
        assert env.now == 5.0

    def test_run_until_limit(self, env):
        env.schedule(10.0, lambda: None)
        stopped = env.run(until=4.0)
        assert stopped == 4.0
        assert env.pending_events == 1

    def test_events_fire_in_time_then_fifo_order(self, env):
        order = []
        env.schedule(2.0, lambda: order.append("b"))
        env.schedule(1.0, lambda: order.append("a"))
        env.schedule(2.0, lambda: order.append("c"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.schedule(-1.0, lambda: None)

    def test_step_executes_one_event(self, env):
        hits = []
        env.schedule(1.0, lambda: hits.append(1))
        env.schedule(2.0, lambda: hits.append(2))
        assert env.step()
        assert hits == [1]
        assert env.step()
        assert not env.step()


class TestProcesses:
    def test_process_returns_value(self, env):
        def worker(env):
            yield env.timeout(3)
            return "ok"

        proc = env.process(worker(env))
        env.run()
        assert proc.result() == "ok"
        assert env.now == 3

    def test_process_waits_on_future(self, env):
        fut = env.future()

        def worker(env):
            value = yield fut
            return value * 2

        proc = env.process(worker(env))
        env.schedule(4.0, fut.succeed, 21)
        env.run()
        assert proc.result() == 42

    def test_process_waits_on_process(self, env):
        def inner(env):
            yield env.timeout(2)
            return 5

        def outer(env):
            value = yield env.process(inner(env))
            return value + 1

        proc = env.process(outer(env))
        env.run()
        assert proc.result() == 6

    def test_failed_future_raises_inside_process(self, env):
        fut = env.future()

        def worker(env):
            try:
                yield fut
            except ValueError:
                return "caught"
            return "not caught"

        proc = env.process(worker(env))
        env.schedule(1.0, fut.fail, ValueError("x"))
        env.run()
        assert proc.result() == "caught"

    def test_uncaught_exception_fails_the_process(self, env):
        def worker(env):
            yield env.timeout(1)
            raise KeyError("oops")

        proc = env.process(worker(env))
        env.run()
        assert proc.failed
        assert isinstance(proc.exception(), KeyError)

    def test_yielding_garbage_fails_the_process(self, env):
        def worker(env):
            yield 42

        proc = env.process(worker(env))
        env.run()
        assert proc.failed
        assert isinstance(proc.exception(), SimulationError)

    def test_run_until_returns_process_result(self, env):
        def worker(env):
            yield env.timeout(1)
            return "r"

        proc = env.process(worker(env))
        assert env.run_until(proc) == "r"

    def test_run_until_detects_deadlock(self, env):
        fut = env.future()  # nobody ever resolves this

        def worker(env):
            yield fut

        proc = env.process(worker(env))
        with pytest.raises(SimulationError, match="ran dry"):
            env.run_until(proc)


class TestInterrupts:
    def test_interrupt_raises_inside_process(self, env):
        def worker(env):
            try:
                yield env.timeout(100)
            except Interrupted as exc:
                return (env.now, f"interrupted:{exc.cause}")

        proc = env.process(worker(env))
        env.schedule(5.0, proc.interrupt, "node-down")
        env.run()
        assert proc.result() == (5.0, "interrupted:node-down")

    def test_interrupt_finished_process_is_noop(self, env):
        def worker(env):
            yield env.timeout(1)
            return 1

        proc = env.process(worker(env))
        env.run()
        proc.interrupt("late")
        env.run()
        assert proc.result() == 1

    def test_detached_future_does_not_resume(self, env):
        fut = env.future()

        def worker(env):
            try:
                yield fut
            except Interrupted:
                yield env.timeout(50)
                return "recovered"

        proc = env.process(worker(env))
        env.schedule(1.0, proc.interrupt, None)
        env.schedule(2.0, fut.succeed, "stale")  # must not resume the process
        env.run()
        assert proc.result() == "recovered"
        assert env.now == 51

    def test_uncaught_interrupt_fails_process(self, env):
        def worker(env):
            yield env.timeout(100)

        proc = env.process(worker(env))
        env.schedule(1.0, proc.interrupt, None)
        env.run()
        assert proc.failed
        assert isinstance(proc.exception(), Interrupted)


class TestRandomStreams:
    def test_streams_are_stable_across_runs(self):
        a = Environment(seed=3).stream("db").random()
        b = Environment(seed=3).stream("db").random()
        assert a == b

    def test_streams_are_independent(self):
        env = Environment(seed=3)
        first = env.stream("net").random()
        env.stream("db").random()  # consuming another stream...
        env2 = Environment(seed=3)
        assert env2.stream("net").random() == first  # ...does not disturb it

    def test_different_seeds_differ(self):
        a = Environment(seed=1).stream("x").random()
        b = Environment(seed=2).stream("x").random()
        assert a != b


class TestScheduleValidation:
    def test_nan_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.schedule(float("nan"), lambda: None)

    def test_positive_infinity_rejected(self, env):
        with pytest.raises(SimulationError):
            env.schedule(float("inf"), lambda: None)

    def test_zero_delay_accepted(self, env):
        fired = []
        env.schedule(0.0, lambda: fired.append(env.now))
        env.run()
        assert fired == [0.0]


class TestReadyQueueOrdering:
    """The FIFO fast path must preserve exact (time, sequence) order."""

    def _interleaved(self, fast_path):
        env = Environment(seed=7, fast_path=fast_path)
        order = []
        # A positive delay landing at t=1 *before* zero-delay events are
        # scheduled at t=1: the heap entry has the smaller sequence number
        # and must preempt the ready queue.
        env.schedule(1.0, lambda: order.append("early-heap"))

        def at_t1():
            env.schedule(0.0, lambda: order.append("ready-1"))
            env.schedule(0.0, lambda: order.append("ready-2"))

        env.schedule(0.5, lambda: env.schedule(0.5, at_t1))
        env.run()
        return order

    def test_fast_path_matches_heap_order(self):
        assert self._interleaved(True) == self._interleaved(False)

    def test_heap_entry_preempts_ready_queue_at_same_time(self):
        env = Environment(seed=7)
        order = []

        def zero_spawner():
            # Queued on the ready queue at t=1 with large sequence numbers.
            env.schedule(0.0, lambda: order.append("zero"))

        env.schedule(1.0, zero_spawner)        # seq 1, fires first at t=1
        env.schedule(1.0, lambda: order.append("heap"))  # seq 2, same instant
        env.run()
        # "heap" was scheduled before "zero" existed, so it runs first.
        assert order == ["heap", "zero"]

    def test_fast_path_off_forces_heap_only(self):
        env = Environment(seed=7, fast_path=False)
        env.schedule(0.0, lambda: None)
        assert len(env._heap) == 1 and not env._ready
        env.run()

    def test_events_executed_counts_both_containers(self):
        env = Environment(seed=7)
        env.schedule(0.0, lambda: None)
        env.schedule(1.0, lambda: None)
        env.run()
        assert env.events_executed == 2

    def test_same_seed_trace_identical_across_modes(self):
        def run(fast_path):
            env = Environment(seed=11, fast_path=fast_path)
            log = []

            def worker(env, name, delay):
                for i in range(5):
                    yield env.timeout(delay if i % 2 else 0)
                    log.append((round(env.now, 6), name, i))

            procs = [env.process(worker(env, n, d))
                     for n, d in [("a", 0.3), ("b", 0.7), ("c", 0.0)]]
            env.run()
            return log

        assert run(True) == run(False)

"""Tests for the microservice framework: deployment, calls, state, sagas."""

import pytest

from repro.db import IsolationLevel
from repro.microservices import Microservice, MicroserviceApp, RetryPolicy
from repro.sim import Environment
from repro.transactions import Saga, SagaOrchestrator, SagaStep

RC = IsolationLevel.READ_COMMITTED


@pytest.fixture
def env():
    return Environment(seed=21)


def run(env, gen):
    return env.run_until(env.process(gen))


def make_inventory_service():
    def init_db(db):
        db.create_table("stock", primary_key="item")
        db.load("stock", [{"item": "widget", "quantity": 10}])

    service = Microservice("inventory", init_db=init_db)

    @service.handler("reserve")
    def reserve(ctx, payload):
        txn = yield from ctx.db.begin(IsolationLevel.SERIALIZABLE)
        row = yield from ctx.db.get(txn, "stock", payload["item"])
        if row is None or row["quantity"] < payload["qty"]:
            yield from ctx.db.abort(txn)
            raise ValueError("insufficient stock")
        yield from ctx.db.update(
            txn, "stock", payload["item"], {"quantity": row["quantity"] - payload["qty"]}
        )
        yield from ctx.db.commit(txn)
        return {"reserved": payload["qty"]}

    @service.handler("release")
    def release(ctx, payload):
        txn = yield from ctx.db.begin(IsolationLevel.SERIALIZABLE)
        row = yield from ctx.db.get(txn, "stock", payload["item"])
        yield from ctx.db.update(
            txn, "stock", payload["item"], {"quantity": row["quantity"] + payload["qty"]}
        )
        yield from ctx.db.commit(txn)
        return {"released": payload["qty"]}

    @service.handler("peek")
    def peek(ctx, payload):
        txn = yield from ctx.db.begin(RC)
        row = yield from ctx.db.get(txn, "stock", payload["item"])
        yield from ctx.db.commit(txn)
        return row

    return service


def make_order_service():
    def init_db(db):
        db.create_table("orders", primary_key="order_id")

    service = Microservice("orders", init_db=init_db)

    @service.handler("place")
    def place(ctx, payload):
        # Cross-service call, then local state change (the §4.2 pattern).
        reservation = yield from ctx.call(
            "inventory", "reserve", {"item": payload["item"], "qty": payload["qty"]}
        )
        txn = yield from ctx.db.begin(IsolationLevel.SERIALIZABLE)
        yield from ctx.db.insert(
            txn, "orders",
            {"order_id": payload["order_id"], "item": payload["item"],
             "qty": payload["qty"]},
        )
        yield from ctx.db.commit(txn)
        return {"order_id": payload["order_id"], **reservation}

    return service


@pytest.fixture
def app(env):
    application = MicroserviceApp(env)
    application.add_service(make_inventory_service())
    application.add_service(make_order_service())
    return application


class TestDeployment:
    def test_duplicate_service_rejected(self, env, app):
        with pytest.raises(ValueError):
            app.add_service(make_inventory_service())

    def test_db_per_service_by_default(self, env, app):
        assert app.database_of("inventory") is not app.database_of("orders")

    def test_shared_database_mode(self, env):
        application = MicroserviceApp(env, shared_database=True)
        application.add_service(make_inventory_service())
        application.add_service(make_order_service())
        assert application.database_of("inventory") is application.database_of("orders")

    def test_duplicate_handler_rejected(self):
        service = Microservice("x")

        @service.handler("m")
        def handler_a(ctx, payload):
            yield

        with pytest.raises(ValueError):
            @service.handler("m")
            def handler_b(ctx, payload):
                yield


class TestRequests:
    def test_client_request_roundtrip(self, env, app):
        result = run(env, app.request("inventory", "peek", {"item": "widget"}))
        assert result["quantity"] == 10

    def test_cross_service_call(self, env, app):
        result = run(
            env,
            app.request("orders", "place",
                        {"order_id": "o1", "item": "widget", "qty": 3}),
        )
        assert result == {"order_id": "o1", "reserved": 3}
        stock = run(env, app.request("inventory", "peek", {"item": "widget"}))
        assert stock["quantity"] == 7

    def test_business_error_propagates(self, env, app):
        from repro.messaging import RpcRemoteError

        def flow():
            yield from app.request(
                "orders", "place", {"order_id": "o1", "item": "widget", "qty": 999}
            )

        with pytest.raises(RpcRemoteError, match="insufficient stock"):
            run(env, flow())

    def test_stateless_recovery(self, env, app):
        """§4.1: crash the service node; state survives in its database."""
        run(env, app.request("orders", "place",
                             {"order_id": "o1", "item": "widget", "qty": 3}))
        app.crash_service("inventory")
        app.restart_service("inventory")
        stock = run(env, app.request("inventory", "peek", {"item": "widget"}))
        assert stock["quantity"] == 7

    def test_request_dedup_when_enabled(self, env):
        application = MicroserviceApp(env, dedup_requests=True)
        application.add_service(make_inventory_service())

        def flow():
            first = yield from application.request(
                "inventory", "reserve", {"item": "widget", "qty": 1},
                idempotency_key="req-1",
            )
            again = yield from application.request(
                "inventory", "reserve", {"item": "widget", "qty": 1},
                idempotency_key="req-1",
            )
            stock = yield from application.request(
                "inventory", "peek", {"item": "widget"}
            )
            return first, again, stock

        first, again, stock = run(env, flow())
        assert first == again == {"reserved": 1}
        assert stock["quantity"] == 9  # reserved once, not twice


class TestSagaIntegration:
    def test_saga_over_services_compensates(self, env, app):
        """Reserve stock, fail payment, verify stock is restored."""

        def reserve(ctx_dict):
            result = yield from app.context("orders").call(
                "inventory", "reserve", {"item": "widget", "qty": 5}
            )
            return result

        def unreserve(ctx_dict):
            yield from app.context("orders").call(
                "inventory", "release", {"item": "widget", "qty": 5}
            )

        def pay(ctx_dict):
            yield env.timeout(1)
            raise RuntimeError("payment declined")

        saga = Saga("checkout", [SagaStep("reserve", reserve, unreserve),
                                 SagaStep("pay", pay)])
        outcome = run(env, SagaOrchestrator(env).execute(saga))
        assert outcome.status == "compensated"
        stock = run(env, app.request("inventory", "peek", {"item": "widget"}))
        assert stock["quantity"] == 10


class TestRetryPolicy:
    def test_retries_until_success(self, env):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, jitter=0.0)
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            yield env.timeout(1)
            if attempts["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        result = run(env, policy.run(env, flaky))
        assert result == "ok"
        assert attempts["n"] == 3

    def test_exhausted_reraises(self, env):
        policy = RetryPolicy(max_attempts=2, base_delay=1.0, jitter=0.0)

        def always_fails():
            yield env.timeout(1)
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError, match="permanent"):
            run(env, policy.run(env, always_fails))

    def test_backoff_grows_exponentially(self, env):
        policy = RetryPolicy(max_attempts=4, base_delay=2.0, factor=3.0, jitter=0.0)
        rng = env.stream("x")
        assert policy.delay(1, rng) == 2.0
        assert policy.delay(2, rng) == 6.0
        assert policy.delay(3, rng) == 18.0

    def test_delay_capped(self, env):
        policy = RetryPolicy(base_delay=50.0, factor=10.0, max_delay=60.0, jitter=0.0)
        assert policy.delay(3, env.stream("x")) == 60.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

"""Tests for stateful entities compiled onto the transactional dataflow."""

import pytest

from repro.dataflow import TransactionalDataflow
from repro.dataflow.entities import Entity, EntityError, compile_entities
from repro.net.latency import Latency
from repro.sim import Environment
from repro.storage.object_store import ObjectStore, ObjectStoreServer


class Account(Entity):
    initial_state = {"balance": 0}

    def deposit(self, amount):
        self.balance += amount
        return self.balance

    def withdraw(self, amount):
        if self.balance < amount:
            raise ValueError("insufficient funds")
        self.balance -= amount
        return self.balance

    def get_balance(self):
        return self.balance

    def transfer_to(self, dst, amount):
        """Cross-entity call: atomic debit+credit without explicit txns."""
        self.balance -= amount
        result = yield self.call_entity("Account", dst, "deposit", amount)
        return result


class Counter(Entity):
    initial_state = {"n": 0}

    def bump(self):
        self.n += 1
        return self.n


@pytest.fixture
def env():
    return Environment(seed=231)


@pytest.fixture
def setup(env):
    engine = TransactionalDataflow(
        env, epoch_interval=5.0, checkpoint_every=5,
        checkpoint_store=ObjectStoreServer(env, ObjectStore(),
                                           latency=Latency.constant(2.0)),
    )
    handle = compile_entities(engine, [Account, Counter])
    engine.start()
    return engine, handle


def run(env, fut):
    return env.run_until(fut)


class TestEntities:
    def test_method_call_is_a_transaction(self, env, setup):
        _engine, handle = setup
        result = run(env, handle.invoke(
            "Account", "alice", "deposit", 100,
            touches=[("Account", "alice")],
        ))
        assert result == 100
        assert handle.state_of("Account", "alice") == {"balance": 100}

    def test_initial_state_used_for_fresh_entities(self, env, setup):
        _engine, handle = setup
        assert handle.state_of("Account", "nobody") == {"balance": 0}
        result = run(env, handle.invoke(
            "Account", "x", "get_balance", touches=[("Account", "x")]
        ))
        assert result == 0

    def test_business_exception_aborts_cleanly(self, env, setup):
        _engine, handle = setup
        fut = handle.invoke("Account", "alice", "withdraw", 50,
                            touches=[("Account", "alice")])
        env.run(until=50)
        assert fut.failed
        assert handle.state_of("Account", "alice") == {"balance": 0}

    def test_cross_entity_transfer_is_atomic(self, env, setup):
        _engine, handle = setup
        run(env, handle.invoke("Account", "a", "deposit", 100,
                               touches=[("Account", "a")]))
        result = run(env, handle.invoke(
            "Account", "a", "transfer_to", "b", 30,
            touches=[("Account", "a"), ("Account", "b")],
        ))
        assert result == 30
        assert handle.state_of("Account", "a")["balance"] == 70
        assert handle.state_of("Account", "b")["balance"] == 30

    def test_entity_types_are_namespaced(self, env, setup):
        _engine, handle = setup
        run(env, handle.invoke("Counter", "alice", "bump",
                               touches=[("Counter", "alice")]))
        # Same key, different type: no state bleed.
        assert handle.state_of("Counter", "alice") == {"n": 1}
        assert handle.state_of("Account", "alice") == {"balance": 0}

    def test_serializable_under_concurrency(self, env, setup):
        _engine, handle = setup
        accounts = [f"acct-{i}" for i in range(6)]
        for account in accounts:
            env.process(iter(()))  # noop spacing
            handle.invoke("Account", account, "deposit", 100,
                          touches=[("Account", account)])
        env.run(until=30)
        rng = env.stream("t")
        for _ in range(30):
            src, dst = rng.sample(accounts, 2)
            handle.invoke("Account", src, "transfer_to", dst, 5,
                          touches=[("Account", src), ("Account", dst)])
        env.run(until=3000)
        total = sum(handle.state_of("Account", a)["balance"] for a in accounts)
        assert total == 600

    def test_exactly_once_across_crash(self, env, setup):
        engine, handle = setup
        futures = [
            handle.invoke("Counter", "c", "bump", touches=[("Counter", "c")])
            for _ in range(4)
        ]
        env.run(until=60)
        assert handle.state_of("Counter", "c")["n"] == 4
        engine.crash()
        env.run_until(env.process(engine.recover()))
        env.run(until=200)
        assert handle.state_of("Counter", "c")["n"] == 4  # not 8

    def test_invalid_invocations_rejected(self, env, setup):
        _engine, handle = setup
        with pytest.raises(EntityError):
            handle.invoke("Ghost", "k", "method")
        with pytest.raises(EntityError):
            handle.invoke("Account", "k", "_private")
        with pytest.raises(EntityError):
            handle.invoke("Account", "k", "no_such_method")

    def test_non_entity_class_rejected(self, env):
        engine = TransactionalDataflow(env)

        class Plain:
            pass

        with pytest.raises(EntityError):
            compile_entities(engine, [Plain])

    def test_call_entity_outside_txn_rejected(self):
        account = Account.__new__(Account)
        account._ctx = None
        with pytest.raises(EntityError):
            account.call_entity("Account", "x", "deposit", 1)

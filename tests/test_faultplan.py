"""FaultPlan hardening: build/apply-time validation, bursts, serialization."""

import pytest

from repro.core import FaultEvent, FaultPlan, FaultPlanError
from repro.net import Network
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment(seed=7)


@pytest.fixture
def net(env):
    network = Network(env)
    network.add_node("a")
    network.add_node("b")
    network.add_node("c")
    return network


class TestBuildTimeValidation:
    def test_negative_at_rejected(self):
        with pytest.raises(FaultPlanError, match="finite and >= 0"):
            FaultPlan().crash("a", at=-1.0)

    def test_nan_at_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan().loss(0.5, at=float("nan"))

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(FaultPlanError, match="rate"):
            FaultPlan().loss(1.5, at=0.0)
        with pytest.raises(FaultPlanError, match="rate"):
            FaultPlan().duplication(-0.1, at=0.0)

    def test_empty_node_name_rejected(self):
        with pytest.raises(FaultPlanError, match="non-empty"):
            FaultPlan().crash("", at=1.0)

    def test_partition_overlapping_groups_rejected(self):
        with pytest.raises(FaultPlanError, match="overlap"):
            FaultPlan().partition(["a", "b"], ["b", "c"], at=1.0)

    def test_partition_empty_group_rejected(self):
        with pytest.raises(FaultPlanError, match="non-empty"):
            FaultPlan().partition([], ["b"], at=1.0)

    def test_partition_heal_before_cut_rejected(self):
        with pytest.raises(FaultPlanError, match="heal_at"):
            FaultPlan().partition(["a"], ["b"], at=5.0, heal_at=5.0)

    def test_crash_restart_nonpositive_downtime_rejected(self):
        with pytest.raises(FaultPlanError, match="downtime"):
            FaultPlan().crash_restart("a", at=1.0, downtime=0.0)

    def test_until_must_follow_at(self):
        with pytest.raises(FaultPlanError, match="until"):
            FaultPlan().loss(0.5, at=10.0, until=10.0)

    def test_delay_negative_rejected(self):
        with pytest.raises(FaultPlanError, match="extra_ms"):
            FaultPlan().delay(-5.0, at=0.0)


class TestPlanValidation:
    def test_restart_before_crash_rejected(self):
        plan = FaultPlan().restart("a", at=5.0)
        with pytest.raises(FaultPlanError, match="precedes any crash"):
            plan.validate()

    def test_double_crash_rejected(self):
        plan = FaultPlan().crash("a", at=1.0).crash("a", at=2.0)
        with pytest.raises(FaultPlanError, match="already down"):
            plan.validate()

    def test_crash_restart_crash_again_ok(self):
        plan = (FaultPlan()
                .crash_restart("a", at=1.0, downtime=2.0)
                .crash_restart("a", at=10.0, downtime=2.0))
        plan.validate()  # no exception

    def test_validation_uses_time_order_not_insertion_order(self):
        # restart appended first but scheduled after the crash: valid.
        plan = FaultPlan().restart("a", at=8.0).crash("a", at=2.0)
        plan.validate()

    def test_unknown_node_rejected_with_net(self, net):
        plan = FaultPlan().crash("ghost", at=1.0)
        plan.validate()  # fine without a network
        with pytest.raises(FaultPlanError, match="unknown node 'ghost'"):
            plan.validate(net)

    def test_partition_unknown_node_rejected_with_net(self, net):
        plan = FaultPlan().partition(["a"], ["ghost"], at=1.0)
        with pytest.raises(FaultPlanError, match="unknown node"):
            plan.validate(net)

    def test_apply_validates(self, env, net):
        plan = FaultPlan().restart("a", at=1.0)
        with pytest.raises(FaultPlanError):
            plan.apply(env, net)


class TestAutoRestore:
    def test_loss_burst_restores(self, env, net):
        FaultPlan().loss(0.9, at=10.0, until=20.0).apply(env, net)
        env.run(until=5.0)
        assert net.loss_rate == 0.0
        env.run(until=15.0)
        assert net.loss_rate == 0.9
        env.run(until=25.0)
        assert net.loss_rate == 0.0

    def test_duplication_burst_restores(self, env, net):
        FaultPlan().duplication(0.5, at=1.0, until=2.0).apply(env, net)
        env.run(until=1.5)
        assert net.duplication_rate == 0.5
        env.run(until=3.0)
        assert net.duplication_rate == 0.0

    def test_delay_spike_restores(self, env, net):
        FaultPlan().delay(40.0, at=1.0, until=2.0).apply(env, net)
        env.run(until=1.5)
        assert net.extra_delay == 40.0
        env.run(until=3.0)
        assert net.extra_delay == 0.0

    def test_loss_without_until_persists(self, env, net):
        FaultPlan().loss(0.3, at=1.0).apply(env, net)
        env.run(until=100.0)
        assert net.loss_rate == 0.3


class TestSerialization:
    def _plan(self):
        return (FaultPlan()
                .crash_restart("a", at=5.0, downtime=10.0)
                .partition(["a"], ["b", "c"], at=20.0, heal_at=30.0)
                .loss(0.25, at=40.0, until=45.0)
                .delay(15.0, at=50.0, until=55.0))

    def test_round_trip_is_byte_identical(self):
        text = self._plan().to_json()
        assert FaultPlan.from_json(text).to_json() == text

    def test_round_trip_preserves_events(self):
        plan = FaultPlan.from_json(self._plan().to_json())
        assert plan.events == self._plan().events

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan.from_dict({"events": [{"at": 1.0, "kind": "meteor"}]})

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises(FaultPlanError, match="unknown fault event fields"):
            FaultPlan.from_dict({"events": [{"at": 1.0, "kind": "heal", "zap": 1}]})

    def test_from_dict_validates_plan(self):
        with pytest.raises(FaultPlanError, match="precedes any crash"):
            FaultPlan.from_dict(
                {"events": [{"at": 1.0, "kind": "restart", "target": "a"}]}
            )

    def test_event_round_trip(self):
        event = FaultEvent(at=3.0, kind="loss", rate=0.5, until=9.0)
        assert FaultEvent.from_dict(event.to_dict()) == event

"""Tests for the repro.chaos fuzzing subsystem.

Unit coverage for the budget/nemesis/history/oracle layers, pinned-seed
smoke trials across all four runtimes (the determinism contract), the
broken-config detection + shrink + replay acceptance path, and an opt-in
``chaos``-marked fuzz sweep that stays out of tier-1.
"""

import collections

import pytest

from repro.chaos import (
    ChaosConfig,
    ConservationOracle,
    Episode,
    History,
    Nemesis,
    ReproArtifact,
    RUNTIMES,
    SagaAtomicityOracle,
    SnapshotAuditOracle,
    TransferExactlyOnceOracle,
    compile_plan,
    run_trial,
    shrink,
)
from repro.core.faults import FaultPlanError
from repro.sim import Environment

SMOKE_SEED = 11

Op = collections.namedtuple("Op", "src dst amount")


class TestChaosConfig:
    def test_defaults_valid(self):
        config = ChaosConfig()
        assert config.episodes == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"horizon": 0},
            {"settle": -1},
            {"episodes": -1},
            {"fault_classes": ("crash", "meteor")},
            {"max_concurrent_faults": 0},
            {"min_heal_window": -5},
            {"downtime": (50, 20)},
            {"loss_rate": (-0.1, 0.2)},
            {"partitionable": ("only-one",)},
        ],
    )
    def test_invalid_budgets_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChaosConfig(**kwargs)

    def test_effective_classes_drops_untargetable_kinds(self):
        config = ChaosConfig(crashable=(), partitionable=())
        assert config.effective_classes() == ("loss", "duplication", "delay")
        config = ChaosConfig(crashable=("a",), partitionable=("a", "b"))
        assert config.effective_classes() == (
            "crash", "partition", "loss", "duplication", "delay"
        )
        config = ChaosConfig(
            crashable=("a",), partitionable=("a", "b"), leader_groups=("g0",)
        )
        assert config.effective_classes() == ChaosConfig.__dataclass_fields__[
            "fault_classes"
        ].default

    def test_dict_roundtrip(self):
        config = ChaosConfig(crashable=("x", "y"), episodes=2)
        assert ChaosConfig.from_dict(config.to_dict()) == config


class TestNemesis:
    def _budget(self, **kwargs):
        kwargs.setdefault("crashable", ("a", "b"))
        kwargs.setdefault("partitionable", ("a", "b", "c"))
        return ChaosConfig(**kwargs)

    def test_same_seed_same_schedule(self):
        config = self._budget(episodes=6)
        one = Nemesis(config).generate(Environment(seed=7).stream("nemesis"))
        two = Nemesis(config).generate(Environment(seed=7).stream("nemesis"))
        assert one == two and one  # identical and non-empty

    def test_episodes_respect_budget(self):
        config = self._budget(episodes=6, max_concurrent_faults=1)
        episodes = Nemesis(config).generate(Environment(seed=3).stream("nemesis"))
        assert 0 < len(episodes) <= config.episodes
        for episode in episodes:
            assert 0 <= episode.start and episode.end <= config.horizon
            assert episode.kind in config.effective_classes()
        # max_concurrent_faults=1: no two episodes may overlap at all.
        for i, a in enumerate(episodes):
            for b in episodes[i + 1:]:
                assert not a.overlaps(b)

    def test_same_kind_episodes_serialized_with_heal_window(self):
        config = self._budget(episodes=8, max_concurrent_faults=3)
        episodes = Nemesis(config).generate(Environment(seed=5).stream("nemesis"))
        by_kind: dict = {}
        for episode in episodes:
            by_kind.setdefault(episode.kind, []).append(episode)
        for kind, group in by_kind.items():
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    if kind == "crash" and a.target != b.target:
                        continue
                    assert not a.overlaps(b, gap=config.min_heal_window)

    def test_empty_budget_yields_no_episodes(self):
        config = ChaosConfig(fault_classes=("crash",), crashable=())
        assert Nemesis(config).generate(Environment(seed=1).stream("n")) == []

    def test_episode_dict_roundtrip(self):
        episode = Episode(kind="partition", start=10.0, duration=40.0,
                          group_a=("a",), group_b=("b", "c"))
        assert Episode.from_dict(episode.to_dict()) == episode


class TestCompilePlan:
    def test_event_shapes(self):
        plan = compile_plan([
            Episode(kind="crash", start=10.0, duration=30.0, target="n1"),
            Episode(kind="partition", start=60.0, duration=40.0,
                    group_a=("n1",), group_b=("n2",)),
            Episode(kind="loss", start=120.0, duration=20.0, rate=0.2),
        ])
        kinds = [e.kind for e in plan.events]
        # crash -> crash+restart, partition -> partition+heal, burst -> one
        # event whose restore happens at apply time.
        assert kinds == ["crash", "restart", "partition", "heal", "loss"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            compile_plan([Episode(kind="meteor", start=0.0, duration=1.0)])

    def test_invalid_compiled_plan_rejected(self):
        # Validation runs at compile time, not at apply time.
        with pytest.raises(FaultPlanError):
            compile_plan([Episode(kind="loss", start=5.0, duration=10.0, rate=7.5)])


class TestHistory:
    def test_invoke_complete_pairing(self):
        history = History()
        history.invoke(1.0, "c0", "op-1", "transfer")
        with pytest.raises(ValueError):
            history.invoke(2.0, "c0", "op-1", "transfer")
        history.ok(3.0, "op-1", value=42)
        with pytest.raises(ValueError):
            history.fail(4.0, "op-1")  # already completed
        assert history.ok_ops("transfer") == ["op-1"]

    def test_close_pending_marks_info(self):
        history = History()
        history.invoke(1.0, "c0", "op-1", "transfer")
        history.invoke(2.0, "c1", "op-2", "transfer")
        history.ok(3.0, "op-2")
        assert history.close_pending(10.0) == 1
        assert history.info_ops() == ["op-1"]
        assert history.counts() == {"invoke": 2, "ok": 1, "fail": 0, "info": 1}

    def test_digest_is_content_sensitive(self):
        def build(value):
            history = History()
            history.invoke(1.0, "c0", "op-1", "transfer")
            history.ok(2.0, "op-1", value=value)
            return history

        assert build(10).digest() == build(10).digest()
        assert build(10).digest() != build(11).digest()


class TestOracles:
    def test_conservation(self):
        oracle = ConservationOracle("balance", 200)
        state = [{"id": "a", "balance": 150}, {"id": "b", "balance": 50}]
        assert oracle.check(History(), state) == []
        state[0]["balance"] = 160
        assert len(oracle.check(History(), state)) == 1

    def _history(self, outcomes):
        history = History()
        for op_id, outcome in outcomes.items():
            history.invoke(1.0, "c0", op_id, "transfer")
            getattr(history, outcome)(2.0, op_id)
        return history

    def test_exactly_once_ok_must_apply(self):
        ops = {"t1": Op("a", "b", 10)}
        oracle = TransferExactlyOnceOracle({"a": 100, "b": 100}, ops)
        history = self._history({"t1": "ok"})
        applied = [{"id": "a", "balance": 90}, {"id": "b", "balance": 110}]
        lost = [{"id": "a", "balance": 100}, {"id": "b", "balance": 100}]
        assert oracle.check(history, applied) == []
        assert len(oracle.check(history, lost)) == 1  # acked but lost

    def test_exactly_once_fail_must_not_apply(self):
        ops = {"t1": Op("a", "b", 10)}
        oracle = TransferExactlyOnceOracle({"a": 100, "b": 100}, ops)
        history = self._history({"t1": "fail"})
        applied = [{"id": "a", "balance": 90}, {"id": "b", "balance": 110}]
        assert len(oracle.check(history, applied)) == 1

    def test_exactly_once_info_may_go_either_way(self):
        ops = {"t1": Op("a", "b", 10)}
        oracle = TransferExactlyOnceOracle({"a": 100, "b": 100}, ops)
        history = self._history({"t1": "info"})
        applied = [{"id": "a", "balance": 90}, {"id": "b", "balance": 110}]
        skipped = [{"id": "a", "balance": 100}, {"id": "b", "balance": 100}]
        doubled = [{"id": "a", "balance": 80}, {"id": "b", "balance": 120}]
        assert oracle.check(history, applied) == []
        assert oracle.check(history, skipped) == []
        assert len(oracle.check(history, doubled)) == 1  # info applied twice

    def test_exactly_once_subset_search(self):
        ops = {"t1": Op("a", "b", 10), "t2": Op("b", "c", 7), "t3": Op("c", "a", 3)}
        oracle = TransferExactlyOnceOracle({"a": 100, "b": 100, "c": 100}, ops)
        history = self._history({"t1": "ok", "t2": "info", "t3": "info"})
        # t1 applied, t2 applied, t3 did not: a=90, b=103, c=107.
        state = [{"id": "a", "balance": 90}, {"id": "b", "balance": 103},
                 {"id": "c", "balance": 107}]
        assert oracle.check(history, state) == []

    def test_snapshot_audit(self):
        oracle = SnapshotAuditOracle(1200)
        history = History()
        history.invoke(1.0, "auditor", "audit-001", "audit")
        history.ok(2.0, "audit-001", value=1200)
        history.invoke(3.0, "auditor", "audit-002", "audit")
        history.ok(4.0, "audit-002", value=1190)
        violations = oracle.check(history, None)
        assert len(violations) == 1 and "audit-002" in violations[0].detail

    def test_saga_atomicity_cross_checks_history(self):
        class StubWorkload:
            def invariants(self):
                return []

        oracle = SagaAtomicityOracle(StubWorkload())
        history = History()
        history.invoke(1.0, "c0", "ok-no-row", "checkout")
        history.ok(2.0, "ok-no-row")
        history.invoke(3.0, "c0", "fail-with-row", "checkout")
        history.fail(4.0, "fail-with-row")
        state = {"orders": [{"id": "fail-with-row"}]}
        details = [v.detail for v in oracle.check(history, state)]
        assert len(details) == 2
        assert any("acknowledged checkout has no order row" in d for d in details)
        assert any("failed checkout left an order row" in d for d in details)


class TestTrials:
    """Pinned-seed integration: the acceptance contract of the subsystem."""

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ValueError):
            run_trial("mainframe", 1)

    @pytest.mark.parametrize("runtime", RUNTIMES)
    def test_smoke_clean_and_deterministic(self, runtime):
        first = run_trial(runtime, SMOKE_SEED)
        second = run_trial(runtime, SMOKE_SEED)
        assert first.violations == [], first.summary()
        assert first.plan.events, "nemesis produced an empty schedule"
        assert first.history.counts()["invoke"] > 0
        # Same seed, same build: byte-identical schedule and history.
        assert first.plan_json == second.plan_json
        assert first.history_digest == second.history_digest

    def test_golden_equivalence_fast_path(self):
        # The kernel fast path must not change a chaos trial's observable
        # behavior: same schedule, same history, same verdicts.
        fast = run_trial("actor", SMOKE_SEED, fast_path=True)
        slow = run_trial("actor", SMOKE_SEED, fast_path=False)
        assert fast.plan_json == slow.plan_json
        assert fast.history_digest == slow.history_digest
        assert fast.violations == slow.violations == []

    def test_broken_config_detected_shrunk_and_replayable(self):
        # ActorBank in plain (non-transactional) mode loses money under
        # message-level faults; the detector must catch it, the shrinker
        # must minimize the schedule, and the artifact must replay exactly.
        seed = 1
        result = run_trial("actor", seed, broken=True)
        assert result.violations, "broken actor config went undetected"
        report = shrink("actor", seed, result.episodes, broken=True)
        assert report.final_events <= 3
        assert report.final_events <= report.initial_events
        assert report.result.violations
        artifact = ReproArtifact.from_result(report.result)
        restored = ReproArtifact.from_json(artifact.to_json())
        assert restored == artifact
        replayed = restored.replay()
        assert restored.matches(replayed), replayed.summary()

    def test_artifact_version_gate(self):
        artifact = ReproArtifact(runtime="actor", seed=1, broken=True,
                                 fast_path=True, plan={"events": []})
        bad = artifact.to_json().replace('"version": 1', '"version": 99')
        with pytest.raises(ValueError):
            ReproArtifact.from_json(bad)


@pytest.mark.chaos
class TestFuzzSweep:
    """Long randomized sweep; opt in with ``-m chaos``."""

    @pytest.mark.parametrize("runtime", RUNTIMES)
    def test_correct_configs_survive_many_seeds(self, runtime):
        for seed in range(1, 13):
            result = run_trial(runtime, seed)
            assert result.violations == [], (runtime, seed, result.summary())

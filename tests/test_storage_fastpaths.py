"""Storage-engine fast paths: version-chain GC, group commit, copy elision.

Each fast path has a reference mode (``gc=False`` / ``group_commit=False``
/ ``copy_reads=True``); the golden-equivalence suite proves the modes are
behaviourally identical on full workloads, and these tests pin the local
contracts: GC never collects a version the oldest live snapshot can see,
a crash before the shared group fsync loses the whole group (never an
interior subset), and committed rows are immutable objects shared with
every reader.
"""

import pytest

from repro.db import Database, IsolationLevel, Row
from repro.obs import Tracer
from repro.sim import Environment

SER = IsolationLevel.SERIALIZABLE
SI = IsolationLevel.SNAPSHOT
RC = IsolationLevel.READ_COMMITTED


def run(env, gen):
    return env.run_until(env.process(gen))


def make_db(env, **flags):
    db = Database(env, name="fp", **flags)
    db.create_table("accounts")
    db.load("accounts", [{"id": "alice", "balance": 100},
                         {"id": "bob", "balance": 50}])
    return db


def write_balance(db, key, value):
    def writer():
        txn = db.begin(SER)
        yield from db.put(txn, "accounts", key, {"id": key, "balance": value})
        yield from db.commit(txn)

    return writer()


class TestVersionChainGc:
    def test_hot_key_chain_is_bounded(self):
        env = Environment()
        db = make_db(env, gc_chain_threshold=8)
        for i in range(200):
            run(env, write_balance(db, "alice", i))
        chain = db._tables["accounts"].versions["alice"]
        assert len(chain) <= 9  # threshold + the newly installed version
        assert db.stats.gc_pruned_versions > 150
        assert db.read_latest("accounts", "alice")["balance"] == 199

    def test_reference_mode_keeps_every_version(self):
        env = Environment()
        db = make_db(env, gc=False)
        for i in range(50):
            run(env, write_balance(db, "alice", i))
        chain = db._tables["accounts"].versions["alice"]
        assert len(chain) == 51  # load + 50 updates
        assert db.stats.gc_pruned_versions == 0
        assert db.gc() == 0  # explicit pass is a no-op too

    def test_never_collects_version_visible_to_oldest_snapshot(self):
        """Long-running reader vs. hot writer: the reader's version stays."""
        env = Environment()
        db = make_db(env)
        reader = db.begin(SI)  # snapshot pinned before the write storm

        def observe():
            return (yield from db.get(reader, "accounts", "alice"))

        before = run(env, observe())
        for i in range(100):
            run(env, write_balance(db, "alice", i))
        db.gc()
        assert run(env, observe())["balance"] == before["balance"] == 100
        # The horizon tracked the reader: its version survived every prune.
        assert db.gc_horizon() == reader.begin_seq

        def finish():
            yield from db.commit(reader)

        run(env, finish())
        # With the snapshot gone the chain collapses to the newest version.
        db.gc()
        assert len(db._tables["accounts"].versions["alice"]) == 1

    def test_prepared_txn_pins_the_horizon(self):
        env = Environment()
        db = make_db(env)

        def preparer():
            txn = db.begin(SI)
            yield from db.put(txn, "accounts", "bob", {"id": "bob", "balance": 0})
            yield from db.prepare(txn)
            return txn

        txn = run(env, preparer())
        for i in range(50):
            run(env, write_balance(db, "alice", i))
        db.gc()
        assert db.gc_horizon() == txn.begin_seq  # in-doubt snapshot covered

    def test_live_versions_gauge_matches_heap(self):
        env = Environment()
        db = make_db(env)
        for i in range(60):
            run(env, write_balance(db, "alice" if i % 3 else "bob", i))
        db.gc()
        assert db.stats.live_versions == db.version_count()
        assert db.stats.gc_passes == 1

    def test_gc_pass_emits_span(self):
        env = Environment(tracer=Tracer())
        db = make_db(env)
        db.gc()
        (span,) = env.tracer.find("db.gc")
        assert span.tags["db"] == "fp"


class TestGroupCommit:
    def _contended_commits(self, env, db, n=5):
        def committer(i):
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", f"k{i}", {"id": f"k{i}", "v": i})
            yield from db.commit(txn)

        for i in range(n):
            env.process(committer(i))
        env.run()

    def test_same_instant_commits_share_one_fsync(self):
        env = Environment()
        db = make_db(env)
        before = db.wal.flush_count
        self._contended_commits(env, db, n=5)
        assert db.wal.flush_count - before == 1
        assert db.stats.group_flushes == 1
        assert db.stats.grouped_commits == 5
        assert db.stats.flush_count == db.wal.flush_count

    def test_reference_mode_fsyncs_per_commit(self):
        env = Environment()
        db = make_db(env, group_commit=False)
        before = db.wal.flush_count
        self._contended_commits(env, db, n=5)
        assert db.wal.flush_count - before == 5
        assert db.stats.group_flushes == 0

    def test_group_flush_emits_batch_span(self):
        env = Environment(tracer=Tracer())
        db = make_db(env)
        self._contended_commits(env, db, n=3)
        (span,) = env.tracer.find("db.wal.group_flush")
        assert span.tags["batch"] == 3

    def test_crash_before_group_fsync_loses_whole_group(self):
        env = Environment()
        db = make_db(env)

        def scenario():
            t1 = db.begin(SER)
            yield from db.put(t1, "accounts", "alice", {"id": "alice", "balance": 1})
            t2 = db.begin(SER)
            yield from db.put(t2, "accounts", "bob", {"id": "bob", "balance": 2})
            # commit() never yields, so both land in the same group with no
            # chance for the end-of-instant fsync to slip in between.
            yield from db.commit(t1)
            yield from db.commit(t2)
            # Both commits acknowledged; the shared fsync is still queued
            # for end-of-instant.  Power fails now.
            db.crash()

        run(env, scenario())
        db.recover()
        assert db.read_latest("accounts", "alice")["balance"] == 100
        assert db.read_latest("accounts", "bob")["balance"] == 50

    def test_crash_between_groups_recovers_prefix(self):
        """An earlier group that reached its fsync survives; only the
        trailing un-fsynced group is lost — prefix-consistent, never an
        interior gap."""
        env = Environment()
        db = make_db(env)

        def scenario():
            t1 = db.begin(SER)
            yield from db.put(t1, "accounts", "alice", {"id": "alice", "balance": 1})
            yield from db.commit(t1)
            yield env.timeout(0)  # the instant's group fsync runs
            t2 = db.begin(SER)
            yield from db.put(t2, "accounts", "bob", {"id": "bob", "balance": 2})
            yield from db.commit(t2)
            db.crash()

        run(env, scenario())
        db.recover()
        assert db.read_latest("accounts", "alice")["balance"] == 1  # durable
        assert db.read_latest("accounts", "bob")["balance"] == 50  # lost

    def test_flush_barrier_parks_until_durable(self):
        env = Environment()
        db = make_db(env)

        def scenario():
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 9})
            yield from db.commit(txn)
            commit_lsn = db.wal.last_lsn
            assert db.wal.flushed_lsn < commit_lsn  # acked, not yet durable
            durable_lsn = yield db.flush_barrier()
            assert durable_lsn >= commit_lsn
            assert db.wal.flushed_lsn >= commit_lsn

        run(env, scenario())
        db.crash()
        db.recover()
        assert db.read_latest("accounts", "alice")["balance"] == 9

    def test_flush_barrier_is_shared_and_immediate_when_idle(self):
        env = Environment()
        db = make_db(env)

        def scenario():
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 9})
            yield from db.commit(txn)
            # Every barrier taken in the same instant is the same future —
            # the broker's shared-wakeup pattern.
            assert db.flush_barrier() is db.flush_barrier()
            yield db.flush_barrier()
            # Nothing pending: the barrier resolves immediately.
            assert db.flush_barrier().done

        run(env, scenario())

    def test_crash_resolves_pending_barrier_with_none(self):
        env = Environment()
        db = make_db(env)
        seen = []

        def scenario():
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 9})
            yield from db.commit(txn)
            barrier = db.flush_barrier()
            db.crash()
            seen.append((yield barrier))

        run(env, scenario())
        env.run()
        assert seen == [None]

    def test_prepare_still_fsyncs_synchronously(self):
        """2PC votes must be durable before they reach the coordinator."""
        env = Environment()
        db = make_db(env)

        def scenario():
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 1})
            yield from db.prepare(txn)
            assert db.wal.flushed_lsn == db.wal.last_lsn
            return txn.tid

        tid = run(env, scenario())
        db.crash()
        db.recover()
        assert db.in_doubt() == [tid]


class TestCheckpointTruncate:
    def test_recovery_from_truncated_log(self):
        env = Environment()
        db = make_db(env)
        db.create_index("accounts", "balance")
        for i in range(20):
            run(env, write_balance(db, "alice", i))
        records_before = len(db.wal)
        info = db.checkpoint()
        assert len(db.wal) < records_before
        assert db.wal.read(1) is None  # prefix really gone
        # Tail commits after the checkpoint replay on top of it.
        run(env, write_balance(db, "bob", 7))
        env.run()  # drain the group fsync before pulling the plug
        db.crash()
        db.recover()
        assert db.read_latest("accounts", "alice")["balance"] == 19
        assert db.read_latest("accounts", "bob")["balance"] == 7
        assert info["wal_records_dropped"] > 0

        def by_index():
            txn = db.begin(SER)
            rows = yield from db.lookup(txn, "accounts", "balance", 19)
            yield from db.commit(txn)
            return rows

        assert [r["id"] for r in run(env, by_index())] == ["alice"]

    def test_lsns_keep_increasing_across_truncation(self):
        env = Environment()
        db = make_db(env)
        run(env, write_balance(db, "alice", 1))
        env.run()
        last = db.wal.last_lsn
        db.checkpoint()
        assert db.wal.last_lsn == last + 1  # the checkpoint record itself
        run(env, write_balance(db, "alice", 2))
        env.run()
        assert db.wal.last_lsn > last + 1

    def test_checkpoint_preserves_in_doubt(self):
        env = Environment()
        db = make_db(env)

        def preparer():
            txn = db.begin(SER)
            yield from db.put(txn, "accounts", "alice", {"id": "alice", "balance": 0})
            yield from db.prepare(txn)
            return txn.tid

        tid = run(env, preparer())
        db.checkpoint()
        db.crash()
        db.recover()
        assert db.in_doubt() == [tid]
        db.resolve_in_doubt(tid, commit=True)
        assert db.read_latest("accounts", "alice")["balance"] == 0

    def test_repeated_checkpoints_stay_bounded_and_idempotent(self):
        env = Environment()
        db = make_db(env)
        sizes = []
        for round_no in range(5):
            for i in range(10):
                run(env, write_balance(db, "alice", round_no * 10 + i))
            db.checkpoint()
            sizes.append(len(db.wal))
        assert max(sizes) == min(sizes) == 1  # just the checkpoint record
        db.crash()
        db.recover()
        assert db.read_latest("accounts", "alice")["balance"] == 49
        assert db.read_latest("accounts", "bob")["balance"] == 50


class TestCopyElision:
    def test_readers_share_the_committed_row_object(self):
        env = Environment()
        db = make_db(env)

        def reads():
            txn = db.begin(RC)
            first = yield from db.get(txn, "accounts", "bob")
            txn2 = db.begin(RC)
            second = yield from db.get(txn2, "accounts", "bob")
            yield from db.commit(txn)
            yield from db.commit(txn2)
            return first, second

        first, second = run(env, reads())
        assert first is second
        assert isinstance(first, Row)
        assert first is db.read_latest("accounts", "bob")

    def test_scan_and_lookup_rows_are_immutable(self):
        env = Environment()
        db = make_db(env)
        db.create_index("accounts", "balance")

        def scans():
            txn = db.begin(RC)
            scanned = yield from db.scan(txn, "accounts")
            looked_up = yield from db.lookup(txn, "accounts", "balance", 50)
            yield from db.commit(txn)
            return scanned, looked_up

        scanned, looked_up = run(env, scans())
        for row in scanned + looked_up:
            with pytest.raises(TypeError):
                row["balance"] = -1
            with pytest.raises(TypeError):
                row.update({"balance": -1})
            with pytest.raises(TypeError):
                del row["balance"]

    def test_copy_reads_reference_mode_returns_fresh_dicts(self):
        env = Environment()
        db = make_db(env, copy_reads=True)

        def reads():
            txn = db.begin(RC)
            row = yield from db.get(txn, "accounts", "bob")
            row["balance"] = -1  # plain dict: caller may scribble freely
            yield from db.commit(txn)

        run(env, reads())
        assert db.read_latest("accounts", "bob")["balance"] == 50
        assert type(db.read_latest("accounts", "bob")) is dict

    def test_update_still_copies_before_merging(self):
        env = Environment()
        db = make_db(env)

        def bump():
            txn = db.begin(SER)
            row = yield from db.update(txn, "accounts", "bob", {"balance": 51})
            yield from db.commit(txn)
            return row

        assert run(env, bump())["balance"] == 51
        assert db.read_latest("accounts", "bob")["balance"] == 51

    def test_wal_and_heap_share_one_frozen_row(self):
        env = Environment()
        db = make_db(env)
        run(env, write_balance(db, "alice", 5))
        heap_row = db.read_latest("accounts", "alice")
        wal_rows = [r.payload[3] for r in db.wal.records()
                    if r.kind == "write" and r.payload[2] == "alice"]
        assert any(payload is heap_row for payload in wal_rows)

    def test_rows_copy_cleanly(self):
        row = Row({"id": "x", "balance": 1})
        import copy as copy_mod

        clone = copy_mod.deepcopy(row)
        assert clone == {"id": "x", "balance": 1}
        assert type(clone) is dict  # copies are for mutating
        assert dict(row) == {"id": "x", "balance": 1}

"""Tests for the saga orchestrator: happy path, compensation, stuck sagas."""

import pytest

from repro.sim import Environment
from repro.transactions import Saga, SagaOrchestrator, SagaStep


@pytest.fixture
def env():
    return Environment(seed=12)


def run(env, gen):
    return env.run_until(env.process(gen))


def make_step(env, journal, name, fail=False, compensation_fails=0):
    """A step that appends to a journal; optionally failing."""

    def action(ctx):
        yield env.timeout(1.0)
        if fail:
            raise RuntimeError(f"{name} failed")
        journal.append(("do", name))
        return f"{name}-result"

    remaining_failures = {"count": compensation_fails}

    def compensation(ctx):
        yield env.timeout(1.0)
        if remaining_failures["count"] > 0:
            remaining_failures["count"] -= 1
            raise RuntimeError(f"undo {name} failed")
        journal.append(("undo", name))

    return SagaStep(name, action, compensation)


class TestHappyPath:
    def test_all_steps_run_in_order(self, env):
        journal = []
        saga = Saga("order", [make_step(env, journal, s) for s in ("a", "b", "c")])
        orchestrator = SagaOrchestrator(env)
        outcome = run(env, orchestrator.execute(saga))
        assert outcome.status == "completed"
        assert journal == [("do", "a"), ("do", "b"), ("do", "c")]
        assert outcome.completed_steps == ["a", "b", "c"]

    def test_ctx_carries_results_between_steps(self, env):
        seen = {}

        def first(ctx):
            yield env.timeout(1)
            return "reservation-42"

        def second(ctx):
            yield env.timeout(1)
            seen["from_first"] = ctx["reserve"]
            return None

        saga = Saga("s", [SagaStep("reserve", first), SagaStep("pay", second)])
        run(env, SagaOrchestrator(env).execute(saga))
        assert seen["from_first"] == "reservation-42"

    def test_stats_and_outcomes_recorded(self, env):
        journal = []
        saga = Saga("s", [make_step(env, journal, "only")])
        orchestrator = SagaOrchestrator(env)
        run(env, orchestrator.execute(saga))
        run(env, orchestrator.execute(saga))
        assert orchestrator.stats.started == 2
        assert orchestrator.stats.completed == 2
        assert len(orchestrator.outcomes) == 2

    def test_duration_measured(self, env):
        journal = []
        saga = Saga("s", [make_step(env, journal, "a"), make_step(env, journal, "b")])
        outcome = run(env, SagaOrchestrator(env).execute(saga))
        assert outcome.duration == pytest.approx(2.0)

    def test_empty_saga_rejected(self):
        with pytest.raises(ValueError):
            Saga("empty", [])


class TestCompensation:
    def test_failure_compensates_in_reverse(self, env):
        journal = []
        saga = Saga(
            "order",
            [
                make_step(env, journal, "a"),
                make_step(env, journal, "b"),
                make_step(env, journal, "c", fail=True),
            ],
        )
        orchestrator = SagaOrchestrator(env)
        outcome = run(env, orchestrator.execute(saga))
        assert outcome.status == "compensated"
        assert outcome.failed_step == "c"
        assert "c failed" in outcome.error
        assert journal == [
            ("do", "a"),
            ("do", "b"),
            ("undo", "b"),
            ("undo", "a"),
        ]
        assert orchestrator.stats.compensated == 1

    def test_first_step_failure_needs_no_compensation(self, env):
        journal = []
        saga = Saga("s", [make_step(env, journal, "a", fail=True)])
        outcome = run(env, SagaOrchestrator(env).execute(saga))
        assert outcome.status == "compensated"
        assert journal == []

    def test_steps_without_compensation_skipped(self, env):
        journal = []

        def read_only(ctx):
            yield env.timeout(1)
            journal.append(("do", "read"))

        saga = Saga(
            "s",
            [
                SagaStep("read", read_only),  # no compensation
                make_step(env, journal, "b", fail=True),
            ],
        )
        outcome = run(env, SagaOrchestrator(env).execute(saga))
        assert outcome.status == "compensated"
        assert journal == [("do", "read")]

    def test_flaky_compensation_retried(self, env):
        journal = []
        saga = Saga(
            "s",
            [
                make_step(env, journal, "a", compensation_fails=2),
                make_step(env, journal, "b", fail=True),
            ],
        )
        orchestrator = SagaOrchestrator(env, compensation_retries=3)
        outcome = run(env, orchestrator.execute(saga))
        assert outcome.status == "compensated"
        assert ("undo", "a") in journal

    def test_hopeless_compensation_marks_saga_stuck(self, env):
        journal = []
        saga = Saga(
            "s",
            [
                make_step(env, journal, "a", compensation_fails=99),
                make_step(env, journal, "b", fail=True),
            ],
        )
        orchestrator = SagaOrchestrator(env, compensation_retries=2)
        outcome = run(env, orchestrator.execute(saga))
        assert outcome.status == "stuck"
        assert orchestrator.stats.stuck == 1
        assert ("undo", "a") not in journal  # inconsistency left behind!


class TestIsolationWindow:
    def test_intermediate_state_is_observable(self, env):
        """Sagas have no isolation: mid-saga state leaks to observers."""
        state = {"stock": 10, "paid": 0}
        observations = []

        def reserve(ctx):
            yield env.timeout(1)
            state["stock"] -= 1

        def unreserve(ctx):
            yield env.timeout(1)
            state["stock"] += 1

        def pay(ctx):
            yield env.timeout(10)  # slow payment provider
            raise RuntimeError("card declined")

        saga = Saga("checkout", [SagaStep("reserve", reserve, unreserve), SagaStep("pay", pay)])

        def observer():
            yield env.timeout(5)  # mid-saga
            observations.append(dict(state))

        env.process(SagaOrchestrator(env).execute(saga))
        env.process(observer())
        env.run()
        assert observations[0]["stock"] == 9  # saw the uncommitted reservation
        assert state["stock"] == 10  # eventually restored

"""Tests for idempotency stores, deduplicators, and the transactional outbox."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, IsolationLevel
from repro.messaging import Broker, Deduplicator, IdempotencyStore
from repro.messaging.outbox import OutboxRelay, TransactionalOutbox
from repro.sim import Environment


class TestIdempotencyStore:
    def test_first_lookup_misses(self):
        store = IdempotencyStore()
        assert store.lookup("k") is None
        assert store.misses == 1

    def test_record_then_lookup(self):
        store = IdempotencyStore()
        store.record("k", {"result": 1})
        entry = store.lookup("k")
        assert entry.response == {"result": 1}
        assert store.hits == 1

    def test_first_writer_wins(self):
        store = IdempotencyStore()
        store.record("k", "first")
        store.record("k", "second")
        assert store.lookup("k").response == "first"

    def test_check_and_record(self):
        store = IdempotencyStore()
        is_first, response = store.check_and_record("k", "a")
        assert is_first and response == "a"
        is_first, response = store.check_and_record("k", "b")
        assert not is_first and response == "a"

    def test_clock_stamps_entries(self):
        clock = {"t": 42.0}
        store = IdempotencyStore(clock=lambda: clock["t"])
        store.record("k", None)
        assert store.lookup("k").recorded_at == 42.0


class TestDeduplicator:
    def test_first_sighting_not_duplicate(self):
        dedup = Deduplicator()
        assert not dedup.is_duplicate("m1")
        assert dedup.accepted == 1

    def test_second_sighting_is_duplicate(self):
        dedup = Deduplicator()
        dedup.is_duplicate("m1")
        assert dedup.is_duplicate("m1")
        assert dedup.duplicates == 1

    def test_window_eviction_lets_old_duplicates_through(self):
        dedup = Deduplicator(window=2)
        dedup.is_duplicate("a")
        dedup.is_duplicate("b")
        dedup.is_duplicate("c")  # evicts a
        assert not dedup.is_duplicate("a")  # slipped through!

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            Deduplicator(window=0)

    @settings(max_examples=50, deadline=None)
    @given(ids=st.lists(st.integers(0, 20), max_size=100))
    def test_accepted_plus_duplicates_equals_total(self, ids):
        dedup = Deduplicator(window=1000)
        for message_id in ids:
            dedup.is_duplicate(message_id)
        assert dedup.accepted + dedup.duplicates == len(ids)
        assert dedup.accepted == len(set(ids))


@pytest.fixture
def env():
    return Environment(seed=8)


def run(env, gen):
    return env.run_until(env.process(gen))


class TestTransactionalOutbox:
    @pytest.fixture
    def setup(self, env):
        db = Database(env)
        db.create_table("orders", primary_key="id")
        outbox = TransactionalOutbox(db)
        broker = Broker(env)
        broker.create_topic("order-events")
        return db, outbox, broker

    def _place_order(self, env, db, outbox, commit=True):
        def flow():
            txn = db.begin(IsolationLevel.SERIALIZABLE)
            yield from db.insert(txn, "orders", {"id": "o1", "total": 99})
            yield from outbox.enqueue(txn, "order-events", "o1", {"type": "placed"})
            if commit:
                yield from db.commit(txn)
            else:
                db.abort(txn)

        run(env, flow())

    def test_committed_event_becomes_pending(self, env, setup):
        db, outbox, broker = setup
        self._place_order(env, db, outbox, commit=True)
        assert len(outbox.pending()) == 1

    def test_aborted_event_never_pending(self, env, setup):
        """The whole point: abort removes both state change and event."""
        db, outbox, broker = setup
        self._place_order(env, db, outbox, commit=False)
        assert outbox.pending() == []
        assert db.read_latest("orders", "o1") is None

    def test_relay_publishes_and_marks(self, env, setup):
        db, outbox, broker = setup
        self._place_order(env, db, outbox)
        relay = OutboxRelay(env, outbox, broker, poll_interval=1.0)
        run(env, relay.sweep())
        assert outbox.pending() == []
        consumer = broker.consumer("g", "order-events")

        def consume():
            batch = yield from consumer.poll()
            return batch

        batch = run(env, consume())
        assert batch[0].value["value"] == {"type": "placed"}

    def test_relay_crash_causes_republish(self, env, setup):
        """At-least-once relay: crash between publish and mark -> duplicate."""
        db, outbox, broker = setup
        self._place_order(env, db, outbox)
        relay = OutboxRelay(env, outbox, broker, crash_after_publish_prob=1.0)
        run(env, relay.sweep())  # publishes, "crashes" before marking
        assert len(outbox.pending()) == 1  # still pending
        relay.crash_after_publish_prob = 0.0
        run(env, relay.sweep())  # publishes again, marks
        assert outbox.pending() == []
        assert relay.published == 2
        assert relay.republished == 1

    def test_consumer_dedup_absorbs_relay_duplicates(self, env, setup):
        """Outbox + consumer dedup = exactly-once effect."""
        db, outbox, broker = setup
        self._place_order(env, db, outbox)
        relay = OutboxRelay(env, outbox, broker, crash_after_publish_prob=1.0)
        run(env, relay.sweep())
        relay.crash_after_publish_prob = 0.0
        run(env, relay.sweep())

        dedup = Deduplicator()
        consumer = broker.consumer("g", "order-events")
        effects = []

        def consume():
            batch = yield from consumer.poll(max_records=10)
            for record in batch:
                if not dedup.is_duplicate(record.value["event_id"]):
                    effects.append(record.value["value"])
            yield from consumer.commit()

        run(env, consume())
        assert effects == [{"type": "placed"}]  # exactly once
        assert dedup.duplicates == 1

    def test_relay_loop_runs_periodically(self, env, setup):
        db, outbox, broker = setup
        relay = OutboxRelay(env, outbox, broker, poll_interval=5.0)
        env.process(relay.run())
        self._place_order(env, db, outbox)
        env.schedule(20.0, relay.stop)
        env.run(until=30.0)
        assert outbox.pending() == []

"""Integration tests: the banking app on every runtime."""

import pytest

from repro.apps import (
    ActorBank,
    DataflowBank,
    DbBank,
    FaasBank,
    StatefunBank,
    TxnDataflowBank,
)
from repro.db import IsolationLevel
from repro.sim import Environment
from repro.workloads import TransferWorkload


@pytest.fixture
def env():
    return Environment(seed=91)


@pytest.fixture
def workload():
    return TransferWorkload(num_accounts=10, initial_balance=100, amount=5, theta=0.3)


def run(env, gen):
    return env.run_until(env.process(gen))


def total_of(bank):
    return sum(row["balance"] for row in bank.balances())


class TestDbBank:
    def test_sequential_transfers_conserve(self, env, workload):
        bank = DbBank(env, workload)
        ops = list(workload.operations(env.stream("ops"), 20))

        def flow():
            for op in ops:
                yield from bank.execute(op)

        run(env, flow())
        assert total_of(bank) == workload.expected_total
        assert len(bank.ledger.duplicates()) == 0

    def test_concurrent_transfers_conserve(self, env, workload):
        bank = DbBank(env, workload)
        ops = list(workload.operations(env.stream("ops"), 30))
        for op in ops:
            env.process(bank.execute(op))
        env.run()
        assert total_of(bank) == workload.expected_total

    def test_audit_sees_consistent_total(self, env, workload):
        bank = DbBank(env, workload)
        ops = list(workload.operations(env.stream("ops"), 20))
        audits = []

        def auditor():
            for _ in range(5):
                yield env.timeout(7.0)
                total = yield from bank.audit()
                audits.append(total)

        for op in ops:
            env.process(bank.execute(op))
        env.process(auditor())
        env.run()
        assert all(total == workload.expected_total for total in audits)

    def test_read_committed_loses_updates_under_contention(self, env):
        """The same app at a weaker isolation level breaks conservation."""
        from repro.workloads.transfers import TransferOp

        workload = TransferWorkload(num_accounts=40, initial_balance=1000, amount=5)
        bank = DbBank(env, workload, isolation=IsolationLevel.READ_COMMITTED)
        # Unique sources, one hot destination: racing credits get lost.
        ops = [
            TransferOp(f"op-{i}", workload.account(i + 1), workload.account(0), 5)
            for i in range(30)
        ]
        for op in ops:
            env.process(bank.execute(op))
        env.run()
        assert total_of(bank) < workload.expected_total


class TestActorBank:
    def test_plain_mode_transfers(self, env, workload):
        bank = ActorBank(env, workload, mode="plain")
        run(env, bank.setup())
        ops = list(workload.operations(env.stream("ops"), 15))

        def flow():
            for op in ops:
                yield from bank.execute(op)

        run(env, flow())
        assert total_of(bank) == workload.expected_total

    def test_transaction_mode_transfers(self, env, workload):
        bank = ActorBank(env, workload, mode="transaction")
        run(env, bank.setup())
        ops = list(workload.operations(env.stream("ops"), 10))

        def flow():
            for op in ops:
                yield from bank.execute(op)

        run(env, flow())
        assert total_of(bank) == workload.expected_total

    def test_transaction_mode_slower_than_plain(self, env, workload):
        plain = ActorBank(env, workload, mode="plain")
        run(env, plain.setup())
        txn = ActorBank(env, workload, mode="transaction")
        run(env, txn.setup())
        ops = list(workload.operations(env.stream("ops"), 10))

        def timed(bank):
            start = env.now
            for op in ops:
                yield from bank.execute(op)
            return env.now - start

        plain_time = run(env, timed(plain))
        txn_time = run(env, timed(txn))
        assert txn_time > 1.5 * plain_time

    def test_plain_mode_partial_transfer_on_crash_window(self, env, workload):
        """Crash between withdraw and deposit: money vanishes (§4.2)."""
        bank = ActorBank(env, workload, mode="plain")
        run(env, bank.setup())
        op = next(iter(workload.operations(env.stream("ops"), 1)))

        def interrupted_transfer():
            yield from bank.runtime.ref("_AccountActor", op.src).call(
                "withdraw", op.amount, retries=2
            )
            # the caller dies here; deposit is never issued

        run(env, interrupted_transfer())
        assert total_of(bank) == workload.expected_total - op.amount

    def test_invalid_mode(self, env, workload):
        with pytest.raises(ValueError):
            ActorBank(env, workload, mode="quantum")


class TestFaasBank:
    @pytest.mark.parametrize("mode", ["entities", "workflow"])
    def test_strong_modes_conserve_under_concurrency(self, env, workload, mode):
        bank = FaasBank(env, workload, mode=mode)
        run(env, bank.setup())
        ops = list(workload.operations(env.stream("ops"), 30))
        for op in ops:
            env.process(bank.execute(op))
        env.run()
        assert total_of(bank) == workload.expected_total

    def test_kv_mode_loses_updates_under_concurrency(self, env):
        from repro.workloads.transfers import TransferOp

        workload = TransferWorkload(num_accounts=40, initial_balance=1000, amount=5)
        bank = FaasBank(env, workload, mode="kv")
        run(env, bank.setup())
        # Unique sources, one hot destination: racing credits get lost.
        ops = [
            TransferOp(f"op-{i}", workload.account(i + 1), workload.account(0), 5)
            for i in range(30)
        ]
        for op in ops:
            env.process(bank.execute(op))
        env.run()
        assert total_of(bank) < workload.expected_total

    def test_workflow_mode_dedups_by_op_id(self, env, workload):
        bank = FaasBank(env, workload, mode="workflow")
        run(env, bank.setup())
        op = next(iter(workload.operations(env.stream("ops"), 1)))

        def flow():
            yield from bank.execute(op)
            yield from bank.execute(op)  # client retry of the same op

        run(env, flow())
        assert total_of(bank) == workload.expected_total
        src_balance = next(
            row["balance"] for row in bank.balances() if row["id"] == op.src
        )
        assert src_balance == workload.initial_balance - op.amount  # once!


class TestDataflowBank:
    def test_transfers_conserve_at_quiescence(self, env, workload):
        bank = DataflowBank(env, workload)
        bank.start()
        ops = list(workload.operations(env.stream("ops"), 20))
        for op in ops:
            bank.submit(op)
        env.run(until=500)
        assert total_of(bank) == workload.expected_total
        assert len(bank.completed_ops()) == 20

    def test_no_isolation_mid_flight(self, env, workload):
        """Audits during the run observe inconsistent totals."""
        bank = DataflowBank(env, workload)
        bank.start()
        ops = list(workload.operations(env.stream("ops"), 50))
        drifts = []

        def auditor():
            for _ in range(40):
                yield env.timeout(1.0)
                drifts.append(bank.audit_total() - workload.expected_total)

        for op in ops:
            bank.submit(op)
        env.process(auditor())
        env.run(until=600)
        assert any(drift != 0 for drift in drifts)  # in-flight money seen
        assert total_of(bank) == workload.expected_total  # but converges


class TestStatefunBank:
    def test_transfers_conserve_at_quiescence(self, env, workload):
        bank = StatefunBank(env, workload)
        bank.start()
        ops = list(workload.operations(env.stream("ops"), 20))
        for op in ops:
            bank.submit(op)
        env.run(until=1000)
        assert total_of(bank) == workload.expected_total
        assert len(bank.completed_ops()) == 20

    def test_exactly_once_across_crash(self, env, workload):
        bank = StatefunBank(env, workload, checkpoint_interval=30.0)
        bank.start()
        ops = list(workload.operations(env.stream("ops"), 15))

        def feeder():
            for op in ops:
                yield env.timeout(8.0)
                bank.submit(op)

        env.process(feeder())
        env.run(until=70)
        bank.runtime.crash()
        run(env, bank.runtime.recover())
        env.run(until=2000)
        assert total_of(bank) == workload.expected_total
        completed = bank.completed_ops()
        assert len(completed) == len(set(completed))  # no duplicates
        assert sorted(completed) == sorted(op.op_id for op in ops)


class TestTxnDataflowBank:
    def test_transfers_conserve(self, env, workload):
        bank = TxnDataflowBank(env, workload)
        bank.start()
        run(env, bank.setup())
        ops = list(workload.operations(env.stream("ops"), 25))
        for op in ops:
            env.process(bank.execute(op))
        env.run(until=2000)
        assert total_of(bank) == workload.expected_total

    def test_audit_is_serializable(self, env, workload):
        """Unlike the plain dataflow, audits always see the exact total."""
        bank = TxnDataflowBank(env, workload)
        bank.start()
        run(env, bank.setup())
        ops = list(workload.operations(env.stream("ops"), 30))
        audits = []

        def auditor():
            for _ in range(6):
                yield env.timeout(15.0)
                total = yield from bank.audit()
                audits.append(total)

        for op in ops:
            env.process(bank.execute(op))
        env.process(auditor())
        env.run(until=2000)
        assert audits
        assert all(total == workload.expected_total for total in audits)

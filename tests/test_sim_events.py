"""Unit tests for the future primitive and combinators."""

import pytest

from repro.sim import Environment, Future, all_of, any_of
from repro.sim.events import FutureAlreadyResolved


@pytest.fixture
def env():
    return Environment(seed=1)


class TestFuture:
    def test_starts_pending(self, env):
        fut = env.future("f")
        assert not fut.done
        assert not fut.failed

    def test_succeed_sets_result(self, env):
        fut = env.future()
        fut.succeed(42)
        assert fut.done
        assert fut.result() == 42

    def test_fail_sets_exception(self, env):
        fut = env.future()
        fut.fail(ValueError("boom"))
        assert fut.done
        assert fut.failed
        with pytest.raises(ValueError, match="boom"):
            fut.result()

    def test_result_before_done_raises(self, env):
        fut = env.future()
        with pytest.raises(RuntimeError):
            fut.result()

    def test_double_resolve_raises(self, env):
        fut = env.future()
        fut.succeed(1)
        with pytest.raises(FutureAlreadyResolved):
            fut.succeed(2)
        with pytest.raises(FutureAlreadyResolved):
            fut.fail(ValueError())

    def test_try_succeed_is_idempotent(self, env):
        fut = env.future()
        assert fut.try_succeed(1)
        assert not fut.try_succeed(2)
        assert fut.result() == 1

    def test_try_fail_is_idempotent(self, env):
        fut = env.future()
        assert fut.try_fail(ValueError())
        assert not fut.try_fail(KeyError())
        assert isinstance(fut.exception(), ValueError)

    def test_fail_requires_exception(self, env):
        fut = env.future()
        with pytest.raises(TypeError):
            fut.fail("not an exception")

    def test_callback_fires_through_event_queue(self, env):
        fut = env.future()
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        fut.succeed("x")
        assert seen == []  # not synchronous
        env.run()
        assert seen == ["x"]

    def test_callback_on_already_done_future(self, env):
        fut = env.future()
        fut.succeed(7)
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        env.run()
        assert seen == [7]

    def test_remove_done_callback(self, env):
        fut = env.future()
        seen = []
        cb = lambda f: seen.append(1)  # noqa: E731
        fut.add_done_callback(cb)
        fut.remove_done_callback(cb)
        fut.succeed(None)
        env.run()
        assert seen == []


class TestCombinators:
    def test_all_of_collects_in_order(self, env):
        futs = [env.timeout(3, "c"), env.timeout(1, "a"), env.timeout(2, "b")]
        combined = all_of(env, futs)
        env.run()
        assert combined.result() == ["c", "a", "b"]

    def test_all_of_empty(self, env):
        combined = all_of(env, [])
        env.run()
        assert combined.result() == []

    def test_all_of_fails_fast(self, env):
        good = env.timeout(10, "late")
        bad = env.future()
        combined = all_of(env, [good, bad])
        bad.fail(RuntimeError("dead"))
        env.run(until=5)
        assert combined.failed
        assert isinstance(combined.exception(), RuntimeError)

    def test_any_of_returns_winner_index(self, env):
        slow = env.timeout(10, "slow")
        fast = env.timeout(2, "fast")
        combined = any_of(env, [slow, fast])
        env.run()
        assert combined.result() == (1, "fast")

    def test_any_of_empty_raises(self, env):
        with pytest.raises(ValueError):
            any_of(env, [])

    def test_any_of_propagates_first_failure(self, env):
        bad = env.future()
        slow = env.timeout(10)
        combined = any_of(env, [bad, slow])
        bad.fail(KeyError("k"))
        env.run(until=1)
        assert combined.failed


class TestCombinatorCleanup:
    def test_any_of_unsubscribes_from_losers(self, env):
        winner = env.timeout(1)
        loser = env.future("long-lived")
        any_of(env, [winner, loser])
        assert len(loser._callbacks) == 1
        env.run()
        # The loser must not retain the combinator's dead closure.
        assert loser._callbacks == []

    def test_any_of_losers_do_not_accumulate_across_polls(self, env):
        # A poller racing a timeout against the same long-lived future on
        # every poll (broker consumers) must not grow its callback list.
        data = env.future("data")
        for _ in range(10):
            any_of(env, [env.timeout(1), data])
            env.run()
        assert data._callbacks == []

    def test_all_of_drops_future_refs_after_failure(self, env):
        pending = env.future("pending")
        bad = env.future("bad")
        combined = all_of(env, [pending, bad])
        bad.fail(RuntimeError("dead"))
        env.run(until=1)
        assert combined.failed
        assert pending._callbacks == []

    def test_any_of_still_resolves_once_after_cleanup(self, env):
        first = env.timeout(1, "a")
        second = env.timeout(2, "b")
        combined = any_of(env, [first, second])
        env.run()
        assert combined.result() == (0, "a")
        assert second._callbacks == []

"""Tests for the Styx-like deterministic transactional dataflow."""

import pytest

from repro.dataflow import TransactionalDataflow, TxnAbort
from repro.net.latency import Latency
from repro.sim import Environment
from repro.storage.object_store import ObjectStore, ObjectStoreServer


@pytest.fixture
def env():
    return Environment(seed=61)


def make_engine(env, **kwargs):
    kwargs.setdefault("epoch_interval", 5.0)
    kwargs.setdefault("checkpoint_every", 3)
    kwargs.setdefault(
        "checkpoint_store",
        ObjectStoreServer(env, ObjectStore(), latency=Latency.constant(2.0)),
    )
    engine = TransactionalDataflow(env, **kwargs)

    @engine.function("deposit")
    def deposit(ctx, key, amount):
        balance = ctx.get(key, 0)
        ctx.put(key, balance + amount)
        return balance + amount
        yield  # pragma: no cover

    @engine.function("transfer")
    def transfer(ctx, key, payload):
        # key = source account; payload names the destination.
        src_balance = ctx.get(key, 0)
        if src_balance < payload["amount"]:
            raise TxnAbort("insufficient funds")
        ctx.put(key, src_balance - payload["amount"])
        result = yield from ctx.call("deposit", payload["dst"], payload["amount"])
        return result

    @engine.function("read")
    def read(ctx, key, _payload):
        return ctx.get(key, 0)
        yield  # pragma: no cover

    return engine


def run(env, gen):
    return env.run_until(env.process(gen))


class TestBasics:
    def test_submit_and_commit(self, env):
        engine = make_engine(env)
        engine.start()
        fut = engine.submit("deposit", "a", 100, keys=["a"])
        env.run(until=50)
        assert fut.result() == 100
        assert engine.state_of("a") == 100

    def test_results_released_at_epoch_commit_not_before(self, env):
        engine = make_engine(env, epoch_interval=20.0)
        engine.start()
        fut = engine.submit("deposit", "a", 1, keys=["a"])
        env.run(until=10)
        assert not fut.done  # executed-or-not, nothing visible pre-epoch
        env.run(until=50)
        assert fut.done

    def test_unknown_function_rejected(self, env):
        engine = make_engine(env)
        with pytest.raises(KeyError):
            engine.submit("nope", "k")

    def test_duplicate_registration_rejected(self, env):
        engine = make_engine(env)
        with pytest.raises(ValueError):
            engine.register("deposit", lambda ctx, k, p: iter(()))

    def test_double_start_rejected(self, env):
        engine = make_engine(env)
        engine.start()
        with pytest.raises(RuntimeError):
            engine.start()


class TestTransactions:
    def test_cross_key_transfer_atomic(self, env):
        engine = make_engine(env)
        engine.start()
        engine.submit("deposit", "a", 100, keys=["a"])
        env.run(until=20)
        fut = engine.submit("transfer", "a", {"dst": "b", "amount": 30}, keys=["a", "b"])
        env.run(until=50)
        assert fut.result() == 30
        assert engine.state_of("a") == 70
        assert engine.state_of("b") == 30

    def test_abort_rolls_back_everything(self, env):
        engine = make_engine(env)
        engine.start()
        engine.submit("deposit", "a", 10, keys=["a"])
        env.run(until=20)
        fut = engine.submit(
            "transfer", "a", {"dst": "b", "amount": 999}, keys=["a", "b"]
        )
        env.run(until=50)
        assert fut.failed
        assert isinstance(fut.exception(), TxnAbort)
        assert engine.state_of("a") == 10
        assert engine.state_of("b") is None
        assert engine.stats.aborted == 1

    def test_conservation_under_many_concurrent_transfers(self, env):
        engine = make_engine(env, num_partitions=4)
        engine.start()
        accounts = [f"acct-{i}" for i in range(10)]
        for account in accounts:
            engine.submit("deposit", account, 100, keys=[account])
        env.run(until=20)
        rng = env.stream("test")
        futures = []
        for _ in range(50):
            src, dst = rng.sample(accounts, 2)
            futures.append(
                engine.submit(
                    "transfer", src, {"dst": dst, "amount": 10}, keys=[src, dst]
                )
            )
        env.run(until=400)
        assert all(f.done for f in futures)
        total = sum(engine.state_of(a) or 0 for a in accounts)
        assert total == 1000  # serializable: money conserved exactly

    def test_deterministic_order_equals_tid_order(self, env):
        """Conflicting txns apply in submission (TID) order."""
        engine = make_engine(env, epoch_interval=5.0)

        @engine.function("append")
        def append(ctx, key, value):
            log = ctx.get(key, [])
            ctx.put(key, log + [value])
            return None
            yield  # pragma: no cover

        engine.start()
        for i in range(5):
            engine.submit("append", "log", i, keys=["log"])
        env.run(until=100)
        assert engine.state_of("log") == [0, 1, 2, 3, 4]

    def test_non_conflicting_txns_share_waves(self, env):
        engine = make_engine(env)
        engine.start()
        for i in range(8):
            engine.submit("deposit", f"k{i}", 1, keys=[f"k{i}"])
        env.run(until=50)
        # 8 disjoint txns in one epoch -> one wave, not eight.
        assert engine.stats.waves <= 2
        assert engine.stats.committed == 8

    def test_undeclared_keys_serialize(self, env):
        engine = make_engine(env)
        engine.start()
        engine.submit("deposit", "a", 1, keys=["a"])
        engine.submit("deposit", "b", 1)  # undeclared: solo group
        engine.submit("deposit", "c", 1, keys=["c"])
        env.run(until=50)
        assert engine.stats.committed == 3
        assert engine.stats.waves >= 3


class TestExactlyOnceRecovery:
    def test_crash_recover_replays_to_identical_state(self, env):
        engine = make_engine(env, epoch_interval=5.0, checkpoint_every=2)
        engine.start()
        for i in range(10):
            env.schedule(
                8.0 * i, engine.submit, "deposit", f"k{i % 3}", 10, [f"k{i % 3}"]
            )
        env.run(until=150)
        state_before = engine.all_state()
        assert engine.stats.checkpoints >= 1
        engine.crash()
        run(env, engine.recover())
        env.run(until=200)
        assert engine.all_state() == state_before
        assert engine.stats.recoveries == 1

    def test_unreleased_futures_resolve_after_recovery(self, env):
        engine = make_engine(env, epoch_interval=50.0)
        engine.start()
        fut = engine.submit("deposit", "a", 5, keys=["a"])
        env.run(until=10)  # crash before the first epoch commit
        engine.crash()
        assert not fut.done
        run(env, engine.recover())
        env.run(until=20)
        assert fut.done
        assert fut.result() == 5
        assert engine.state_of("a") == 5

    def test_replay_does_not_double_apply(self, env):
        engine = make_engine(env, epoch_interval=5.0, checkpoint_every=100)
        engine.start()
        engine.submit("deposit", "a", 10, keys=["a"])
        env.run(until=50)  # committed, but never checkpointed
        assert engine.state_of("a") == 10
        engine.crash()
        run(env, engine.recover())
        env.run(until=100)
        assert engine.state_of("a") == 10  # exactly once, not 20

    def test_recovery_without_checkpoint_replays_full_log(self, env):
        engine = make_engine(env, epoch_interval=5.0, checkpoint_every=1000)
        engine.start()
        for i in range(5):
            engine.submit("deposit", "k", 1, keys=["k"])
        env.run(until=50)
        engine.crash()
        run(env, engine.recover())
        assert engine.state_of("k") == 5
        assert engine.stats.replayed == 5

    def test_submit_during_downtime_applies_once(self, env):
        # A submit while the engine is down lands in the durable input log
        # *and* the volatile pending queue; recovery replays the log, so the
        # pending copy must be dropped or the effect applies twice.
        engine = make_engine(env, epoch_interval=5.0, checkpoint_every=1000)
        engine.start()
        engine.submit("deposit", "a", 10, keys=["a"])
        env.run(until=50)
        engine.crash()
        fut = engine.submit("deposit", "a", 10, keys=["a"])  # during downtime
        run(env, engine.recover())
        env.run(until=100)
        assert fut.done and fut.result() == 20
        assert engine.state_of("a") == 20  # exactly once, not 30

    def test_recovered_engine_never_reissues_committed_tids(self, env):
        # A recovered instance whose env lost the tid counter must seed it
        # past the snapshot's committed_tids, or the exactly-once dedup
        # would swallow the release of a fresh transaction.
        engine = make_engine(env, epoch_interval=5.0, checkpoint_every=1)
        engine.start()
        engine.submit("deposit", "a", 10, keys=["a"])
        env.run(until=50)
        committed_before = set(engine._committed_tids)
        assert committed_before
        engine.crash()
        # Simulate a fresh-process recovery: the counter state is gone.
        env._counters.pop("dataflow-tid", None)
        run(env, engine.recover())
        fut = engine.submit("deposit", "b", 7, keys=["b"])
        env.run(until=100)
        assert fut.done and fut.result() == 7
        assert engine.state_of("b") == 7
        new_tid = max(engine._committed_tids)
        assert new_tid > max(committed_before)


class TestCosts:
    def test_cross_partition_calls_counted_and_charged(self, env):
        engine = make_engine(env, num_partitions=4)
        engine.start()
        # Find two keys on different partitions.
        keys = [f"k{i}" for i in range(20)]
        src = keys[0]
        dst = next(k for k in keys if engine._partition(k) != engine._partition(src))
        engine.submit("deposit", src, 100, keys=[src])
        env.run(until=20)
        engine.submit("transfer", src, {"dst": dst, "amount": 5}, keys=[src, dst])
        env.run(until=60)
        assert engine.stats.cross_partition_calls == 1

    def test_epoch_batching_amortizes_commit(self, env):
        """Many txns per epoch: commits (epochs) far fewer than txns."""
        engine = make_engine(env, epoch_interval=20.0)
        engine.start()
        for i in range(40):
            engine.submit("deposit", f"k{i}", 1, keys=[f"k{i}"])
        env.run(until=100)
        assert engine.stats.committed == 40
        assert engine.stats.epochs <= 3

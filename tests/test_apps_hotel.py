"""Integration tests for the hotel reservation app (DeathStar-style)."""

import pytest

from repro.apps import HotelApp
from repro.sim import Environment
from repro.workloads.hotel import HotelWorkload, ReserveOp, SearchOp


@pytest.fixture
def env():
    return Environment(seed=171)


@pytest.fixture
def workload():
    return HotelWorkload(num_hotels=8, num_cities=2, capacity_per_hotel=3)


@pytest.fixture
def app(env, workload):
    return HotelApp(env, workload)


def run(env, gen):
    return env.run_until(env.process(gen))


def check(workload, state):
    violations = []
    for invariant in workload.invariants():
        violations.extend(invariant.check(state))
    return violations


class TestSearch:
    def test_search_returns_city_hotels(self, env, workload, app):
        op = SearchOp(op_id="s1", city="city-0")

        def flow():
            yield from app.execute(op)
            result = yield from app.app.request(
                "frontend", "search", {"city": "city-0"}, idempotency_key="s2"
            )
            return result

        hotels = run(env, flow())
        assert hotels
        assert all(workload.city_of(int(h.split("-")[1])) == "city-0"
                   for h in hotels)


class TestReservations:
    def test_reserve_decrements_capacity(self, env, workload, app):
        op = ReserveOp(op_id="r1", hotel="hotel-000", customer="c1", nights=2)
        run(env, app.execute(op))
        state = app.final_state()
        hotel = next(h for h in state["hotels"] if h["id"] == "hotel-000")
        assert hotel["available"] == 2
        assert len(state["reservations"]) == 1
        assert check(workload, state) == []

    def test_overbooking_rejected(self, env, workload, app):
        outcomes = []

        def one(i):
            op = ReserveOp(op_id=f"r{i}", hotel="hotel-000",
                           customer=f"c{i}", nights=1)
            try:
                yield from app.execute(op)
                outcomes.append("ok")
            except Exception:
                outcomes.append("rejected")

        for i in range(6):  # capacity is 3
            env.process(one(i))
        env.run()
        assert outcomes.count("ok") == 3
        assert outcomes.count("rejected") == 3
        state = app.final_state()
        assert check(workload, state) == []
        hotel = next(h for h in state["hotels"] if h["id"] == "hotel-000")
        assert hotel["available"] == 0

    def test_cancel_restores_capacity(self, env, workload, app):
        op = ReserveOp(op_id="r1", hotel="hotel-001", customer="c1", nights=1)
        run(env, app.execute(op))

        def do_cancel():
            result = yield from app.app.context("frontend").call(
                "reservation", "cancel", {"reservation_id": "r1"},
                idempotency_key="cancel-r1",
            )
            return result

        assert run(env, do_cancel()) is True
        state = app.final_state()
        hotel = next(h for h in state["hotels"] if h["id"] == "hotel-001")
        assert hotel["available"] == workload.capacity_per_hotel
        assert check(workload, state) == []

    def test_duplicate_booking_request_is_idempotent(self, env, workload, app):
        op = ReserveOp(op_id="r1", hotel="hotel-002", customer="c1", nights=1)

        def flow():
            yield from app.execute(op)
            yield from app.execute(op)  # client retry

        run(env, flow())
        state = app.final_state()
        assert len(state["reservations"]) == 1
        assert check(workload, state) == []

    def test_mixed_workload_keeps_invariants(self, env, workload, app):
        ops = list(workload.operations(env.stream("ops"), 60))

        def one(op):
            try:
                yield from app.execute(op)
            except Exception:
                pass

        for op in ops:
            env.process(one(op))
        env.run()
        assert check(workload, app.final_state()) == []

    def test_reservation_service_crash_recovers(self, env, workload, app):
        op1 = ReserveOp(op_id="r1", hotel="hotel-003", customer="c1", nights=1)
        run(env, app.execute(op1))
        app.app.crash_service("reservation")
        app.app.restart_service("reservation")
        op2 = ReserveOp(op_id="r2", hotel="hotel-003", customer="c2", nights=1)
        run(env, app.execute(op2))
        state = app.final_state()
        hotel = next(h for h in state["hotels"] if h["id"] == "hotel-003")
        assert hotel["available"] == workload.capacity_per_hotel - 2
        assert check(workload, state) == []

"""Tests for invariants, the effect ledger, and the deterministic sequencer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transactions import (
    ConservationInvariant,
    EffectLedger,
    NonNegativeInvariant,
    PredicateInvariant,
    Sequencer,
)
from repro.transactions.sequencer import partition_conflicts, partition_queues


class TestInvariants:
    def test_conservation_holds(self):
        inv = ConservationInvariant("balance", 300)
        state = [{"balance": 100}, {"balance": 200}]
        assert inv.check(state) == []

    def test_conservation_violated_reports_drift(self):
        inv = ConservationInvariant("balance", 300)
        violations = inv.check([{"balance": 100}, {"balance": 150}])
        assert len(violations) == 1
        assert "-50" in violations[0].detail

    def test_non_negative(self):
        inv = NonNegativeInvariant("stock")
        state = [{"id": "a", "stock": 3}, {"id": "b", "stock": -2}]
        violations = inv.check(state)
        assert len(violations) == 1
        assert "'b'" in violations[0].detail

    def test_predicate_invariant(self):
        inv = PredicateInvariant("even", lambda s: s % 2 == 0, "state is odd")
        assert inv.check(4) == []
        assert inv.check(3)[0].detail == "state is odd"


class TestEffectLedger:
    def test_clean_run(self):
        ledger = EffectLedger()
        for op in ("a", "b"):
            ledger.acknowledge(op)
            ledger.apply(op)
        report = ledger.reconcile()
        assert report.clean
        assert report.summary() == "clean"

    def test_lost_effect_detected(self):
        ledger = EffectLedger()
        ledger.acknowledge("op1")  # told the client it worked, never applied
        report = ledger.reconcile()
        assert report.lost_effects == 1
        assert ledger.lost() == ["op1"]
        assert "lost" in report.summary()

    def test_duplicate_effect_detected(self):
        ledger = EffectLedger()
        ledger.acknowledge("op1")
        ledger.apply("op1")
        ledger.apply("op1")  # replayed without dedup
        report = ledger.reconcile()
        assert report.duplicate_effects == 1
        assert ledger.duplicates() == ["op1"]

    def test_unacknowledged_apply_is_not_an_anomaly(self):
        ledger = EffectLedger()
        ledger.apply("op1")  # applied, but the client saw a timeout
        report = ledger.reconcile()
        assert report.clean
        assert report.unacknowledged_applied == 1

    def test_reconcile_with_invariants(self):
        ledger = EffectLedger()
        report = ledger.reconcile(
            invariants=[ConservationInvariant("balance", 100)],
            state=[{"balance": 90}],
        )
        assert not report.clean
        assert report.total_anomalies == 1

    @settings(max_examples=50, deadline=None)
    @given(
        acked=st.sets(st.integers(0, 30)),
        applies=st.lists(st.integers(0, 30), max_size=100),
    )
    def test_ledger_accounting_is_exact(self, acked, applies):
        ledger = EffectLedger()
        for op in acked:
            ledger.acknowledge(op)
        for op in applies:
            ledger.apply(op)
        applied_set = set(applies)
        assert set(ledger.lost()) == acked - applied_set
        expected_dupes = {op for op in applied_set if applies.count(op) > 1}
        assert set(ledger.duplicates()) == expected_dupes
        assert set(ledger.unacknowledged()) == applied_set - acked


class TestSequencer:
    def test_tids_are_gap_free_and_ordered(self):
        seq = Sequencer()
        txns = [seq.submit(f"payload-{i}") for i in range(5)]
        assert [t.tid for t in txns] == [1, 2, 3, 4, 5]

    def test_epoch_cut(self):
        seq = Sequencer()
        seq.submit("a")
        seq.submit("b")
        batch = seq.cut_epoch()
        assert [t.payload for t in batch] == ["a", "b"]
        assert seq.current_epoch == 1
        assert seq.pending_count == 0
        later = seq.submit("c")
        assert later.epoch == 1

    def test_epoch_full(self):
        seq = Sequencer(epoch_size=2)
        seq.submit("a")
        assert not seq.epoch_full()
        seq.submit("b")
        assert seq.epoch_full()

    def test_invalid_epoch_size(self):
        with pytest.raises(ValueError):
            Sequencer(epoch_size=0)


class TestPartitionConflicts:
    def _mk_batch(self, key_sets):
        seq = Sequencer()
        return [seq.submit(frozenset(keys)) for keys in key_sets]

    def test_disjoint_txns_share_a_wave(self):
        batch = self._mk_batch([{"a"}, {"b"}, {"c"}])
        waves = partition_conflicts(batch, keys_of=set)
        assert len(waves) == 1
        assert len(waves[0]) == 3

    def test_conflicting_txns_split_into_ordered_waves(self):
        batch = self._mk_batch([{"a"}, {"a"}, {"a"}])
        waves = partition_conflicts(batch, keys_of=set)
        assert [len(w) for w in waves] == [1, 1, 1]
        tids = [w[0].tid for w in waves]
        assert tids == sorted(tids)

    def test_mixed_case(self):
        batch = self._mk_batch([{"a"}, {"b"}, {"a", "c"}, {"d"}])
        waves = partition_conflicts(batch, keys_of=set)
        # txn3 conflicts with txn1 -> wave 1; txn2, txn4 fit in wave 0.
        assert len(waves) == 2
        assert {t.tid for t in waves[0]} == {1, 2, 4}
        assert {t.tid for t in waves[1]} == {3}

    @settings(max_examples=60, deadline=None)
    @given(
        key_sets=st.lists(
            st.sets(st.integers(0, 8), min_size=1, max_size=3), max_size=30
        )
    )
    def test_waves_preserve_conflict_order_and_are_conflict_free(self, key_sets):
        """Property: serial-equivalence conditions of deterministic locking."""
        batch = self._mk_batch(key_sets)
        waves = partition_conflicts(batch, keys_of=set)
        # 1. Every txn appears exactly once.
        flat = [t for wave in waves for t in wave]
        assert sorted(t.tid for t in flat) == [t.tid for t in batch]
        # 2. No intra-wave conflicts.
        for wave in waves:
            seen = set()
            for txn in wave:
                assert not (seen & txn.payload)
                seen |= txn.payload
        # 3. Conflicting txns appear in TID order across waves.
        wave_index = {t.tid: i for i, wave in enumerate(waves) for t in wave}
        for i, first in enumerate(batch):
            for second in batch[i + 1:]:
                if first.payload & second.payload:
                    assert wave_index[first.tid] < wave_index[second.tid]


class TestPartitionQueues:
    """The planner-facing sibling of partition_conflicts (queue view)."""

    def _mk_batch(self, key_sets):
        seq = Sequencer()
        return [seq.submit(frozenset(keys)) for keys in key_sets]

    def test_empty_epoch_yields_no_queues(self):
        assert partition_queues([], keys_of=set, shard_of=lambda k: 0) == {}
        assert partition_conflicts([], keys_of=set) == []

    def test_single_hot_key_fills_one_queue_in_tid_order(self):
        batch = self._mk_batch([{"hot"}] * 5)
        queues = partition_queues(batch, keys_of=set,
                                  shard_of=lambda k: hash(k) % 4)
        (queue,) = queues.values()
        assert [t.tid for t in queue] == [t.tid for t in batch]
        # ... and the wave view degenerates to fully serial.
        assert len(partition_conflicts(batch, keys_of=set)) == len(batch)

    def test_cross_shard_txn_lands_in_every_owning_queue_exactly_once(self):
        shard_of = lambda key: {"a": 0, "b": 1, "c": 2}[key]
        batch = self._mk_batch([{"a", "b"}, {"c"}, {"a", "b", "c"}])
        queues = partition_queues(batch, keys_of=set, shard_of=shard_of)
        for shard in (0, 1):
            assert [t.tid for t in queues[shard]] == [1, 3]
        assert [t.tid for t in queues[2]] == [2, 3]

    def test_queue_keys_are_sorted_shards(self):
        batch = self._mk_batch([{"b"}, {"a"}])
        queues = partition_queues(
            batch, keys_of=set, shard_of=lambda key: {"a": 0, "b": 7}[key]
        )
        assert list(queues) == [0, 7]

    @settings(max_examples=40, deadline=None)
    @given(
        key_sets=st.lists(
            st.sets(st.integers(0, 12), min_size=1, max_size=4), max_size=25
        ),
        num_shards=st.integers(1, 5),
    )
    def test_queues_cover_batch_and_preserve_tid_order(self, key_sets, num_shards):
        batch = self._mk_batch(key_sets)
        shard_of = lambda key: key % num_shards
        queues = partition_queues(batch, keys_of=set, shard_of=shard_of)
        for shard, queue in queues.items():
            tids = [t.tid for t in queue]
            # TID (total) order within every queue, no duplicates.
            assert tids == sorted(tids)
            assert len(tids) == len(set(tids))
            # Only owners: every queued txn has a key on this shard.
            for txn in queue:
                assert any(shard_of(k) == shard for k in txn.payload)
        # Every txn appears in exactly the queues of its owning shards.
        for txn in batch:
            owners = {shard_of(k) for k in txn.payload}
            queued = {s for s, q in queues.items() if txn in q}
            assert queued == owners

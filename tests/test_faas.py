"""Tests for the FaaS runtime: platform, shared state, entities, workflows."""

import pytest

from repro.faas import (
    DurableEntities,
    EntityError,
    FaasPlatform,
    FunctionError,
    SharedKv,
    TransactionalWorkflows,
    WorkflowAborted,
)
from repro.net.latency import Latency
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment(seed=41)


def run(env, gen):
    return env.run_until(env.process(gen))


def make_platform(env, **kwargs):
    kwargs.setdefault("cold_start", Latency.constant(100.0))
    kwargs.setdefault("warm_dispatch", Latency.constant(1.0))
    platform = FaasPlatform(env, **kwargs)

    @platform.function("double")
    def double(ctx, payload):
        yield ctx.env.timeout(1.0)
        return payload * 2

    @platform.function("compose")
    def compose(ctx, payload):
        once = yield from ctx.call("double", payload)
        twice = yield from ctx.call("double", once)
        return twice

    @platform.function("put_get")
    def put_get(ctx, payload):
        yield from ctx.kv_put(payload["key"], payload["value"])
        value = yield from ctx.kv_get(payload["key"])
        return value

    return platform


class TestPlatform:
    def test_invoke_returns_result(self, env):
        platform = make_platform(env)
        assert run(env, platform.invoke("double", 21)) == 42

    def test_unknown_function(self, env):
        platform = make_platform(env)
        with pytest.raises(FunctionError):
            run(env, platform.invoke("nope"))

    def test_duplicate_registration(self, env):
        platform = make_platform(env)
        with pytest.raises(ValueError):
            platform.register("double", lambda ctx, p: iter(()))

    def test_first_call_cold_second_warm(self, env):
        platform = make_platform(env)

        def flow():
            start = env.now
            yield from platform.invoke("double", 1)
            cold_latency = env.now - start
            start = env.now
            yield from platform.invoke("double", 1)
            warm_latency = env.now - start
            return cold_latency, warm_latency

        cold, warm = run(env, flow())
        assert cold == pytest.approx(101.0)
        assert warm == pytest.approx(2.0)
        assert platform.stats.cold_starts == 1
        assert platform.stats.warm_starts == 1

    def test_keep_alive_expiry_forces_cold_start(self, env):
        platform = make_platform(env, keep_alive=50.0)

        def flow():
            yield from platform.invoke("double", 1)
            yield env.timeout(200.0)  # container expired
            yield from platform.invoke("double", 1)

        run(env, flow())
        assert platform.stats.cold_starts == 2

    def test_concurrent_invocations_get_separate_containers(self, env):
        platform = make_platform(env)

        def caller():
            yield from platform.invoke("double", 1)

        env.process(caller())
        env.process(caller())
        env.run()
        assert platform.stats.containers_created == 2

    def test_function_composition(self, env):
        platform = make_platform(env)
        assert run(env, platform.invoke("compose", 3)) == 12

    def test_cold_fraction(self, env):
        platform = make_platform(env)

        def flow():
            for _ in range(4):
                yield from platform.invoke("double", 1)

        run(env, flow())
        assert platform.stats.cold_fraction == pytest.approx(0.25)


class TestSharedKv:
    def test_remote_get_put(self, env):
        kv = SharedKv(env, rtt=Latency.constant(2.0))

        def flow():
            yield from kv.put("k", "v")
            value = yield from kv.get("k")
            return value, env.now

        value, elapsed = run(env, flow())
        assert value == "v"
        assert elapsed == pytest.approx(4.0)  # two round trips

    def test_cached_get_skips_round_trip_on_hit(self, env):
        kv = SharedKv(env, rtt=Latency.constant(2.0))

        def flow():
            yield from kv.cached_put("w1", "k", "v")
            start = env.now
            value = yield from kv.cached_get("w1", "k")
            return value, env.now - start

        value, hit_cost = run(env, flow())
        assert value == "v"
        assert hit_cost == 0.0
        assert kv.cached_reads == 1

    def test_cached_read_can_be_stale_across_workers(self, env):
        """The staleness trade-off of §3.4's look-aside caches."""
        kv = SharedKv(env, rtt=Latency.constant(2.0))

        def flow():
            yield from kv.cached_get("w1", "k", None)  # populate w1's cache
            yield from kv.cached_put("w2", "k", "new")  # w2 writes through
            stale = yield from kv.cached_get("w1", "k")
            kv.invalidate("k")
            fresh = yield from kv.cached_get("w1", "k")
            return stale, fresh

        stale, fresh = run(env, flow())
        assert stale is None  # w1 still sees its stale cache entry
        assert fresh == "new"

    def test_platform_cached_mode_uses_cache(self, env):
        platform = make_platform(env, cached_state=True)

        def flow():
            value = yield from platform.invoke(
                "put_get", {"key": "x", "value": 9}
            )
            return value

        assert run(env, flow()) == 9
        assert platform.kv.cached_reads >= 1

    def test_cas_through_service(self, env):
        from repro.storage.kv import CasConflict

        kv = SharedKv(env, rtt=Latency.constant(1.0))

        def flow():
            v1 = yield from kv.put("k", 1)
            yield from kv.compare_and_set("k", 2, v1)
            try:
                yield from kv.compare_and_set("k", 3, v1)
            except CasConflict:
                return "conflict"

        assert run(env, flow()) == "conflict"


def setup_entities(env):
    entities = DurableEntities(env, rtt=Latency.constant(1.0))
    entities.define_operation("deposit", lambda state, amount: state.__setitem__(
        "balance", state.get("balance", 0) + amount) or state["balance"])
    entities.define_operation("get", lambda state, _arg: state.get("balance", 0))

    def withdraw(state, amount):
        balance = state.get("balance", 0)
        if balance < amount:
            raise ValueError("insufficient")
        state["balance"] = balance - amount
        return state["balance"]

    entities.define_operation("withdraw", withdraw)
    return entities


class TestDurableEntities:
    def test_signal_applies_operation(self, env):
        entities = setup_entities(env)
        assert run(env, entities.signal("acct:a", "deposit", 50)) == 50
        assert entities.state_of("acct:a") == {"balance": 50}

    def test_unknown_operation(self, env):
        entities = setup_entities(env)
        with pytest.raises(EntityError):
            run(env, entities.signal("acct:a", "nope"))

    def test_operations_serialize_per_entity(self, env):
        entities = setup_entities(env)
        results = []

        def signaller():
            value = yield from entities.signal("acct:a", "deposit", 10)
            results.append(value)

        env.process(signaller())
        env.process(signaller())
        env.run()
        assert sorted(results) == [10, 20]  # never both 10

    def test_exactly_once_by_operation_id(self, env):
        entities = setup_entities(env)

        def flow():
            first = yield from entities.signal(
                "acct:a", "deposit", 10, operation_id="op-1"
            )
            dup = yield from entities.signal(
                "acct:a", "deposit", 10, operation_id="op-1"
            )
            return first, dup

        first, dup = run(env, flow())
        assert first == dup == 10
        assert entities.state_of("acct:a")["balance"] == 10
        assert entities.stats.deduplicated == 1

    def test_critical_section_gives_multi_entity_isolation(self, env):
        entities = setup_entities(env)
        run(env, entities.signal("acct:a", "deposit", 100))
        observed = []

        def transfer():
            cs = entities.critical_section(["acct:a", "acct:b"])
            yield from cs.enter()
            try:
                yield from cs.signal("acct:a", "withdraw", 40)
                yield env.timeout(20)  # long critical section
                yield from cs.signal("acct:b", "deposit", 40)
            finally:
                cs.exit()

        def reader():
            yield env.timeout(5)  # mid-transfer
            a = yield from entities.signal("acct:a", "get")
            b = yield from entities.signal("acct:b", "get")
            observed.append(a + b)

        env.process(transfer())
        env.process(reader())
        env.run()
        assert observed == [100]  # reader blocked until transfer finished

    def test_without_critical_section_partial_state_leaks(self, env):
        """No lock, no isolation: the §4.2 caveat made visible."""
        entities = setup_entities(env)
        run(env, entities.signal("acct:a", "deposit", 100))
        observed = []

        def transfer():
            yield from entities.signal("acct:a", "withdraw", 40)
            yield env.timeout(20)
            yield from entities.signal("acct:b", "deposit", 40)

        def reader():
            yield env.timeout(5)
            a = yield from entities.signal("acct:a", "get")
            b = yield from entities.signal("acct:b", "get")
            observed.append(a + b)

        env.process(transfer())
        env.process(reader())
        env.run()
        assert observed == [60]  # money "missing" mid-flight

    def test_critical_section_protocol_enforced(self, env):
        entities = setup_entities(env)
        cs = entities.critical_section(["acct:a"])
        with pytest.raises(EntityError):
            cs.exit()

        def flow():
            yield from cs.enter()
            try:
                yield from cs.signal("acct:zzz", "get")
            finally:
                cs.exit()

        with pytest.raises(EntityError):
            run(env, flow())


class TestTransactionalWorkflows:
    def make_engine(self, env):
        engine = TransactionalWorkflows(
            env, kv=SharedKv(env, rtt=Latency.constant(1.0))
        )

        def transfer(ctx, payload):
            src = yield from ctx.read(payload["src"], 0)
            dst = yield from ctx.read(payload["dst"], 0)
            ctx.write(payload["src"], src - payload["amount"])
            ctx.write(payload["dst"], dst + payload["amount"])
            return {"src": src - payload["amount"], "dst": dst + payload["amount"]}

        engine.register("transfer", transfer)
        return engine

    def test_workflow_commits(self, env):
        engine = self.make_engine(env)

        def flow():
            yield from engine.kv.put("a", 100)
            result = yield from engine.run(
                "transfer", {"src": "a", "dst": "b", "amount": 30}
            )
            return result

        assert run(env, flow()) == {"src": 70, "dst": 30}
        assert engine.kv.store.get("a") == 70
        assert engine.kv.store.get("b") == 30

    def test_conflicting_workflows_serialize(self, env):
        engine = self.make_engine(env)

        def flow():
            yield from engine.kv.put("a", 100)

        run(env, flow())
        for _ in range(4):
            env.process(engine.run("transfer", {"src": "a", "dst": "b", "amount": 10}))
        env.run()
        assert engine.kv.store.get("a") == 60
        assert engine.kv.store.get("b") == 40
        assert engine.stats.conflicts > 0  # OCC had to retry

    def test_workflow_id_dedup(self, env):
        engine = self.make_engine(env)

        def flow():
            yield from engine.kv.put("a", 100)
            first = yield from engine.run(
                "transfer", {"src": "a", "dst": "b", "amount": 30},
                workflow_id="wf-1",
            )
            dup = yield from engine.run(
                "transfer", {"src": "a", "dst": "b", "amount": 30},
                workflow_id="wf-1",
            )
            return first, dup

        first, dup = run(env, flow())
        assert first == dup
        assert engine.kv.store.get("a") == 70  # applied once
        assert engine.stats.deduplicated == 1

    def test_retries_exhausted_raises(self, env):
        engine = TransactionalWorkflows(
            env, kv=SharedKv(env, rtt=Latency.constant(1.0)), max_retries=2
        )

        def hostile(ctx, payload):
            # Force a conflict by bumping the key mid-flight every time.
            value = yield from ctx.read("k", 0)
            engine.kv.store.put("k", value + 1)  # out-of-band write
            ctx.write("k", value + 100)
            return value

        engine.register("hostile", hostile)
        with pytest.raises(WorkflowAborted):
            run(env, engine.run("hostile"))
        assert engine.stats.exhausted == 1

    def test_unknown_workflow(self, env):
        engine = self.make_engine(env)
        with pytest.raises(KeyError):
            run(env, engine.run("nope"))


class TestConcurrencyLimits:
    def test_throttled_beyond_limit(self, env):
        from repro.faas.platform import Throttled

        platform = make_platform(env)

        @platform.function("slow", concurrency_limit=2)
        def slow(ctx, payload):
            yield ctx.env.timeout(50.0)
            return payload

        outcomes = []

        def caller(i):
            try:
                yield from platform.invoke("slow", i)
                outcomes.append("ok")
            except Throttled:
                outcomes.append("throttled")

        for i in range(5):
            env.process(caller(i))
        env.run()
        assert outcomes.count("throttled") == 3
        assert outcomes.count("ok") == 2
        assert platform.stats.throttled == 3

    def test_limit_frees_after_completion(self, env):
        platform = make_platform(env)

        @platform.function("limited", concurrency_limit=1)
        def limited(ctx, payload):
            yield ctx.env.timeout(5.0)
            return payload

        def flow():
            first = yield from platform.invoke("limited", 1)
            second = yield from platform.invoke("limited", 2)  # sequential: fine
            return first, second

        assert run(env, flow()) == (1, 2)
        assert platform.stats.throttled == 0

    def test_invalid_limit(self, env):
        platform = make_platform(env)
        with pytest.raises(ValueError):
            platform.register("bad", lambda c, p: iter(()), concurrency_limit=0)

"""Tests for Cloudburst-style causal state in the FaaS platform (§4.2)."""

import pytest

from repro.faas import FaasPlatform
from repro.net.latency import Latency
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment(seed=221)


def run(env, gen):
    return env.run_until(env.process(gen))


def make_platform(env, causal):
    platform = FaasPlatform(
        env,
        num_workers=3,
        causal_state=causal,
        cached_state=False,
        replication_delay=20.0,
        cold_start=Latency.constant(1.0),
        warm_dispatch=Latency.constant(0.5),
    )

    @platform.function("writer")
    def writer(ctx, payload):
        yield from ctx.kv_put(payload["key"], payload["value"])
        # Compose: the reader runs in another container (maybe worker).
        result = yield from ctx.call("reader", {"key": payload["key"]})
        return result

    @platform.function("reader")
    def reader(ctx, payload):
        value = yield from ctx.kv_get(payload["key"])
        return value

    return platform


class TestCausalFaas:
    def test_read_your_writes_across_composition(self, env):
        """The callee sees the caller's write despite replication lag."""
        platform = make_platform(env, causal=True)
        result = run(env, platform.invoke("writer", {"key": "k", "value": "v1"}))
        assert result == "v1"

    def test_many_compositions_never_stale(self, env):
        platform = make_platform(env, causal=True)
        results = []

        def one(i):
            value = yield from platform.invoke(
                "writer", {"key": f"k{i % 3}", "value": f"v{i}"}
            )
            results.append((i, value))

        def driver():
            for i in range(12):
                yield env.timeout(3.0)
                env.process(one(i))

        env.process(driver())
        env.run(until=2000)
        assert len(results) == 12
        assert all(value == f"v{i}" for i, value in results)

    def test_sessions_are_isolated_between_invocations(self, env):
        """A fresh invocation without causal past may read older state,
        but a session never goes backwards within itself."""
        platform = make_platform(env, causal=True)

        def flow():
            yield from platform.invoke("writer", {"key": "k", "value": "first"})
            # A brand-new session from a different client: monotonic for
            # itself, and since the write committed at some replica, the
            # read may need to wait but never errors.
            value = yield from platform.invoke("reader", {"key": "k"})
            return value

        value = run(env, flow())
        assert value in ("first", None)  # fresh session has no obligation

    def test_causal_and_cached_are_mutually_exclusive(self, env):
        with pytest.raises(ValueError):
            FaasPlatform(env, cached_state=True, causal_state=True)

    def test_plain_mode_unaffected(self, env):
        platform = make_platform(env, causal=False)
        result = run(env, platform.invoke("writer", {"key": "k", "value": "v"}))
        assert result == "v"  # single shared store: trivially consistent

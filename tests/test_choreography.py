"""Tests for choreographed sagas over the broker."""

import pytest

from repro.messaging import Broker
from repro.sim import Environment
from repro.transactions.choreography import ChoreographyMonitor, Reactor


@pytest.fixture
def env():
    return Environment(seed=131)


@pytest.fixture
def broker(env):
    b = Broker(env)
    for topic in ("orders", "stock-reserved", "payments", "completed",
                  "compensations", "compensated"):
        b.create_topic(topic)
    return b


def build_checkout_choreography(env, broker, state, fail_payment_for=()):
    """orders -> stock -> payment -> completed, with compensation events."""

    def stock_reaction(event):
        yield env.timeout(1.0)
        state["stock"] -= event["qty"]
        return [("stock-reserved", event["saga_id"],
                 {"qty": event["qty"]})]

    def payment_reaction(event):
        yield env.timeout(1.0)
        if event["saga_id"] in fail_payment_for:
            # Emit a compensation event instead of failing silently.
            return [("compensations", event["saga_id"], {"qty": event["qty"]})]
        state["charged"] += 1
        return [("completed", event["saga_id"], {})]

    def compensation_reaction(event):
        yield env.timeout(1.0)
        state["stock"] += event["qty"]
        return [("compensated", event["saga_id"], {})]

    reactors = [
        Reactor(env, broker, "stock-svc", "orders", stock_reaction),
        Reactor(env, broker, "payment-svc", "stock-reserved", payment_reaction),
        Reactor(env, broker, "stock-compensator", "compensations",
                compensation_reaction),
    ]
    for reactor in reactors:
        reactor.start()
    return reactors


def place_order(env, broker, saga_id, qty=1):
    def publish():
        yield from broker.publish(
            "orders", saga_id,
            {"saga_id": saga_id, "event_id": f"{saga_id}/order", "qty": qty},
        )

    env.process(publish())


class TestChoreography:
    def test_happy_path_flows_through_services(self, env, broker):
        state = {"stock": 10, "charged": 0}
        build_checkout_choreography(env, broker, state)
        monitor = ChoreographyMonitor(env, broker, "completed", "compensated")
        place_order(env, broker, "order-1", qty=2)
        env.run(until=100)
        assert state["stock"] == 8
        assert state["charged"] == 1
        assert monitor.outcome_of("order-1") == "completed"

    def test_failure_triggers_compensation_event(self, env, broker):
        state = {"stock": 10, "charged": 0}
        build_checkout_choreography(env, broker, state,
                                    fail_payment_for={"order-2"})
        monitor = ChoreographyMonitor(env, broker, "completed", "compensated")
        place_order(env, broker, "order-2", qty=3)
        env.run(until=100)
        assert state["stock"] == 10  # reserved then released
        assert state["charged"] == 0
        assert monitor.outcome_of("order-2") == "compensated"

    def test_many_orders_interleave(self, env, broker):
        state = {"stock": 100, "charged": 0}
        build_checkout_choreography(env, broker, state,
                                    fail_payment_for={"o-3", "o-7"})
        monitor = ChoreographyMonitor(env, broker, "completed", "compensated")
        for i in range(10):
            place_order(env, broker, f"o-{i}", qty=1)
        env.run(until=500)
        assert state["charged"] == 8
        assert state["stock"] == 100 - 8
        assert sum(1 for i in range(10)
                   if monitor.outcome_of(f"o-{i}") == "completed") == 8

    def test_reactor_restart_redelivers_but_dedups(self, env, broker):
        """Crash a reactor before commit: the replacement dedups redelivery."""
        state = {"stock": 10, "charged": 0}

        def stock_reaction(event):
            yield env.timeout(1.0)
            state["stock"] -= event["qty"]
            return []

        reactor = Reactor(env, broker, "stock-svc", "orders", stock_reaction)
        # Manually drive one poll WITHOUT committing (simulates crash).
        consumer = broker.consumer("stock-svc", "orders")
        place_order(env, broker, "order-x", qty=2)

        def first_incarnation():
            batch = yield from consumer.poll()
            for record in batch:
                yield from reactor._handle(record)
            # crash here: no commit

        env.run_until(env.process(first_incarnation()))
        assert state["stock"] == 8
        # Replacement incarnation shares the reactor's (durable) dedup.
        reactor.start()
        env.run(until=200)
        assert state["stock"] == 8  # redelivered event deduplicated

    def test_poisoned_event_does_not_kill_reactor(self, env, broker):
        state = {"stock": 10, "charged": 0}

        def reaction(event):
            yield env.timeout(1.0)
            if event.get("poison"):
                raise RuntimeError("bad event")
            state["charged"] += 1
            return []

        reactor = Reactor(env, broker, "svc", "orders", reaction)
        reactor.start()

        def publish():
            yield from broker.publish("orders", "a", {"event_id": "e1", "poison": True})
            yield from broker.publish("orders", "b", {"event_id": "e2"})

        env.process(publish())
        env.run(until=100)
        assert reactor.stats.failed == 1
        assert state["charged"] == 1

    def test_double_start_rejected(self, env, broker):
        reactor = Reactor(env, broker, "svc", "orders", lambda e: iter(()))
        reactor.start()
        with pytest.raises(RuntimeError):
            reactor.start()

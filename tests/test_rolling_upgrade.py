"""Integration: a rolling schema upgrade over live broker traffic (§4.3).

The scenario the evolution module exists for: version-1 events sit in the
topic (and keep arriving from not-yet-upgraded producers) while an
upgraded consumer, running the version-2 schema, processes the mixed
stream via upcasters — zero downtime, zero reprocessing errors.
"""

import pytest

from repro.messaging import Broker
from repro.microservices.evolution import IncompatibleEvent, SchemaRegistry
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment(seed=271)


@pytest.fixture
def registry():
    reg = SchemaRegistry()
    reg.define("OrderPlaced", 1, required=["order_id", "total"])
    reg.define("OrderPlaced", 2,
               required=["order_id", "total", "currency"])

    @reg.upcaster("OrderPlaced", 1)
    def add_currency(payload):
        payload["currency"] = "EUR"
        return payload

    return reg


class TestRollingUpgrade:
    def test_mixed_version_stream_consumed_cleanly(self, env, registry):
        broker = Broker(env)
        broker.create_topic("orders")
        consumed = []

        def old_producer():
            for i in range(5):
                yield env.timeout(2.0)
                event = registry.write(
                    "OrderPlaced", {"order_id": f"old-{i}", "total": i},
                    version=1,
                )
                yield from broker.publish("orders", event["order_id"], event)

        def new_producer():
            yield env.timeout(6.0)  # upgraded mid-stream
            for i in range(5):
                yield env.timeout(2.0)
                event = registry.write(
                    "OrderPlaced",
                    {"order_id": f"new-{i}", "total": i, "currency": "DKK"},
                )
                yield from broker.publish("orders", event["order_id"], event)

        def upgraded_consumer():
            consumer = broker.consumer("billing", "orders")
            while len(consumed) < 10:
                batch = yield from consumer.poll()
                for record in batch:
                    payload = registry.read(record.value)  # wants latest
                    consumed.append(payload)
                yield from consumer.commit()

        env.process(old_producer())
        env.process(new_producer())
        env.process(upgraded_consumer())
        env.run(until=10_000)
        assert len(consumed) == 10
        assert all("currency" in p for p in consumed)
        defaults = [p for p in consumed if p["currency"] == "EUR"]
        explicit = [p for p in consumed if p["currency"] == "DKK"]
        assert len(defaults) == 5 and len(explicit) == 5
        assert registry.upcasts_performed == 5

    def test_stale_consumer_rejects_new_events_loudly(self, env, registry):
        """Producers upgraded before consumers: the rollout rule violation
        is an explicit error, not silent corruption."""
        broker = Broker(env)
        broker.create_topic("orders")
        event = registry.write(
            "OrderPlaced", {"order_id": "o", "total": 1, "currency": "USD"}
        )
        errors = []

        def stale_consumer():
            consumer = broker.consumer("stale", "orders")
            yield from broker.publish("orders", "o", event)
            batch = yield from consumer.poll()
            for record in batch:
                try:
                    registry.read(record.value, want_version=1)
                except IncompatibleEvent as exc:
                    errors.append(str(exc))

        env.run_until(env.process(stale_consumer()))
        assert errors and "upgrade consumers" in errors[0]

    def test_predeployment_check_gates_the_rollout(self, registry):
        registry.define("OrderPlaced", 3,
                        required=["order_id", "total", "currency", "region"])
        assert registry.check_rollout("OrderPlaced")  # missing v2->v3 lift

        @registry.upcaster("OrderPlaced", 2)
        def add_region(payload):
            payload["region"] = "eu-west"
            return payload

        assert registry.check_rollout("OrderPlaced") == []

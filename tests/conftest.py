"""Tier-1 collection policy: chaos-marked fuzz runs are opt-in.

The default suite stays fast and fully deterministic; long randomized
chaos sweeps run via ``-m chaos`` or ``scripts/chaoscheck.py``.
"""

import pytest


def pytest_collection_modifyitems(config, items):
    if config.option.markexpr:
        return  # an explicit -m selection overrides the default skip
    skip_chaos = pytest.mark.skip(
        reason="chaos fuzz sweep: run with -m chaos or scripts/chaoscheck.py"
    )
    for item in items:
        if "chaos" in item.keywords:
            item.add_marker(skip_chaos)

"""Metrics read paths must not mutate collector state.

Regression tests for the defaultdict read-mutation family of bugs: querying
a never-recorded operation used to insert an empty row that then appeared
in ``summary()`` and shifted aggregate counts.
"""

from repro.core.metrics import (
    LatencyRecorder,
    MetricsCollector,
    percentile,
    render_table,
)
from repro.harness.driver import RunResult
from repro.transactions.anomalies import AnomalyReport


def collector_with_one_op():
    metrics = MetricsCollector()
    metrics.start(0.0)
    metrics.record_success("read", 4.0)
    metrics.record_success("read", 6.0)
    metrics.stop(1000.0)
    return metrics


# -- collector reads ---------------------------------------------------------


def test_querying_unknown_op_leaves_summary_unchanged():
    metrics = collector_with_one_op()
    before = [(s.name, s.completed, s.failed) for s in metrics.summary()]

    # Every read-path accessor, aimed at an op that never happened.
    assert metrics.completed("phantom") == 0
    assert metrics.failed("phantom") == 0
    assert metrics.latency("phantom").count == 0
    assert metrics.throughput("phantom") == 0.0

    after = [(s.name, s.completed, s.failed) for s in metrics.summary()]
    assert after == before  # the old defaultdict read inserted a phantom row
    assert [name for name, _, _ in after] == ["read"]
    assert metrics.completed() == 2


def test_unknown_op_latency_is_empty_and_shared_state_is_safe():
    first = MetricsCollector()
    second = MetricsCollector()
    empty = first.latency("nope")
    assert empty.count == 0
    assert empty.p(50) == 0.0
    # Writes after the read land in real recorders, never the shared empty.
    first.record_success("nope", 3.0)
    assert first.latency("nope").count == 1
    assert second.latency("nope").count == 0
    assert empty is second.latency("nope")  # still the pristine sentinel


def test_summary_includes_failure_only_ops_without_creating_recorders():
    metrics = collector_with_one_op()
    metrics.record_failure("write")
    rows = {s.name: s for s in metrics.summary()}
    assert rows["write"].failed == 1
    assert rows["write"].completed == 0
    assert "write" not in metrics.recorders()  # no latency row fabricated


# -- recorder sort cache -----------------------------------------------------


def test_latency_recorder_cache_invalidated_on_record_and_extend():
    recorder = LatencyRecorder()
    recorder.record(10.0)
    recorder.record(2.0)
    assert recorder.p(50) == 6.0  # forces the sort
    recorder.record(100.0)  # must invalidate the cached ordering
    assert recorder.p(100) == 100.0
    recorder.extend([0.5, 0.5])
    assert recorder.p(0) == 0.5
    assert recorder.sorted_samples == sorted(recorder.samples)
    assert recorder.samples == [10.0, 2.0, 100.0, 0.5, 0.5]  # order preserved


def test_percentile_does_not_mutate_its_input():
    samples = [9.0, 1.0, 5.0]
    assert percentile(samples, 50) == 5.0
    assert samples == [9.0, 1.0, 5.0]


# -- RunResult pooling -------------------------------------------------------


def run_result(metrics):
    return RunResult(
        label="t", metrics=metrics, anomalies=AnomalyReport(), wall_ms=1000.0
    )


def test_run_result_percentile_pools_without_touching_collector():
    metrics = collector_with_one_op()
    metrics.record_success("write", 20.0)
    metrics.record_failure("abort-only")
    result = run_result(metrics)

    before = [(s.name, s.completed, s.failed) for s in metrics.summary()]
    assert result.p(100) == 20.0
    assert result.p(0) == 4.0  # cached pooled recorder, second query
    after = [(s.name, s.completed, s.failed) for s in metrics.summary()]
    assert after == before
    assert "abort-only" not in metrics.recorders()
    # Pooled samples are a copy: mutating them cannot corrupt the collector.
    assert metrics.latency("read").samples == [4.0, 6.0]


def test_run_result_percentile_empty_metrics():
    metrics = MetricsCollector()
    metrics.record_failure("only-failures")
    assert run_result(metrics).p(50) == 0.0


# -- render_table ------------------------------------------------------------


def test_render_table_empty_rows():
    table = render_table(["a", "bb"], [])
    lines = table.splitlines()
    assert lines[0].split() == ["a", "bb"]
    assert lines[1].split() == ["-", "--"]
    assert len(lines) == 2


def test_render_table_ragged_rows():
    table = render_table(
        ["name", "ok", "fail"],
        [
            ["short"],  # padded with empty cells
            ["exact", "1", "2"],
            ["long", "3", "4", "DROPPED"],  # truncated to header width
        ],
    )
    lines = table.splitlines()
    assert len(lines) == 5
    assert "DROPPED" not in table
    assert lines[2].split() == ["short"]
    assert lines[4].split() == ["long", "3", "4"]

"""Tests for workload generators, arrival processes, and invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.workloads import (
    ClosedLoop,
    HotelWorkload,
    MarketplaceWorkload,
    OpenLoop,
    PartlyOpenLoop,
    TpccLite,
    TransferWorkload,
    YcsbWorkload,
    ZipfianGenerator,
)
from repro.workloads.tpcc import NewOrderOp, OrderStatusOp, PaymentOp


class TestZipfian:
    def test_values_in_range(self):
        gen = ZipfianGenerator(100, theta=0.99)
        rng = random.Random(1)
        for _ in range(1000):
            assert 0 <= gen.next(rng) < 100

    def test_skew_favours_low_indexes(self):
        gen = ZipfianGenerator(1000, theta=0.99)
        rng = random.Random(1)
        samples = [gen.next(rng) for _ in range(5000)]
        head = sum(1 for s in samples if s < 10)
        assert head > len(samples) * 0.3  # top-1% of keys get >30% of hits

    def test_low_theta_is_flatter(self):
        rng = random.Random(1)
        skewed = ZipfianGenerator(1000, theta=0.99)
        flat = ZipfianGenerator(1000, theta=0.01)
        skewed_head = sum(1 for _ in range(3000) if skewed.next(rng) < 10)
        flat_head = sum(1 for _ in range(3000) if flat.next(rng) < 10)
        assert skewed_head > 5 * max(1, flat_head)

    def test_sample_distinct(self):
        gen = ZipfianGenerator(50, theta=0.5)
        rng = random.Random(2)
        sample = gen.sample_distinct(rng, 5)
        assert len(set(sample)) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.0)
        with pytest.raises(ValueError):
            ZipfianGenerator(3).sample_distinct(random.Random(0), 10)


class TestYcsb:
    def test_mix_fractions_respected(self):
        workload = YcsbWorkload(record_count=100, mix="B")
        rng = random.Random(3)
        ops = list(workload.operations(rng, 2000))
        reads = sum(1 for op in ops if op.kind == "read")
        assert 0.9 < reads / len(ops) < 0.99

    def test_read_only_mix(self):
        workload = YcsbWorkload(record_count=10, mix="C")
        ops = list(workload.operations(random.Random(0), 100))
        assert all(op.kind == "read" for op in ops)

    def test_inserts_use_fresh_keys(self):
        workload = YcsbWorkload(record_count=10, mix="D")
        initial_keys = {row["id"] for row in workload.initial_rows()}
        ops = list(workload.operations(random.Random(0), 500))
        inserted = {op.key for op in ops if op.kind == "insert"}
        assert inserted
        assert not (inserted & initial_keys)

    def test_custom_mix(self):
        workload = YcsbWorkload(record_count=10, mix={"read": 0.7, "update": 0.3})
        ops = list(workload.operations(random.Random(0), 100))
        assert {op.kind for op in ops} <= {"read", "update"}

    def test_invalid_mix(self):
        with pytest.raises(ValueError):
            YcsbWorkload(mix="Z")
        with pytest.raises(ValueError):
            YcsbWorkload(mix={"read": 0.5})

    def test_initial_rows_count(self):
        assert len(YcsbWorkload(record_count=42).initial_rows()) == 42


class TestTransfers:
    def test_ops_have_distinct_endpoints(self):
        workload = TransferWorkload(num_accounts=10)
        for op in workload.operations(random.Random(1), 200):
            assert op.src != op.dst

    def test_conservation_invariant_checks_total(self):
        workload = TransferWorkload(num_accounts=3, initial_balance=10)
        invariant = workload.invariants()[0]
        good = [{"balance": 10}, {"balance": 5}, {"balance": 15}]
        assert invariant.check(good) == []
        bad = [{"balance": 10}, {"balance": 5}, {"balance": 16}]
        assert len(invariant.check(bad)) == 1

    def test_op_ids_unique(self):
        workload = TransferWorkload(num_accounts=5)
        ops = list(workload.operations(random.Random(0), 100))
        assert len({op.op_id for op in ops}) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferWorkload(num_accounts=1)


class TestTpcc:
    def test_mix_of_transaction_types(self):
        workload = TpccLite(warehouses=2)
        ops = list(workload.operations(random.Random(4), 1000))
        kinds = {type(op) for op in ops}
        assert kinds == {NewOrderOp, PaymentOp, OrderStatusOp}
        new_orders = sum(1 for op in ops if isinstance(op, NewOrderOp))
        assert 0.35 < new_orders / len(ops) < 0.55

    def test_new_order_line_counts(self):
        workload = TpccLite(warehouses=1)
        for op in workload.operations(random.Random(5), 200):
            if isinstance(op, NewOrderOp):
                assert 5 <= len(op.lines) <= 15

    def test_remote_lines_only_with_multiple_warehouses(self):
        workload = TpccLite(warehouses=1)
        for op in workload.operations(random.Random(6), 200):
            if isinstance(op, NewOrderOp):
                assert all(supply == op.warehouse for _i, supply, _q in op.lines)

    def test_initial_data_shapes(self):
        workload = TpccLite(warehouses=2)
        assert len(workload.initial_warehouses()) == 2
        assert len(workload.initial_districts()) == 8
        assert len(workload.initial_stock()) == 2 * 100

    def test_warehouse_ytd_invariant(self):
        workload = TpccLite(warehouses=1)
        invariant = workload.invariants()[0]
        state = {
            "warehouses": [{"id": 0, "ytd": 30}],
            "districts": [
                {"id": "0:0", "warehouse": 0, "ytd": 10},
                {"id": "0:1", "warehouse": 0, "ytd": 20},
            ],
        }
        assert invariant.check(state) == []
        state["warehouses"][0]["ytd"] = 31
        assert len(invariant.check(state)) == 1

    def test_order_line_invariant(self):
        invariant = TpccLite().invariants()[1]
        state = {
            "orders": [{"id": "o1", "ol_cnt": 2}],
            "order_lines": [{"order_id": "o1"}, {"order_id": "o1"}],
        }
        assert invariant.check(state) == []
        state["order_lines"].pop()
        assert len(invariant.check(state)) == 1


class TestMarketplace:
    def test_cart_products_distinct(self):
        workload = MarketplaceWorkload(num_products=20)
        for op in workload.operations(random.Random(7), 200):
            products = [p for p, _q in op.cart]
            assert len(products) == len(set(products))

    def test_payment_failures_injected(self):
        workload = MarketplaceWorkload(payment_failure_rate=0.5)
        ops = list(workload.operations(random.Random(8), 400))
        failures = sum(1 for op in ops if op.payment_fails)
        assert 100 < failures < 300

    def test_oversell_invariant(self):
        workload = MarketplaceWorkload(num_products=1, initial_stock=10)
        invariant = workload.invariants()[0]
        state = {
            "products": [{"id": "prod-0000", "stock": 7, "reserved": 0}],
            "orders": [{"id": "o1", "items": [("prod-0000", 3)]}],
        }
        assert invariant.check(state) == []
        state["orders"].append({"id": "o2", "items": [("prod-0000", 5)]})
        assert len(invariant.check(state)) == 1  # 7 + 8 > 10

    def test_charge_exactly_once_invariant(self):
        invariant = MarketplaceWorkload().invariants()[1]
        state = {
            "orders": [{"id": "o1", "items": []}],
            "payments": [{"order_id": "o1"}],
            "products": [],
        }
        assert invariant.check(state) == []
        state["payments"].append({"order_id": "o1"})
        assert len(invariant.check(state)) == 1

    def test_orphan_reservation_invariant(self):
        invariant = MarketplaceWorkload().invariants()[2]
        state = {"products": [{"id": "p", "stock": 5, "reserved": 2}]}
        assert len(invariant.check(state)) == 1


class TestHotel:
    def test_mix(self):
        workload = HotelWorkload(reserve_fraction=0.4)
        ops = list(workload.operations(random.Random(9), 500))
        from repro.workloads.hotel import ReserveOp

        reserves = sum(1 for op in ops if isinstance(op, ReserveOp))
        assert 120 < reserves < 280

    def test_capacity_invariant(self):
        invariant = HotelWorkload().invariants()[0]
        state = {
            "hotels": [{"id": "h", "capacity": 10, "available": 8}],
            "reservations": [{"hotel": "h"}, {"hotel": "h"}],
        }
        assert invariant.check(state) == []
        state["hotels"][0]["available"] = -1
        assert invariant.check(state)


class TestArrivalProcesses:
    def _measure(self, env, arrival, service_time=1.0):
        issued = []

        def issue(op_index):
            issued.append((op_index, env.now))
            yield env.timeout(service_time)

        done = env.process(arrival.drive(env, issue))
        env.run_until(done)
        return issued

    def test_open_loop_issues_all_ops(self):
        env = Environment(seed=71)
        issued = self._measure(env, OpenLoop(rate_per_s=1000.0, total_ops=50))
        assert len(issued) == 50

    def test_open_loop_does_not_wait_for_completions(self):
        """Arrivals keep coming even when service is slow (open model)."""
        env = Environment(seed=71)
        issued = self._measure(
            env, OpenLoop(rate_per_s=1000.0, total_ops=20), service_time=1000.0
        )
        arrival_span = issued[-1][1] - issued[0][1]
        assert arrival_span < 1000.0  # all arrived before the first finished

    def test_closed_loop_gates_on_completion(self):
        env = Environment(seed=72)
        issued = self._measure(
            env, ClosedLoop(clients=1, ops_per_client=5, think_time_ms=0.0),
            service_time=10.0,
        )
        gaps = [b[1] - a[1] for a, b in zip(issued, issued[1:])]
        assert all(gap >= 10.0 for gap in gaps)

    def test_closed_loop_total(self):
        env = Environment(seed=73)
        issued = self._measure(env, ClosedLoop(clients=3, ops_per_client=4))
        assert len(issued) == 12

    def test_partly_open_sessions(self):
        env = Environment(seed=74)
        arrival = PartlyOpenLoop(
            session_rate_per_s=500.0, total_sessions=10, ops_per_session=3
        )
        issued = self._measure(env, arrival)
        assert len(issued) == 30

    def test_closed_loop_tolerates_op_failures(self):
        env = Environment(seed=75)
        attempts = []

        def issue(op_index):
            attempts.append(op_index)
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        arrival = ClosedLoop(clients=2, ops_per_client=3, think_time_ms=1.0)
        env.run_until(env.process(arrival.drive(env, issue)))
        assert len(attempts) == 6  # failures do not kill the client loop

    def test_validation(self):
        env = Environment(seed=76)
        with pytest.raises(ValueError):
            env.run_until(env.process(OpenLoop(0, 5).drive(env, lambda i: iter(()))))

"""Cross-cutting property-based tests on the core guarantees.

These go after the load-bearing invariants of the whole stack:

- the database engine under random concurrent transfer schedules is
  serializable (conservation) at SERIALIZABLE;
- the deterministic transactional dataflow produces *identical* state for
  identical inputs regardless of epoch boundaries;
- the broker preserves per-key order and never loses committed records;
- simulation determinism: one seed, one trace, everywhere.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import TransactionalDataflow
from repro.db import Database, IsolationLevel
from repro.db.errors import TransactionAborted
from repro.messaging import Broker
from repro.sim import Environment


@settings(max_examples=25, deadline=None)
@given(
    transfers=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(1, 20),
                  st.integers(0, 30)),
        min_size=1, max_size=25,
    ),
    seed=st.integers(0, 1000),
)
def test_db_serializable_conserves_under_any_schedule(transfers, seed):
    """Random concurrent transfers + delays: money is always conserved."""
    env = Environment(seed=seed)
    db = Database(env)
    db.create_table("accounts", primary_key="id")
    db.load("accounts", [{"id": i, "balance": 100} for i in range(6)])

    def transfer(src, dst, amount, delay):
        yield env.timeout(delay)
        for attempt in range(10):
            txn = db.begin(IsolationLevel.SERIALIZABLE)
            try:
                a = yield from db.get(txn, "accounts", src)
                b = yield from db.get(txn, "accounts", dst)
                if src != dst:
                    yield from db.put(txn, "accounts", src,
                                      {"id": src, "balance": a["balance"] - amount})
                    yield from db.put(txn, "accounts", dst,
                                      {"id": dst, "balance": b["balance"] + amount})
                yield from db.commit(txn)
                return
            except TransactionAborted:
                db.abort(txn)
                yield env.timeout(1 + attempt)

    for src, dst, amount, delay in transfers:
        env.process(transfer(src, dst, amount, delay))
    env.run()
    total = sum(row["balance"] for row in db.all_rows("accounts"))
    assert total == 600


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(1, 9)),
        min_size=1, max_size=20,
    ),
    epoch_interval=st.sampled_from([2.0, 7.0, 23.0]),
)
def test_txn_dataflow_state_independent_of_epoch_boundaries(ops, epoch_interval):
    """Same submissions, any epoching: identical final state (determinism)."""

    def run(interval):
        env = Environment(seed=5)
        engine = TransactionalDataflow(env, epoch_interval=interval,
                                       checkpoint_every=10_000)

        @engine.function("move")
        def move(ctx, key, payload):
            ctx.put(key, ctx.get(key, 100) - payload["amount"])
            dst = payload["dst"]
            ctx.put(dst, ctx.get(dst, 100) + payload["amount"])
            return None
            yield  # pragma: no cover

        engine.start()
        for i, (src, dst, amount) in enumerate(ops):
            env.schedule(
                float(i), engine.submit, "move", f"k{src}",
                {"dst": f"k{dst}", "amount": amount}, [f"k{src}", f"k{dst}"],
            )
        env.run(until=10_000)
        return engine.all_state()

    assert run(epoch_interval) == run(31.0)


@settings(max_examples=25, deadline=None)
@given(
    messages=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 99)),
                      min_size=1, max_size=60),
    partitions=st.integers(1, 4),
    batch=st.integers(1, 16),
)
def test_broker_preserves_per_key_order_and_loses_nothing(messages, partitions, batch):
    env = Environment(seed=3)
    broker = Broker(env)
    broker.create_topic("t", partitions=partitions)

    def produce():
        for key, value in messages:
            yield from broker.publish("t", key, (key, value))

    received = []

    def consume():
        consumer = broker.consumer("g", "t")
        while len(received) < len(messages):
            records = yield from consumer.poll(max_records=batch)
            received.extend(r.value for r in records)
            yield from consumer.commit()

    env.process(produce())
    env.process(consume())
    env.run(until=100_000)
    assert len(received) == len(messages)
    # Per-key order: the subsequence for each key matches publication order.
    for key in {k for k, _v in messages}:
        sent = [v for k, v in messages if k == key]
        got = [v for k, v in received if k == key]
        assert got == sent


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_txn_dataflow_two_runs_identical(seed):
    """Bitwise-deterministic: same seed -> same stats and state."""

    def run():
        env = Environment(seed=seed)
        engine = TransactionalDataflow(env, epoch_interval=4.0)

        @engine.function("inc")
        def inc(ctx, key, amount):
            ctx.put(key, ctx.get(key, 0) + amount)
            return ctx.get(key)
            yield  # pragma: no cover

        engine.start()
        rng = env.stream("load")
        for i in range(20):
            env.schedule(rng.uniform(0, 50), engine.submit, "inc",
                         f"k{rng.randrange(5)}", 1, None)
        env.run(until=1000)
        return engine.all_state(), engine.stats.epochs, engine.stats.waves

    assert run() == run()


class TestMicroserviceChaosWithIdempotency:
    """Message loss + duplication + a service crash: still exactly-once."""

    @settings(max_examples=8, deadline=None)
    @given(
        loss=st.sampled_from([0.0, 0.05, 0.15]),
        duplication=st.sampled_from([0.0, 0.1]),
        seed=st.integers(0, 500),
    )
    def test_counter_service_exactly_once_under_chaos(self, loss, duplication, seed):
        from repro.messaging import (
            IdempotencyStore, RpcClient, RpcServer, RpcTimeout,
        )
        from repro.net import Latency, Network
        from repro.transactions import EffectLedger

        env = Environment(seed=seed)
        net = Network(env, default_latency=Latency.constant(1.0))
        net.add_node("client")
        server_node = net.add_node("server")
        net.set_loss(loss)
        net.set_duplication(duplication)
        ledger = EffectLedger()
        state = {"n": 0}
        store = IdempotencyStore()
        server = RpcServer(net, server_node, dedup_store=store)

        def incr(payload):
            yield env.timeout(0.3)
            state["n"] += 1
            ledger.apply(payload)
            return state["n"]

        server.register("incr", incr)
        client = RpcClient(net, net.node("client"))
        # A mid-run crash + restart of the (stateless-ish) server node.
        env.schedule(40.0, server_node.crash)
        env.schedule(55.0, server_node.restart)

        def one(op_id):
            try:
                yield from client.call("server", "incr", op_id,
                                       timeout=10.0, retries=6,
                                       idempotency_key=op_id)
                ledger.acknowledge(op_id)
            except RpcTimeout:
                pass

        def driver():
            processes = []
            for i in range(40):
                yield env.timeout(3.0)
                processes.append(env.process(one(f"op-{i}")))
            for process in processes:
                if not process.done:
                    yield process

        env.run_until(env.process(driver()))
        report = ledger.reconcile()
        # Acknowledged ops applied exactly once, never lost, never doubled.
        assert report.lost_effects == 0
        assert report.duplicate_effects == 0

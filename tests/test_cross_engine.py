"""Tests for cross-engine transactions (Epoxy-style, §5.2)."""

import pytest

from repro.db import Database, IsolationLevel
from repro.sim import Environment
from repro.transactions import TwoPhaseCommit
from repro.transactions.cross_engine import KvTxnConflict, TransactionalKv

SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def env():
    return Environment(seed=191)


def run(env, gen):
    return env.run_until(env.process(gen))


class TestTransactionalKv:
    def test_read_write_commit(self, env):
        kv = TransactionalKv(env)

        def flow():
            txn = kv.begin()
            yield from kv.put(txn, "k", "v")
            yield from kv.commit(txn)
            txn2 = kv.begin()
            return (yield from kv.get(txn2, "k"))

        assert run(env, flow()) == "v"

    def test_uncommitted_writes_invisible(self, env):
        kv = TransactionalKv(env)

        def flow():
            txn = kv.begin()
            yield from kv.put(txn, "k", "dirty")
            other = kv.begin()
            return (yield from kv.get(other, "k", "absent"))

        assert run(env, flow()) == "absent"

    def test_stale_read_aborts_at_prepare(self, env):
        kv = TransactionalKv(env)
        kv.store.put("k", 1)

        def flow():
            txn = kv.begin()
            value = yield from kv.get(txn, "k")
            kv.store.put("k", value + 100)  # out-of-band interference
            yield from kv.put(txn, "k", value + 1)
            yield from kv.prepare(txn)

        with pytest.raises(KvTxnConflict, match="stale read"):
            run(env, flow())

    def test_prepare_locks_conflicting_preparer(self, env):
        kv = TransactionalKv(env)

        def flow():
            txn_a = kv.begin()
            yield from kv.put(txn_a, "k", 1)
            yield from kv.prepare(txn_a)
            txn_b = kv.begin()
            yield from kv.put(txn_b, "k", 2)
            try:
                yield from kv.prepare(txn_b)
            except KvTxnConflict:
                yield from kv.commit_prepared(txn_a)
                return "b-conflicted"

        assert run(env, flow()) == "b-conflicted"
        assert kv.store.get("k") == 1

    def test_abort_prepared_releases_locks(self, env):
        kv = TransactionalKv(env)

        def flow():
            txn_a = kv.begin()
            yield from kv.put(txn_a, "k", 1)
            yield from kv.prepare(txn_a)
            yield from kv.abort_prepared(txn_a)
            txn_b = kv.begin()
            yield from kv.put(txn_b, "k", 2)
            yield from kv.commit(txn_b)

        run(env, flow())
        assert kv.store.get("k") == 2
        assert kv.in_doubt() == []


class TestCrossEngine2pc:
    """One atomic commit spanning the SQL-ish engine and the KV engine."""

    def _setup(self, env):
        db = Database(env, name="relational")
        db.create_table("orders", primary_key="id")
        kv = TransactionalKv(env, name="cache")
        kv.store.put("order-count", 0)
        coordinator = TwoPhaseCommit(env)
        return db, kv, coordinator

    def test_atomic_commit_across_engines(self, env):
        db, kv, coordinator = self._setup(env)

        def flow():
            db_txn = db.begin(SER)
            kv_txn = kv.begin()
            yield from db.insert(db_txn, "orders", {"id": "o1", "total": 10})
            count = yield from kv.get(kv_txn, "order-count")
            yield from kv.put(kv_txn, "order-count", count + 1)
            outcome = yield from coordinator.run([(db, db_txn), (kv, kv_txn)])
            return outcome

        outcome = run(env, flow())
        assert outcome.decision == "committed"
        assert db.read_latest("orders", "o1")["total"] == 10
        assert kv.store.get("order-count") == 1

    def test_kv_conflict_rolls_back_the_database_too(self, env):
        db, kv, coordinator = self._setup(env)

        def flow():
            db_txn = db.begin(SER)
            kv_txn = kv.begin()
            yield from db.insert(db_txn, "orders", {"id": "o1", "total": 10})
            count = yield from kv.get(kv_txn, "order-count")
            yield from kv.put(kv_txn, "order-count", count + 1)
            kv.store.put("order-count", 99)  # interference before prepare
            outcome = yield from coordinator.run([(kv, kv_txn), (db, db_txn)])
            return outcome

        outcome = run(env, flow())
        assert outcome.decision == "aborted"
        assert db.read_latest("orders", "o1") is None  # atomicity held
        assert kv.store.get("order-count") == 99

    def test_db_failure_rolls_back_the_kv_too(self, env):
        db, kv, coordinator = self._setup(env)

        def flow():
            # Set up a DB write-write conflict under snapshot isolation.
            db.load("orders", [{"id": "hot", "total": 0}])
            txn_a = db.begin(IsolationLevel.SNAPSHOT)
            txn_b = db.begin(IsolationLevel.SNAPSHOT)
            yield from db.put(txn_a, "orders", "hot", {"id": "hot", "total": 1})
            yield from db.commit(txn_a)
            yield from db.put(txn_b, "orders", "hot", {"id": "hot", "total": 2})
            kv_txn = kv.begin()
            yield from kv.put(kv_txn, "order-count", 42)
            outcome = yield from coordinator.run([(db, txn_b), (kv, kv_txn)])
            return outcome

        outcome = run(env, flow())
        assert outcome.decision == "aborted"
        assert kv.store.get("order-count") == 0  # kv write rolled back
        assert db.read_latest("orders", "hot")["total"] == 1

    def test_concurrent_cross_engine_counters_are_exact(self, env):
        db, kv, coordinator = self._setup(env)
        committed = []

        def one(i):
            from repro.db.errors import TransactionAborted

            for attempt in range(12):
                db_txn = db.begin(SER)
                kv_txn = kv.begin()
                try:
                    yield from db.insert(db_txn, "orders", {"id": f"o{i}"})
                    count = yield from kv.get(kv_txn, "order-count")
                    yield from kv.put(kv_txn, "order-count", count + 1)
                    outcome = yield from coordinator.run(
                        [(db, db_txn), (kv, kv_txn)]
                    )
                    if outcome.decision == "committed":
                        committed.append(i)
                        return
                except (TransactionAborted, KvTxnConflict):
                    db.abort(db_txn)
                yield env.timeout(1.0 + attempt)

        for i in range(10):
            env.process(one(i))
        env.run()
        assert kv.store.get("order-count") == len(committed)
        assert len(db.all_rows("orders")) == len(committed)
        assert len(committed) == 10

"""Equivalence and regression tests for the messaging/tracing fast paths.

Every optimization added by the hot-path pass keeps a reference mode; the
bar here matches the flag's contract:

- opt-in *timing-changing* paths (reply coalescing, same-node shortcut,
  append-window piggybacking) must produce the **same outcomes and final
  state** as their reference mode, with strictly less wire traffic;
- span sampling must keep **whole trees** and leave ``sample_every=1``
  exports byte-identical to the default;
- the read paths audited in the bugfix sweep must never mutate shared
  state as a side effect of being asked a question.
"""

import pytest

from repro.messaging.rpc import RpcClient, RpcRemoteError, RpcServer
from repro.net import Network
from repro.obs import Tracer, chrome_trace_json
from repro.replication import ReplicaGroup, ReplicationConfig
from repro.sim import Environment


def run(env, gen, label="test"):
    return env.run_until(env.process(gen, label=label))


# -- reply coalescing ---------------------------------------------------------


def _coalesce_scenario(coalesce: bool):
    env = Environment(seed=7)
    net = Network(env)
    net.add_node("server")
    client_node = net.add_node("client")
    server = RpcServer(
        net, net.node("server"), service="svc", coalesce_replies=coalesce
    )
    gate = env.future(label="gate")

    def handler(payload):
        # Every in-flight handler resumes in the same virtual instant when
        # the gate opens, so all replies are issued together.
        yield gate
        return payload * 2

    server.register("work", handler)
    client = RpcClient(net, client_node, service="svc")
    results = []

    def one_call(i):
        value = yield from client.call("server", "work", i, timeout=500.0)
        results.append((i, value))

    for i in range(6):
        env.process(one_call(i), label=f"call{i}")

    def opener(env):
        yield env.timeout(50.0)
        gate.succeed(None)

    env.process(opener(env), label="opener")
    env.run(until=1_000.0)
    return results, net.stats.sent, net.stats.delivered


def test_coalesced_replies_same_outcomes_fewer_messages():
    reference, ref_sent, ref_delivered = _coalesce_scenario(False)
    coalesced, fast_sent, fast_delivered = _coalesce_scenario(True)
    expected = [(i, i * 2) for i in range(6)]
    assert sorted(reference) == expected
    assert sorted(coalesced) == expected
    # Six simultaneous replies leave as one batch envelope instead of six.
    assert fast_sent < ref_sent
    assert fast_delivered < ref_delivered


def test_coalescing_defaults_off():
    env = Environment(seed=1)
    net = Network(env)
    net.add_node("n")
    server = RpcServer(net, net.node("n"))
    assert server.coalesce_replies is False
    assert server.local_fast_path is False


def test_coalesced_error_replies_still_arrive():
    env = Environment(seed=3)
    net = Network(env)
    net.add_node("server")
    client_node = net.add_node("client")
    server = RpcServer(
        net, net.node("server"), service="svc", coalesce_replies=True
    )

    def boom(payload):
        raise ValueError("nope")
        yield  # pragma: no cover - generator protocol only

    server.register("boom", boom)
    client = RpcClient(net, client_node, service="svc")

    def caller(env):
        with pytest.raises(RpcRemoteError):
            yield from client.call("server", "boom", None, retries=0)
        return True

    assert run(env, caller(env)) is True


# -- same-node shortcut -------------------------------------------------------


def _loopback_scenario(fast: bool):
    env = Environment(seed=11)
    net = Network(env)
    node = net.add_node("app")
    server = RpcServer(
        net, node, service="svc",
        coalesce_replies=False, local_fast_path=fast,
    )
    state = {"count": 0}

    def bump(payload):
        state["count"] += payload
        return state["count"]
        yield  # pragma: no cover - generator protocol only

    server.register("bump", bump)
    client = RpcClient(net, node, service="svc", local_fast_path=fast)

    def caller(env):
        values = []
        for i in range(8):
            values.append((yield from client.call("app", "bump", i + 1)))
        return values

    values = run(env, caller(env))
    return values, state["count"], client.stats


def test_same_node_shortcut_same_results_and_state():
    ref_values, ref_state, ref_stats = _loopback_scenario(False)
    fast_values, fast_state, fast_stats = _loopback_scenario(True)
    assert fast_values == ref_values == [1, 3, 6, 10, 15, 21, 28, 36]
    assert fast_state == ref_state == 36
    assert fast_stats.calls == ref_stats.calls == 8
    assert fast_stats.timeouts == ref_stats.timeouts == 0


def test_same_node_shortcut_skips_latency():
    """Loopback calls finish in zero virtual time (no latency samples)."""
    env = Environment(seed=12)
    net = Network(env)
    node = net.add_node("app")
    server = RpcServer(net, node, service="svc", local_fast_path=True)

    def echo(payload):
        return payload
        yield  # pragma: no cover - generator protocol only

    server.register("echo", echo)
    client = RpcClient(net, node, service="svc", local_fast_path=True)

    def caller(env):
        value = yield from client.call("app", "echo", 42)
        return (value, env.now)

    value, finished_at = run(env, caller(env))
    assert value == 42
    assert finished_at == 0.0
    assert net.stats.sent == net.stats.delivered == 2  # request + reply


def test_send_local_dead_node_counts_dropped():
    env = Environment(seed=13)
    net = Network(env)
    node = net.add_node("app")
    node.bind("p")
    node.crash()
    net.send_local("app", "p", "payload")
    assert net.stats.dropped_dead == 1
    assert net.stats.delivered == 0


# -- span sampling ------------------------------------------------------------


def _traced_run(tracer):
    from repro.apps import DbBank
    from repro.harness import WorkloadDriver
    from repro.workloads import ClosedLoop, TransferWorkload

    env = Environment(seed=77, tracer=tracer)
    workload = TransferWorkload(num_accounts=20, theta=0.7)
    bank = DbBank(env, workload)
    ops = list(workload.operations(env.stream("ops:sampling"), 64))
    driver = WorkloadDriver(env, label="sampling")
    driver.ledger = bank.ledger
    arrival = ClosedLoop(clients=4, ops_per_client=16, think_time_ms=2.0)
    env.run_until(env.process(driver.run(ops, bank.execute, arrival)))
    return tracer


def test_sample_every_1_export_identical_to_default():
    full = chrome_trace_json(_traced_run(Tracer()))
    explicit = chrome_trace_json(_traced_run(Tracer(sample_every=1)))
    assert full == explicit


def test_sampling_keeps_whole_trees():
    """With sample_every=2 every retained span's parent is retained too —
    sampling drops whole root trees, never interior edges."""
    tracer = _traced_run(Tracer(sample_every=2))
    assert tracer.spans
    retained_ids = {span.span_id for span in tracer.spans}
    for span in tracer.spans:
        if span.parent_id is not None:
            assert span.parent_id in retained_ids


def test_sampling_halves_roots():
    full_roots = len(_traced_run(Tracer()).roots())
    sampled_roots = len(_traced_run(Tracer(sample_every=2)).roots())
    assert sampled_roots == (full_roots + 1) // 2


def test_sample_every_validates():
    with pytest.raises(ValueError):
        Tracer(sample_every=0)


# -- replication append piggybacking ------------------------------------------


def _replication_scenario(window_ms: float):
    from repro.db import IsolationLevel
    from repro.db.engine import Database

    env = Environment(seed=5)
    net = Network(env)

    def factory(node_name):
        engine = Database(env, name=f"g@{node_name}")
        engine.create_table("kv")
        return engine

    config = ReplicationConfig(append_window_ms=window_ms)
    group = ReplicaGroup(
        env, net, name="g", config=config,
        engine_factory=factory, node_names=["r0", "r1", "r2"],
    )
    leader = group.leader_replica()

    def proposer(env):
        # Pipelined proposals 3ms apart — longer than the intra-zone RTT,
        # so without a window each proposal triggers its own sync round,
        # while a 10ms window lets several share one AppendEntries batch.
        acks = []
        for i in range(12):
            engine = leader.engine
            txn = engine.begin(IsolationLevel.SERIALIZABLE)
            yield from engine.put(txn, "kv", i, {"id": i, "value": i * 10})
            gid = ("t", i)
            writes = engine.stage_replicated(txn, gid)
            acks.append(leader.propose(("commit", gid, writes)))
            yield env.timeout(3.0)
        for ack in acks:
            status, _detail = yield ack
            assert status == "ok"

    run(env, proposer(env))
    env.run(until=250.0)  # same fixed horizon: heartbeat counts comparable
    applied = [replica.applied_index for replica in group.replicas]
    values = [
        [replica.engine.read_latest("kv", i) for i in range(12)]
        for replica in group.replicas
    ]
    return applied, values, leader.client.stats.calls


def test_append_window_same_state_fewer_rpcs():
    """append_window_ms batches same-window proposals into shared
    AppendEntries RPCs: identical replicated state, fewer leader calls."""
    ref_applied, ref_values, ref_calls = _replication_scenario(0.0)
    win_applied, win_values, win_calls = _replication_scenario(10.0)
    assert win_applied == ref_applied
    assert win_values == ref_values
    for row_set in win_values:
        assert [row["value"] for row in row_set] == [i * 10 for i in range(12)]
    assert win_calls < ref_calls


def test_append_window_defaults_off():
    assert ReplicationConfig().append_window_ms == 0.0


# -- bugfix sweep: read paths must not mutate ---------------------------------


def test_effective_faults_reads_do_not_create_link_entries():
    env = Environment(seed=1)
    net = Network(env)
    net.add_node("a")
    net.add_node("b")
    net.send("a", "b", "p", "x")
    assert net._link_faults == {}
    assert net._effective_faults("a", "b") is net._global_faults
    assert net._link_faults == {}


def test_is_partitioned_does_not_mutate():
    env = Environment(seed=1)
    net = Network(env)
    net.add_node("a")
    net.add_node("b")
    assert net.is_partitioned("a", "b") is False
    assert net._partitions == set()


def test_unknown_method_reply_leaves_server_state_clean():
    env = Environment(seed=2)
    net = Network(env)
    net.add_node("server")
    client_node = net.add_node("client")
    server = RpcServer(net, net.node("server"), service="svc")
    client = RpcClient(net, client_node, service="svc")

    def caller(env):
        with pytest.raises(RpcRemoteError):
            yield from client.call("server", "nope", None, retries=0)
        return True

    assert run(env, caller(env)) is True
    assert server._handlers == {}
    assert server._inflight == {}
    assert server._executed_keys == set()


# -- fast-grant boundary: cross-shard 2PC keeps reference grants --------------


def test_cluster_binder_defaults_to_reference_grants():
    """ShardedDbBinder pins ``fast_grants=False``: synchronous grants let a
    deadlock-victim retry re-take its first lock in the instant it restarts,
    phase-locking one op into losing the same cross-shard cycle until its
    retries exhaust (seen as 16 consecutive DeadlockAborts on the C17
    invoicing workload, seed 11)."""
    from repro.apps.core import bind
    from repro.apps.invoicing import invoicing_spec
    from repro.workloads.invoicing import InvoicingWorkload

    env = Environment(seed=11)
    binder = bind("cluster", env, invoicing_spec(InvoicingWorkload()),
                  num_shards=2)
    assert all(eng._fast_grants is False for eng in binder.db.shards)

    ops = list(InvoicingWorkload().operations(env.stream("ops:invoicing"), 40))
    errors = []

    def one(op):
        try:
            yield from binder.execute(op)
        except Exception as exc:  # noqa: BLE001 — any client-visible failure
            errors.append((op.op_id, type(exc).__name__))

    def driver():
        pending = []
        for op in ops:
            yield env.timeout(2.0)
            pending.append(env.process(one(op)))
        for proc in pending:
            yield proc
        return True

    assert run(env, driver()) is True
    assert errors == []


def test_sharded_database_threads_fast_grants_to_engines():
    from repro.db import ShardedDatabase

    env = Environment(seed=3)
    fast = ShardedDatabase(env, num_shards=2)
    assert all(eng._fast_grants is True for eng in fast.shards)
    ref = ShardedDatabase(env, num_shards=2, name="ref", fast_grants=False)
    assert all(eng._fast_grants is False for eng in ref.shards)

"""The deterministic profiling layer: counts, reports, accounting."""

from repro.db import IsolationLevel
from repro.db.engine import Database
from repro.net import Network
from repro.obs import CallCountProfiler, events_per_txn, subsystem_counters
from repro.sim import Environment


def _tiny_workload():
    env = Environment(seed=9)
    db = Database(env)
    db.create_table("kv")

    def writer(env):
        for i in range(10):
            txn = db.begin(IsolationLevel.SERIALIZABLE)
            yield from db.put(txn, "kv", i, {"id": i, "value": i})
            yield from db.commit(txn)
            yield env.timeout(1.0)

    env.run_until(env.process(writer(env)))
    return env, db


class TestCallCountProfiler:
    def test_counts_restricted_to_repro_code(self):
        with CallCountProfiler() as prof:
            _tiny_workload()
        rows = prof.counts()
        assert rows, "expected repro-code calls to be recorded"
        for subsystem, label, calls in rows:
            assert calls > 0
            assert "/" not in label and "\\" not in label  # no paths leak
        subsystems = {row[0] for row in rows}
        assert "sim" in subsystems and "db" in subsystems

    def test_counts_deterministic_across_runs(self):
        with CallCountProfiler() as first:
            _tiny_workload()
        with CallCountProfiler() as second:
            _tiny_workload()
        assert first.counts() == second.counts()

    def test_report_is_stable_text(self):
        with CallCountProfiler() as prof:
            _tiny_workload()
        report = prof.report(top=5, scenario="tiny")
        assert "# scenario: tiny" in report
        assert "calls by subsystem:" in report
        assert "top 5 functions by calls:" in report
        # Regenerating the report from the same profile is byte-stable.
        assert report == prof.report(top=5, scenario="tiny")

    def test_by_subsystem_sums_to_total(self):
        with CallCountProfiler() as prof:
            _tiny_workload()
        assert sum(prof.by_subsystem().values()) == prof.total_calls()


class TestSubsystemCounters:
    def test_harvests_kernel_network_and_db(self):
        env, db = _tiny_workload()
        net = Network(env)
        net.add_node("a")
        net.add_node("b").bind("p")
        net.send("a", "b", "p", "x")
        env.run()
        counters = subsystem_counters(env=env, network=net, databases=[db])
        assert counters["kernel.events_executed"] == env.events_executed
        assert counters["kernel.events_executed"] > 0
        assert counters["net.sent"] == 1
        assert counters["net.delivered"] == 1
        assert counters["db.committed"] == 10
        assert counters["tracer.spans"] == 0  # untraced run

    def test_multiple_members_are_summed(self):
        env, db = _tiny_workload()
        env2, db2 = _tiny_workload()
        counters = subsystem_counters(databases=[db, db2])
        assert counters["db.committed"] == 20


class TestEventsPerTxn:
    def test_rounding(self):
        assert events_per_txn(2404, 240) == 10.02

    def test_zero_transactions_is_zero(self):
        assert events_per_txn(100, 0) == 0.0

    def test_matches_manual_division(self):
        env, _db = _tiny_workload()
        value = events_per_txn(env.events_executed, 10)
        assert value == round(env.events_executed / 10, 2)

"""Tests for tiered state (§3.3) and online event-based constraints (§5.1)."""

import pytest

from repro.messaging import Broker
from repro.net.latency import Latency
from repro.sim import Environment
from repro.storage.object_store import ObjectStore, ObjectStoreServer
from repro.storage.tiered import TieredStore
from repro.transactions.constraints import ConstraintMonitor


@pytest.fixture
def env():
    return Environment(seed=211)


def run(env, gen):
    return env.run_until(env.process(gen))


def make_tiered(env, hot_capacity=3, cold_latency=10.0):
    server = ObjectStoreServer(env, ObjectStore(),
                               latency=Latency.constant(cold_latency),
                               transfer_ms_per_unit=0.0)
    return TieredStore(server, hot_capacity=hot_capacity), server


class TestTieredStore:
    def test_put_get_within_hot_tier(self, env):
        store, _server = make_tiered(env)

        def flow():
            yield from store.put("a", 1)
            value = yield from store.get("a")
            return value, env.now

        value, elapsed = run(env, flow())
        assert value == 1
        assert elapsed == 0.0  # hot access is free
        assert store.stats.hot_hits == 1

    def test_overflow_spills_lru_to_cold(self, env):
        store, server = make_tiered(env, hot_capacity=2)

        def flow():
            yield from store.put("a", 1)
            yield from store.put("b", 2)
            yield from store.put("c", 3)  # evicts a

        run(env, flow())
        assert store.stats.spills == 1
        assert store.hot_keys == ["b", "c"]
        assert store.cold_count == 1
        assert "a" in store

    def test_cold_read_charges_latency_and_promotes(self, env):
        store, _server = make_tiered(env, hot_capacity=2, cold_latency=10.0)

        def flow():
            yield from store.put("a", 1)
            yield from store.put("b", 2)
            yield from store.put("c", 3)  # a spilled
            start = env.now
            value = yield from store.get("a")
            return value, env.now - start

        value, cost = run(env, flow())
        assert value == 1
        assert cost >= 10.0
        assert store.stats.cold_hits == 1
        assert store.stats.promotions == 1
        assert "a" in store.hot_keys  # promoted (and something else spilled)

    def test_missing_key_returns_default(self, env):
        store, _server = make_tiered(env)

        def flow():
            return (yield from store.get("ghost", "fallback"))

        assert run(env, flow()) == "fallback"
        assert store.stats.misses == 1

    def test_len_spans_both_tiers(self, env):
        store, _server = make_tiered(env, hot_capacity=2)

        def flow():
            for i in range(5):
                yield from store.put(f"k{i}", i)

        run(env, flow())
        assert len(store) == 5
        assert store.cold_count == 3

    def test_delete_from_either_tier(self, env):
        store, _server = make_tiered(env, hot_capacity=1)

        def flow():
            yield from store.put("a", 1)
            yield from store.put("b", 2)  # a spilled
            removed_cold = yield from store.delete("a")
            removed_hot = yield from store.delete("b")
            removed_none = yield from store.delete("zzz")
            return removed_cold, removed_hot, removed_none

        assert run(env, flow()) == (True, True, False)
        assert len(store) == 0

    def test_snapshot_merges_tiers(self, env):
        store, _server = make_tiered(env, hot_capacity=2)

        def flow():
            for i in range(4):
                yield from store.put(f"k{i}", i)
            snapshot = yield from store.snapshot()
            return snapshot

        assert run(env, flow()) == {"k0": 0, "k1": 1, "k2": 2, "k3": 3}

    def test_working_set_size_drives_cold_fraction(self, env):
        """The §3.3 trade: a working set larger than hot capacity thrashes."""
        small, _ = make_tiered(env, hot_capacity=10)
        large, _ = make_tiered(env, hot_capacity=10)

        def drive(store, keys):
            rng = env.stream(f"tiered-{keys}")
            for i in range(keys):
                yield from store.put(f"k{i}", i)
            for _ in range(200):
                yield from store.get(f"k{rng.randrange(keys)}")

        run(env, drive(small, 8))    # fits in hot tier
        run(env, drive(large, 40))   # 4x over capacity
        assert small.stats.cold_fraction == 0.0
        assert large.stats.cold_fraction > 0.4

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            make_tiered(env, hot_capacity=0)


class TestConstraintMonitor:
    def _setup(self, env):
        broker = Broker(env)
        broker.create_topic("stock-events")
        monitor = ConstraintMonitor(env, broker)

        def apply_event(state, event):
            stock = state.setdefault("stock", {})
            stock[event["product"]] = stock.get(event["product"], 0) + event["delta"]

        monitor.watch("stock-events", apply_event)
        monitor.constraint(
            "no-negative-stock",
            lambda state: all(v >= 0 for v in state.get("stock", {}).values()),
            detail_fn=lambda state: f"stock={state.get('stock')}",
        )
        return broker, monitor

    def test_no_violation_on_valid_stream(self, env):
        broker, monitor = self._setup(env)
        monitor.start()

        def produce():
            yield from broker.publish("stock-events", "p", {"product": "p", "delta": 5})
            yield from broker.publish("stock-events", "p", {"product": "p", "delta": -3})

        run(env, produce())
        env.run(until=50)
        monitor.stop()
        assert monitor.violations == []
        assert monitor.events_seen == 2

    def test_violation_detected_with_timestamp(self, env):
        broker, monitor = self._setup(env)
        monitor.start()

        def produce():
            yield from broker.publish("stock-events", "p", {"product": "p", "delta": 2})
            yield env.timeout(20)
            yield from broker.publish("stock-events", "p", {"product": "p", "delta": -5})

        run(env, produce())
        env.run(until=100)
        monitor.stop()
        assert len(monitor.violations) == 1
        violation = monitor.violations[0]
        assert violation.constraint == "no-negative-stock"
        assert violation.at >= 20
        assert "stock" in violation.detail

    def test_violation_windows_collapse(self, env):
        broker, monitor = self._setup(env)
        monitor.start()

        def produce():
            # Go negative, stay negative for a while, then recover, then
            # go negative again much later: two windows.
            yield from broker.publish("stock-events", "p", {"product": "p", "delta": -1})
            yield env.timeout(5)
            yield from broker.publish("stock-events", "p", {"product": "p", "delta": -1})
            yield env.timeout(5)
            yield from broker.publish("stock-events", "p", {"product": "p", "delta": 10})
            yield env.timeout(300)
            yield from broker.publish("stock-events", "p", {"product": "p", "delta": -20})

        run(env, produce())
        env.run(until=1000)
        monitor.stop()
        windows = monitor.violation_windows("no-negative-stock", gap=50.0)
        assert len(windows) == 2

    def test_broken_predicate_is_reported_not_fatal(self, env):
        broker, monitor = self._setup(env)
        monitor.constraint("broken", lambda state: state["missing-key"] > 0)
        monitor.start()

        def produce():
            yield from broker.publish("stock-events", "p", {"product": "p", "delta": 1})

        run(env, produce())
        env.run(until=50)
        monitor.stop()
        broken = [v for v in monitor.violations if v.constraint == "broken"]
        assert len(broken) == 1
        assert "predicate error" in broken[0].detail

    def test_declarations_locked_after_start(self, env):
        broker, monitor = self._setup(env)
        monitor.start()
        with pytest.raises(RuntimeError):
            monitor.watch("stock-events", lambda s, e: None)
        with pytest.raises(RuntimeError):
            monitor.constraint("late", lambda s: True)
        monitor.stop()

    def test_start_requires_watches(self, env):
        broker = Broker(env)
        monitor = ConstraintMonitor(env, broker)
        with pytest.raises(RuntimeError, match="nothing to watch"):
            monitor.start()

    def test_monitor_observes_saga_inconsistency_window(self, env):
        """End to end: the monitor sees a saga's intermediate state."""
        broker, monitor = self._setup(env)
        monitor.start()

        def saga_like():
            # Step 1 commits a decrement below zero (oversold), business
            # failure detected later, compensation restores it.
            yield from broker.publish("stock-events", "p",
                                      {"product": "p", "delta": -2})
            yield env.timeout(30)  # the inconsistency window
            yield from broker.publish("stock-events", "p",
                                      {"product": "p", "delta": 2})

        run(env, saga_like())
        env.run(until=200)
        monitor.stop()
        assert monitor.violations  # the window was observed online
        final_stock = monitor.state["stock"]["p"]
        assert final_stock == 0  # and the end state is consistent

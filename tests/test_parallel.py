"""Queue-oriented parallel execution: planner, pool, executor, equivalence.

The contract under test is the one ``repro.parallel`` states: planning is
a pure function of the sequenced batch (hash-seed- and platform-stable),
execution with ``workers=N`` lands the authoritative engines in exactly
the state the inline ``workers=0`` reference produces, and every failure
a worker raises surfaces in the coordinator.
"""

import pickle
import subprocess
import sys

import pytest

from repro.db import Database, ShardedDatabase
from repro.harness import run_cells
from repro.obs import Tracer
from repro.parallel import (
    EpochExecutor,
    TxnSpec,
    TxnView,
    UndeclaredKey,
    UnknownProcedure,
    WorkerError,
    WorkerPool,
    execute_entries,
    plan_epoch,
    spin,
)
from repro.sim import Environment
from repro.transactions import Sequencer
from repro.transactions.sequencer import partition_queues


def _rmw(key, **kw):
    return TxnSpec(proc="kv.rmw", args=("kv", key), keys=(("kv", key),), **kw)


def _transfer(src, dst, amount=1):
    return TxnSpec(
        proc="kv.transfer",
        args=("kv", src, dst, amount),
        keys=(("kv", src), ("kv", dst)),
    )


def _sequence(specs):
    sequencer = Sequencer()
    return [sequencer.submit(spec) for spec in specs]


# -- planning ----------------------------------------------------------------


class TestPlanEpoch:
    def test_empty_epoch(self):
        plan = plan_epoch([], num_shards=4)
        assert plan.queues == {}
        assert plan.rounds == []
        assert plan.stats.txns == 0
        assert plan.stats.waves == 0

    def test_single_shard_txns_fill_one_round(self):
        route = lambda key: key % 4
        batch = _sequence([_rmw(k) for k in (0, 1, 2, 3, 4)])
        plan = plan_epoch(batch, num_shards=4, shard_of=route)
        assert plan.stats.rounds == 1
        assert plan.stats.cross_shard == 0
        (rnd,) = plan.rounds
        assert not rnd.rendezvous
        # Queue order within a shard is TID order.
        assert [t.tid for t in rnd.local[0]] == [1, 5]

    def test_hot_key_serializes_into_one_queue(self):
        batch = _sequence([_rmw("hot") for _ in range(6)])
        plan = plan_epoch(batch, num_shards=8)
        assert len(plan.queues) == 1
        (queue,) = plan.queues.values()
        assert [t.tid for t in queue] == [t.tid for t in batch]
        # Every txn conflicts with every other: the wave count is the
        # batch length — the planner reports the serialization it cannot
        # avoid instead of hiding it.
        assert plan.stats.waves == len(batch)
        assert plan.stats.max_queue == len(batch)

    def test_cross_shard_txn_in_every_owning_queue_exactly_once(self):
        route = lambda key: key % 3
        batch = _sequence([_rmw(0), _transfer(1, 2), _rmw(4)])
        plan = plan_epoch(batch, num_shards=3, shard_of=route)
        cross = batch[1].tid
        owning = [s for s, q in plan.queues.items()
                  if cross in [t.tid for t in q]]
        assert owning == [1, 2]
        for shard in owning:
            assert [t.tid for t in plan.queues[shard]].count(cross) == 1

    def test_rendezvous_cuts_rounds_in_tid_order(self):
        route = lambda key: key % 2
        batch = _sequence([
            _rmw(0), _rmw(1),          # round 0 locals
            _transfer(0, 1),           # round 0 rendezvous
            _rmw(2), _rmw(3),          # round 1 locals
            _transfer(2, 3),           # round 1 rendezvous
            _rmw(4),                   # round 2
        ])
        plan = plan_epoch(batch, num_shards=2, shard_of=route)
        assert plan.stats.rounds == 3
        assert [len(r.rendezvous) for r in plan.rounds] == [1, 1, 0]
        assert plan.rounds[0].rendezvous[0].tid == 3

    def test_zero_key_txn_is_rendezvous(self):
        # No declared keys means the planner cannot prove independence:
        # it lands at the barrier, not in an arbitrary queue.
        batch = _sequence([TxnSpec(proc="kv.read", args=("kv", "x"))])
        plan = plan_epoch(batch, num_shards=4)
        assert plan.rounds[0].rendezvous[0].tid == batch[0].tid

    def test_partition_queues_sorted_and_complete(self):
        batch = _sequence([_transfer("a", "b"), _rmw("c")])
        queues = partition_queues(
            batch,
            keys_of=lambda spec: set(spec.keys),
            shard_of=lambda ref: {"a": 2, "b": 0, "c": 1}[ref[1]],
        )
        assert list(queues) == sorted(queues)
        assert [t.tid for t in queues[0]] == [1]
        assert [t.tid for t in queues[2]] == [1]
        assert [t.tid for t in queues[1]] == [2]


_HASHSEED_PROBE = """
import sys
sys.path.insert(0, {src!r})
from repro.parallel import TxnSpec, plan_epoch
from repro.transactions import Sequencer

sequencer = Sequencer()
for i in range(40):
    if i % 5 == 4:
        keys = (("kv", f"k{{i}}"), ("kv", f"k{{(i * 7) % 40}}"), ("kv", "hot"))
        spec = TxnSpec(proc="kv.read", args=("kv", "hot"), keys=tuple(set(keys)))
    else:
        spec = TxnSpec(proc="kv.rmw", args=("kv", f"k{{i}}"),
                       keys=(("kv", f"k{{i}}"),))
    sequencer.submit(spec)
plan = plan_epoch(sequencer.cut_epoch(), num_shards=5)
digest = [
    (shard, [t.tid for t in queue]) for shard, queue in plan.queues.items()
]
digest.append(("rounds", [
    (sorted(r.local), [t.tid for t in r.rendezvous]) for r in plan.rounds
]))
print(digest)
"""


def test_plan_is_hash_seed_invariant(tmp_path):
    """String keys through sets must not leak ``PYTHONHASHSEED`` into the
    plan: the same batch must produce the same queues and rounds under
    different hash randomization seeds (the benches pin seed 0; plans made
    by unpinned processes must still agree)."""
    import os

    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    script = tmp_path / "probe.py"
    script.write_text(_HASHSEED_PROBE.format(src=src))
    digests = set()
    for seed in ("0", "1", "424242"):
        env = {**os.environ, "PYTHONHASHSEED": seed}
        out = subprocess.run(
            [sys.executable, str(script)], env=env,
            capture_output=True, text=True, check=True,
        )
        digests.add(out.stdout)
    assert len(digests) == 1


# -- procedures and the execution kernel -------------------------------------


class TestProcs:
    def test_undeclared_access_raises(self):
        ctx = TxnView({}, frozenset({("kv", "a")}))
        with pytest.raises(UndeclaredKey):
            ctx.get("kv", "b")
        with pytest.raises(UndeclaredKey):
            ctx.put("kv", "b", {"id": "b"})

    def test_unknown_procedure(self):
        entries = _sequence([TxnSpec(proc="no.such.proc",
                                     keys=(("kv", "a"),))])
        plan = plan_epoch(entries, num_shards=1)
        with pytest.raises(UnknownProcedure):
            execute_entries({}, plan.queues[0])

    def test_later_txns_see_earlier_writes(self):
        batch = _sequence([_rmw("a"), _rmw("a"), _rmw("a")])
        plan = plan_epoch(batch, num_shards=1)
        store = {}
        results = execute_entries(store, plan.queues[0])
        assert [tid for tid, _writes in results] == [1, 2, 3]
        assert store[("kv", "a")]["counter"] == 3

    def test_spin_is_deterministic(self):
        assert spin(1000, salt=7) == spin(1000, salt=7)
        assert spin(1000, salt=7) != spin(1000, salt=8)


# -- the worker pool ---------------------------------------------------------


class TestWorkerPool:
    def test_map_calls_preserves_task_order(self):
        with WorkerPool(2) as pool:
            results = pool.map_calls([(_square, (i,)) for i in range(7)])
        assert results == [i * i for i in range(7)]

    def test_worker_error_carries_remote_traceback(self):
        with WorkerPool(1) as pool:
            with pytest.raises(WorkerError, match="boom"):
                pool.map_calls([(_explode, ())])

    def test_pool_survives_a_failed_task(self):
        with WorkerPool(1) as pool:
            with pytest.raises(WorkerError):
                pool.map_calls([(_explode, ())])
            assert pool.map_calls([(_square, (3,))]) == [9]

    def test_serialization_is_accounted(self):
        with WorkerPool(1) as pool:
            pool.map_calls([(_square, (2,))])
            assert pool.stats.bytes_sent > 0
            assert pool.stats.bytes_received > 0
            assert pool.stats.tasks == 1

    def test_close_is_idempotent(self):
        pool = WorkerPool(1)
        pool.close()
        pool.close()
        assert pool.workers == 0


def _square(x):
    return x * x


def _explode():
    raise ValueError("boom")


# -- the epoch executor -------------------------------------------------------


def _spec_mix(n=120, accounts=24, cross_every=6):
    specs = []
    for i in range(n):
        if i % cross_every == cross_every - 1:
            src = f"acct-{(i * 5 + 2) % accounts}"
            dst = f"acct-{(i * 7 + 3) % accounts}"
            if src == dst:
                dst = f"acct-{(i * 7 + 4) % accounts}"
            specs.append(_transfer(src, dst))
        else:
            specs.append(_rmw(f"acct-{(i * 13 + 1) % accounts}"))
    return specs


def _engine_state(db):
    return sorted(
        (row["id"], sorted(row.items())) for row in db.all_rows("kv")
    )


def _run_on_database(workers, specs, accounts=24):
    env = Environment(seed=3)
    db = Database(env, name=f"exec-w{workers}")
    db.create_table("kv", primary_key="id")
    db.load("kv", [{"id": f"acct-{i}", "counter": 0, "balance": 0}
                   for i in range(accounts)])
    with EpochExecutor(db, num_shards=4, workers=workers) as executor:
        for spec in specs:
            executor.submit(spec)
        result = executor.flush()
    return db, result


class TestEpochExecutor:
    def test_inline_and_workers_agree_on_database(self):
        specs = _spec_mix()
        db0, r0 = _run_on_database(0, specs)
        db2, r2 = _run_on_database(2, specs)
        assert _engine_state(db0) == _engine_state(db2)
        assert db0._commit_seq == db2._commit_seq
        assert r0.applied == r2.applied
        assert r2.bytes_sent > 0 and r2.bytes_received > 0
        assert r0.bytes_sent == 0

    def test_inline_and_workers_agree_on_sharded_database(self):
        specs = _spec_mix(n=80)
        states = {}
        for workers in (0, 2):
            env = Environment(seed=4)
            db = ShardedDatabase(env, num_shards=3, name=f"shexec-w{workers}")
            db.create_table("kv", primary_key="id")
            db.load("kv", [{"id": f"acct-{i}", "counter": 0, "balance": 0}
                           for i in range(24)])
            with EpochExecutor(db, workers=workers) as executor:
                for spec in specs:
                    executor.submit(spec)
                executor.flush()
            states[workers] = _engine_state(db)
        assert states[0] == states[2]

    def test_multiple_epochs_accumulate(self):
        env = Environment(seed=5)
        db = Database(env, name="epochs")
        db.create_table("kv", primary_key="id")
        db.load("kv", [{"id": "a", "counter": 0}])
        with EpochExecutor(db, num_shards=2, workers=0) as executor:
            for _ in range(2):
                for _ in range(3):
                    executor.submit(_rmw("a"))
                executor.flush()
            assert executor.epochs_run == 2
        (row,) = db.all_rows("kv")
        assert row["counter"] == 6

    def test_epoch_writes_survive_crash_recovery(self):
        env = Environment(seed=6)
        db = Database(env, name="recov")
        db.create_table("kv", primary_key="id")
        with EpochExecutor(db, num_shards=2, workers=0) as executor:
            executor.submit(TxnSpec(
                proc="kv.put", args=("kv", "k1", {"id": "k1", "v": 7}),
                keys=(("kv", "k1"),),
            ))
            executor.flush()
        db.crash()
        db.recover()
        (row,) = db.all_rows("kv")
        assert row["v"] == 7

    def test_read_only_txns_consume_no_commit_seq(self):
        env = Environment(seed=8)
        db = Database(env, name="ro")
        db.create_table("kv", primary_key="id")
        db.load("kv", [{"id": "a", "counter": 0}])
        before = db._commit_seq
        with EpochExecutor(db, num_shards=2, workers=0) as executor:
            executor.submit(TxnSpec(proc="kv.read", args=("kv", "a"),
                                    keys=(("kv", "a"),)))
            result = executor.flush()
        assert result.applied == 0
        assert db._commit_seq == before

    def test_undeclared_key_surfaces_from_worker(self):
        env = Environment(seed=9)
        db = Database(env, name="undeclared")
        db.create_table("kv", primary_key="id")
        with EpochExecutor(db, num_shards=1, workers=1) as executor:
            # Declares only "a" but transfers between "a" and "b".
            executor.submit(TxnSpec(
                proc="kv.transfer", args=("kv", "a", "b", 1),
                keys=(("kv", "a"), ("kv", "b")),
            ))
            executor.submit(TxnSpec(
                proc="kv.transfer", args=("kv", "a", "b", 1),
                keys=(("kv", "a"),),
            ))
            with pytest.raises((WorkerError, UndeclaredKey)):
                executor.flush()

    def test_requires_shard_count_for_single_engine(self):
        env = Environment(seed=10)
        db = Database(env, name="noshards")
        with pytest.raises(ValueError):
            EpochExecutor(db)


# -- run_cells and result pickling -------------------------------------------


def _tiny_cell(seed):
    env = Environment(seed=seed)
    db = Database(env, name=f"cell-{seed}")
    db.create_table("kv", primary_key="id")
    db.load("kv", [{"id": "a", "counter": seed}])
    return sorted((r["id"], r["counter"]) for r in db.all_rows("kv"))


class TestRunCells:
    def test_workers_zero_runs_inline(self):
        cells = [(_tiny_cell, (s,)) for s in (1, 2, 3)]
        assert run_cells(cells) == [_tiny_cell(1), _tiny_cell(2), _tiny_cell(3)]

    def test_worker_results_match_inline_in_cell_order(self):
        cells = [(_tiny_cell, (s,)) for s in (5, 6, 7, 8)]
        assert run_cells(cells, workers=2) == run_cells(cells)

    def test_warm_pool_is_reused_and_left_open(self):
        cells = [(_tiny_cell, (s,)) for s in (1, 2)]
        with WorkerPool(2) as pool:
            first = run_cells(cells, workers=2, pool=pool)
            second = run_cells(cells, workers=2, pool=pool)
            assert first == second
            assert pool.workers == 2


def test_tracer_pickles_detached():
    env = Environment(seed=11, tracer=Tracer())
    span = env.tracer.begin("op:x")
    env.tracer.end(span)
    clone = pickle.loads(pickle.dumps(env.tracer))
    assert len(clone) == 1
    assert clone.spans[0].name == "op:x"
    assert clone.clock() == 0.0

"""The causal tracing subsystem: spans, context propagation, exporters."""

import json

from repro.db import DatabaseServer, IsolationLevel
from repro.messaging.rpc import RpcClient, RpcServer
from repro.net.latency import Latency
from repro.net.network import Network
from repro.obs import (
    NULL_TRACER,
    Tracer,
    chrome_trace_json,
    critical_path_report,
)
from repro.sim import Environment


def traced_env(seed=7):
    env = Environment(seed=seed, tracer=Tracer())
    return env, env.tracer


# -- tracer core -------------------------------------------------------------


def test_spans_nest_under_current():
    env, tracer = traced_env()

    def work(env):
        outer = tracer.begin("outer")
        yield env.timeout(2)
        inner = tracer.begin("inner")
        yield env.timeout(3)
        tracer.end(inner)
        tracer.end(outer)

    env.process(work(env))
    env.run()
    outer, inner = tracer.find("outer")[0], tracer.find("inner")[0]
    assert inner.parent_id == outer.span_id
    assert outer.start == 0.0 and outer.end == 5.0
    assert inner.start == 2.0 and inner.end == 5.0
    assert outer.duration == 5.0


def test_spawned_process_inherits_context():
    env, tracer = traced_env()

    def child(env):
        span = tracer.begin("child")
        yield env.timeout(1)
        tracer.end(span)

    def parent(env):
        span = tracer.begin("parent")
        yield env.process(child(env))
        tracer.end(span)

    env.process(parent(env))
    env.run()
    child_span = tracer.find("child")[0]
    assert child_span.parent_id == tracer.find("parent")[0].span_id


def test_context_is_per_process_across_interleaving():
    """Two concurrent processes must not leak spans into each other."""
    env, tracer = traced_env()

    def worker(env, name, delay):
        span = tracer.begin(name)
        yield env.timeout(delay)
        inner = tracer.begin(f"{name}.inner")
        yield env.timeout(delay)
        tracer.end(inner)
        tracer.end(span)

    env.process(worker(env, "a", 1))
    env.process(worker(env, "b", 1.5))
    env.run()
    for name in ("a", "b"):
        inner = tracer.find(f"{name}.inner")[0]
        assert inner.parent_id == tracer.find(name)[0].span_id


def test_future_resolution_restores_waiter_context():
    env, tracer = traced_env()
    gate = env.future(label="gate")

    def waiter(env):
        span = tracer.begin("waiter")
        yield gate
        inner = tracer.event("after-wake")
        tracer.end(span)
        assert inner.parent_id == span.span_id

    def waker(env):
        yield env.timeout(4)
        gate.succeed("go")

    env.process(waiter(env))
    env.process(waker(env))
    env.run()
    assert tracer.find("waiter")[0].end == 4.0


def test_end_is_idempotent_and_event_is_instant():
    env, tracer = traced_env()
    span = tracer.begin("once")
    tracer.end(span)
    first_end = span.end
    tracer.end(span)  # late duplicate end keeps the first timestamp
    assert span.end == first_end
    marker = tracer.event("marker", reason="x")
    assert marker.start == marker.end
    assert marker.tags["reason"] == "x"


def test_null_tracer_records_nothing():
    env = Environment(seed=1)  # default: NULL_TRACER
    assert env.tracer is NULL_TRACER
    span = env.tracer.begin("ignored")
    span.annotate(k=1)
    env.tracer.end(span)
    env.tracer.event("ignored")
    assert len(env.tracer) == 0
    assert env.tracer.roots() == []


# -- instrumentation ---------------------------------------------------------


def test_db_spans_cover_transaction_lifecycle():
    env, tracer = traced_env()
    server = DatabaseServer(env, name="t")
    server.create_table("kv")
    server.load("kv", [{"id": 1, "v": 0}])

    def txn(env):
        t = yield from server.begin(IsolationLevel.SERIALIZABLE)
        yield from server.get(t, "kv", 1)
        yield from server.put(t, "kv", 1, {"id": 1, "v": 1})
        yield from server.commit(t)

    env.run_until(env.process(txn(env)))
    names = [s.name for s in tracer.spans]
    for expected in ("db.begin", "db.get", "db.put", "db.commit"):
        assert expected in names


def test_lock_wait_span_only_when_blocked():
    env, tracer = traced_env()
    server = DatabaseServer(env, name="t")
    server.create_table("kv")
    server.load("kv", [{"id": 1, "v": 0}])

    def writer(env, delay):
        yield env.timeout(delay)
        t = yield from server.begin(IsolationLevel.SERIALIZABLE)
        yield from server.update(t, "kv", 1, {"v": delay})
        yield env.timeout(20)  # hold the X lock so the other writer queues
        yield from server.commit(t)

    first = env.process(writer(env, 0))
    second = env.process(writer(env, 1))
    env.run_until(first)
    env.run_until(second)
    waits = tracer.find("db.lock_wait")
    assert waits, "the queued writer should surface a lock-wait span"
    assert all(w.duration > 0 for w in waits)


def test_rpc_trace_links_handler_to_caller_across_nodes():
    env, tracer = traced_env()
    network = Network(env, default_latency=Latency.intra_zone())
    network.add_node("client")
    network.add_node("server")
    server = RpcServer(network, network.node("server"))

    def echo(payload):
        yield network.env.timeout(1)
        return payload

    server.register("echo", echo)
    client = RpcClient(network, network.node("client"))

    def call(env):
        result = yield from client.call("server", "echo", "hi")
        return result

    proc = env.process(call(env))
    assert env.run_until(proc) == "hi"

    call_span = tracer.find("rpc.call")[0]
    handle_span = tracer.find("rpc.handle")[0]
    assert handle_span.parent_id == call_span.span_id  # causal link over the wire
    assert call_span.tags["attempts"] == 1
    msg_spans = tracer.find("net.msg")
    assert len(msg_spans) == 2  # request + reply
    assert all(s.tags["outcome"] == "delivered" for s in msg_spans)


# -- exporters ---------------------------------------------------------------


def run_traced_scenario(seed=11):
    env, tracer = traced_env(seed)
    server = DatabaseServer(env, name="x")
    server.create_table("kv")
    server.load("kv", [{"id": i, "v": 0} for i in range(4)])

    def op(env, key):
        t = yield from server.begin(IsolationLevel.SNAPSHOT)
        yield from server.get(t, "kv", key)
        yield from server.put(t, "kv", key, {"id": key, "v": key})
        yield from server.commit(t)

    def main(env):
        span = env.tracer.begin("op:batch", parent=None)
        for key in range(4):
            yield from op(env, key)
        env.tracer.end(span)

    env.run_until(env.process(main(env)))
    return tracer


def test_chrome_export_is_valid_and_nested():
    tracer = run_traced_scenario()
    payload = json.loads(chrome_trace_json(tracer))
    events = payload["traceEvents"]
    assert events, "export should contain events"
    complete = [e for e in events if e["ph"] == "X"]
    spans_by_id = {e["args"]["span_id"]: e for e in complete}
    for event in complete:
        assert event["ts"] >= 0 and event["dur"] >= 0
        parent_id = event["args"].get("parent_id")
        if parent_id in spans_by_id:
            parent = spans_by_id[parent_id]
            assert event["ts"] >= parent["ts"]
            # 1e-6 us absorbs IEEE addition noise; intervals are rounded
            # to 1e-3 us, so any real violation is 1000x larger.
            assert event["ts"] + event["dur"] <= parent["ts"] + parent["dur"] + 1e-6


def test_chrome_export_byte_identical_across_same_seed_runs():
    a = chrome_trace_json(run_traced_scenario(seed=23))
    b = chrome_trace_json(run_traced_scenario(seed=23))
    assert a == b


def test_critical_path_report_shows_slowest_root():
    tracer = run_traced_scenario()
    report = critical_path_report(tracer, top=1)
    assert "critical path #1: op:batch" in report
    assert "db.commit" in report
    assert "self=" in report


def test_critical_path_report_empty_tracer():
    assert "no spans" in critical_path_report(Tracer())

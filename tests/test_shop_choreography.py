"""Integration tests for the choreographed marketplace checkout."""

import pytest

from repro.apps.shop_choreography import ChoreographedShop
from repro.sim import Environment
from repro.workloads.marketplace import CheckoutOp, MarketplaceWorkload


@pytest.fixture
def env():
    return Environment(seed=241)


@pytest.fixture
def workload():
    return MarketplaceWorkload(num_products=6, initial_stock=50,
                               payment_failure_rate=0.25)


@pytest.fixture
def shop(env, workload):
    return ChoreographedShop(env, workload)


def run(env, gen):
    return env.run_until(env.process(gen))


def check(workload, state):
    violations = []
    for invariant in workload.invariants():
        violations.extend(invariant.check(state))
    return violations


class TestChoreographedCheckout:
    def test_happy_path_completes(self, env, workload, shop):
        op = CheckoutOp(op_id="o1", customer="c",
                        cart=(("prod-0000", 2),), payment_fails=False)
        run(env, shop.execute(op))
        state = shop.final_state()
        assert [o["id"] for o in state["orders"]] == ["o1"]
        assert [p["order_id"] for p in state["payments"]] == ["o1"]
        product = next(p for p in state["products"] if p["id"] == "prod-0000")
        assert product["stock"] == 48 and product["reserved"] == 0
        assert check(workload, state) == []

    def test_payment_failure_compensates(self, env, workload, shop):
        op = CheckoutOp(op_id="o2", customer="c",
                        cart=(("prod-0001", 3),), payment_fails=True)

        def flow():
            try:
                yield from shop.execute(op)
                return "completed"
            except RuntimeError:
                return "compensated"

        assert run(env, flow()) == "compensated"
        state = shop.final_state()
        assert state["orders"] == [] and state["payments"] == []
        assert check(workload, state) == []

    def test_out_of_stock_rejected_without_damage(self, env, workload, shop):
        op = CheckoutOp(op_id="o3", customer="c",
                        cart=(("prod-0002", 999),), payment_fails=False)

        def flow():
            try:
                yield from shop.execute(op)
            except RuntimeError:
                return "compensated"

        assert run(env, flow()) == "compensated"
        assert check(workload, shop.final_state()) == []

    def test_concurrent_checkouts_keep_invariants(self, env, workload, shop):
        ops = list(workload.operations(env.stream("ops"), 25))
        outcomes = []

        def one(op):
            try:
                yield from shop.execute(op)
                outcomes.append("ok")
            except RuntimeError:
                outcomes.append("comp")

        for op in ops:
            env.process(one(op))
        env.run(until=50_000)
        assert len(outcomes) == 25
        state = shop.final_state()
        assert check(workload, state) == []
        assert len(state["orders"]) == outcomes.count("ok")

    def test_no_orchestrator_exists(self, shop):
        """Outcome knowledge lives only in the event stream."""
        assert shop.monitor.outcome_of("never-run") is None

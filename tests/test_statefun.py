"""Tests for the Statefun-like runtime: entities, messaging, rewind."""

import pytest

from repro.dataflow import StatefunRuntime
from repro.net.latency import Latency
from repro.sim import Environment
from repro.storage.object_store import ObjectStore, ObjectStoreServer


@pytest.fixture
def env():
    return Environment(seed=151)


def make_runtime(env, **kwargs):
    kwargs.setdefault("checkpoint_interval", 50.0)
    kwargs.setdefault(
        "checkpoint_store",
        ObjectStoreServer(env, ObjectStore(), latency=Latency.constant(2.0)),
    )
    runtime = StatefunRuntime(env, **kwargs)

    @runtime.function("counter")
    def counter(ctx, key, message):
        ctx.state["count"] = ctx.state.get("count", 0) + message
        ctx.egress((key, ctx.state["count"]))
        return
        yield  # pragma: no cover

    @runtime.function("greeter")
    def greeter(ctx, key, message):
        ctx.state["seen"] = ctx.state.get("seen", 0) + 1
        ctx.send("counter", message["forward_to"], 1)
        return
        yield  # pragma: no cover

    @runtime.function("transfer")
    def transfer(ctx, key, message):
        # Debits self, then *asynchronously* credits the destination:
        # atomic per entity, not across them (the §4.2 caveat).
        ctx.state["balance"] = ctx.state.get("balance", 0) - message["amount"]
        ctx.send("credit", message["dst"], message["amount"])
        return
        yield  # pragma: no cover

    @runtime.function("credit")
    def credit(ctx, key, amount):
        ctx.state["balance"] = ctx.state.get("balance", 0) + amount
        return
        yield  # pragma: no cover

    return runtime


class TestBasics:
    def test_ingress_invokes_function(self, env):
        runtime = make_runtime(env)
        runtime.start()
        runtime.ingress("counter", "a", 5)
        env.run(until=30)
        assert runtime.state_of("counter", "a") == {"count": 5}

    def test_entity_state_is_private(self, env):
        runtime = make_runtime(env)
        runtime.start()
        runtime.ingress("counter", "a", 1)
        runtime.ingress("counter", "b", 10)
        env.run(until=30)
        assert runtime.state_of("counter", "a")["count"] == 1
        assert runtime.state_of("counter", "b")["count"] == 10

    def test_function_to_function_messaging(self, env):
        runtime = make_runtime(env)
        runtime.start()
        runtime.ingress("greeter", "g1", {"forward_to": "target"})
        runtime.ingress("greeter", "g1", {"forward_to": "target"})
        env.run(until=50)
        assert runtime.state_of("greeter", "g1")["seen"] == 2
        assert runtime.state_of("counter", "target")["count"] == 2

    def test_unknown_function_rejected(self, env):
        runtime = make_runtime(env)
        with pytest.raises(KeyError):
            runtime.ingress("nope", "k", 1)

    def test_run_to_completion_per_entity(self, env):
        """Concurrent messages to one entity serialize (no lost updates)."""
        runtime = make_runtime(env, work_ms=2.0)
        runtime.start()
        for _ in range(10):
            runtime.ingress("counter", "hot", 1)
        env.run(until=200)
        assert runtime.state_of("counter", "hot")["count"] == 10

    def test_egress_released_at_checkpoint(self, env):
        runtime = make_runtime(env, checkpoint_interval=40.0)
        runtime.start()
        runtime.ingress("counter", "a", 1)
        env.run(until=20)
        assert runtime.egress_records() == []  # buffered
        env.run(until=120)
        assert ("a", 1) in runtime.egress_records()


class TestNoIsolationAcrossEntities:
    def test_transfer_money_in_flight_visible(self, env):
        """Between debit and async credit the total is short (§4.2)."""
        runtime = make_runtime(env, work_ms=1.0, hop_latency=5.0, num_partitions=4)
        runtime.start()
        # Fund src via credit.
        runtime.ingress("credit", "src", 100)
        env.run(until=20)
        # Observe totals while a transfer's credit hop is in flight.
        keys = ["src", "dst"]
        totals = []

        def observer():
            for _ in range(30):
                yield env.timeout(0.5)
                total = sum(
                    runtime.state_of("credit", k).get("balance", 0)
                    + runtime.state_of("transfer", k).get("balance", 0)
                    for k in keys
                )
                totals.append(total)

        runtime.ingress("transfer", "src", {"dst": "dst", "amount": 40})
        env.process(observer())
        env.run(until=60)
        assert min(totals) < 100  # money observed missing mid-flight
        assert totals[-1] == 100  # eventually consistent


class TestRewindRecovery:
    def test_state_survives_via_checkpoint_and_replay(self, env):
        runtime = make_runtime(env, checkpoint_interval=30.0)
        runtime.start()
        for i in range(6):
            env.schedule(10.0 * i, runtime.ingress, "counter", "k", 1)
        env.run(until=65)
        runtime.crash()
        env.run_until(env.process(runtime.recover()))
        env.run(until=300)
        assert runtime.state_of("counter", "k")["count"] == 6  # exactly once
        assert runtime.stats.recoveries == 1

    def test_recovery_without_checkpoint_replays_all(self, env):
        runtime = make_runtime(env, checkpoint_interval=10_000.0)
        runtime.start()
        for _ in range(4):
            runtime.ingress("counter", "k", 1)
        env.run(until=50)
        runtime.crash()
        env.run_until(env.process(runtime.recover()))
        env.run(until=200)
        assert runtime.state_of("counter", "k")["count"] == 4
        assert runtime.stats.replayed == 4

    def test_inflight_cascades_abandoned_then_replayed(self, env):
        """A crash mid-cascade does not double-apply after replay."""
        runtime = make_runtime(env, work_ms=2.0, hop_latency=10.0,
                               checkpoint_interval=10_000.0)
        runtime.start()
        runtime.ingress("transfer", "src", {"dst": "dst", "amount": 10})
        env.run(until=3)  # debit applied, credit hop still in flight
        runtime.crash()
        env.run_until(env.process(runtime.recover()))
        env.run(until=300)
        assert runtime.state_of("transfer", "src")["balance"] == -10
        assert runtime.state_of("credit", "dst")["balance"] == 10  # once!

    def test_egress_exactly_once_across_crash(self, env):
        runtime = make_runtime(env, checkpoint_interval=30.0)
        runtime.start()
        runtime.ingress("counter", "k", 1)
        env.run(until=65)  # checkpoint covered the egress
        covered = list(runtime.egress_records())
        runtime.crash()
        env.run_until(env.process(runtime.recover()))
        env.run(until=300)
        # Replay does not re-release already-covered egress... but since
        # the checkpoint offset covers the input, nothing replays at all.
        assert runtime.egress_records() == covered

    def test_double_start_rejected(self, env):
        runtime = make_runtime(env)
        runtime.start()
        with pytest.raises(RuntimeError):
            runtime.start()

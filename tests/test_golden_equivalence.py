"""Golden same-seed equivalence: the fast paths are invisible.

``Environment(fast_path=False)`` keeps the pre-optimization heap-only
executor as a permanent reference implementation, and the storage engine
keeps its own reference modes (``gc=False``, ``group_commit=False``,
``copy_reads=True``).  These tests run real claim-bench workloads in both
modes and assert the *formatted result tables* and a *Chrome trace export*
are byte-identical: a fast path may change wall-clock time only, never
virtual-time behaviour.
"""

import pytest

from repro.db.engine import Database
from repro.harness import WorkloadDriver, format_rows
from repro.obs import Tracer
from repro.sim import Environment
from repro.workloads import ClosedLoop, TransferWorkload


def _force_fast_path(monkeypatch, value):
    """Route every Environment construction through fast_path=``value``."""
    original = Environment.__init__

    def patched(self, seed=0, tracer=None, fast_path=True):
        original(self, seed=seed, tracer=tracer, fast_path=value)

    monkeypatch.setattr(Environment, "__init__", patched)


def _force_storage_modes(monkeypatch, optimized):
    """Route every Database construction through the storage fast paths
    (``optimized=True``) or their reference modes (``optimized=False``)."""
    original = Database.__init__

    def patched(self, env, name="db", **kwargs):
        kwargs.update(
            gc=optimized, group_commit=optimized, copy_reads=not optimized
        )
        original(self, env, name, **kwargs)

    monkeypatch.setattr(Database, "__init__", patched)


def _b1_table(workers=0):
    from benchmarks import bench_b1_ycsb

    results = bench_b1_ycsb.run_all(workers=workers)
    return format_rows(
        ["mix/level", "ops/s", "p50 ms", "p99 ms", "lost updates"],
        [[r.label, f"{r.throughput:.0f}", f"{r.p(50):.2f}",
          f"{r.p(99):.2f}", r.extra["lost_updates"]] for r in results],
    )


def _c1_table(workers=0):
    from benchmarks import bench_c1_paradigms

    results = bench_c1_paradigms.run_all(workers=workers)
    return format_rows(
        ["paradigm", "ops/s", "p50 ms", "p99 ms"],
        [[r.label, f"{r.throughput:.0f}", f"{r.p(50):.2f}", f"{r.p(99):.2f}"]
         for r in results],
    )


def _c10_table(workers=0):
    from benchmarks import bench_c10_tpcc

    results = bench_c10_tpcc.run_all(workers=workers)
    return format_rows(
        ["build", "ops/s", "p50 ms", "p99 ms", "conflicts", "aborts",
         "anomalies"],
        [[r.label, f"{r.throughput:.0f}", f"{r.p(50):.1f}", f"{r.p(99):.1f}",
          r.extra.get("conflicts"), r.extra.get("aborts"),
          r.anomalies.summary()] for r in results],
    )


def _traced_transfer_json():
    from repro.apps import DbBank

    tracer = Tracer()
    env = Environment(seed=77, tracer=tracer)
    workload = TransferWorkload(num_accounts=20, theta=0.7)
    bank = DbBank(env, workload)
    ops = list(workload.operations(env.stream("ops:golden"), 64))
    driver = WorkloadDriver(env, label="golden")
    driver.ledger = bank.ledger
    arrival = ClosedLoop(clients=4, ops_per_client=16, think_time_ms=2.0)
    result = env.run_until(
        env.process(driver.run(ops, bank.execute, arrival))
    )
    return result.trace_json()


@pytest.mark.parametrize("table_fn", [_b1_table, _c1_table],
                         ids=["B1", "C1"])
def test_result_tables_identical_across_modes(monkeypatch, table_fn):
    _force_fast_path(monkeypatch, True)
    fast = table_fn()
    _force_fast_path(monkeypatch, False)
    heap_only = table_fn()
    assert fast == heap_only


def test_trace_export_identical_across_modes(monkeypatch):
    _force_fast_path(monkeypatch, True)
    fast = _traced_transfer_json()
    _force_fast_path(monkeypatch, False)
    heap_only = _traced_transfer_json()
    assert fast == heap_only


@pytest.mark.parametrize("table_fn", [_b1_table, _c1_table],
                         ids=["B1", "C1"])
def test_result_tables_identical_across_storage_modes(monkeypatch, table_fn):
    """GC + group commit + copy elision on vs. all reference modes."""
    _force_storage_modes(monkeypatch, True)
    optimized = table_fn()
    _force_storage_modes(monkeypatch, False)
    reference = table_fn()
    assert optimized == reference


def test_trace_export_identical_across_storage_modes(monkeypatch):
    _force_storage_modes(monkeypatch, True)
    optimized = _traced_transfer_json()
    _force_storage_modes(monkeypatch, False)
    reference = _traced_transfer_json()
    assert optimized == reference


def _force_adaptive(monkeypatch, adaptive):
    """Route every Database construction through ``adaptive=``."""
    original = Database.__init__

    def patched(self, env, name="db", **kwargs):
        kwargs.update(adaptive=adaptive)
        original(self, env, name, **kwargs)

    monkeypatch.setattr(Database, "__init__", patched)


@pytest.mark.parametrize("table_fn", [_b1_table, _c1_table],
                         ids=["B1", "C1"])
def test_result_tables_identical_across_adaptive_modes(monkeypatch, table_fn):
    """Load-adaptive flush/GC windows move durability timing only: commit
    acks stay synchronous, so client-visible results must not change.
    (Traces are exempt: group-flush event timestamps legitimately shift.)"""
    _force_adaptive(monkeypatch, True)
    adaptive = table_fn()
    _force_adaptive(monkeypatch, False)
    reference = table_fn()
    assert adaptive == reference


def test_adaptive_mode_defaults_off():
    """The golden contract requires the flag to be opt-in."""
    db = Database(Environment(seed=1))
    assert db.load_signal is None


# -- grant fast path (uncontended lock/pool acquires skip the kernel) ---------


def _force_fast_grants(monkeypatch, value):
    """Route every Database and DatabaseServer through ``fast_grants=``."""
    from repro.db.server import DatabaseServer

    original_db = Database.__init__

    def patched_db(self, env, name="db", **kwargs):
        kwargs["fast_grants"] = value
        original_db(self, env, name, **kwargs)

    monkeypatch.setattr(Database, "__init__", patched_db)
    original_server = DatabaseServer.__init__

    def patched_server(self, env, name="db", *args, **kwargs):
        kwargs["fast_grants"] = value
        original_server(self, env, name, *args, **kwargs)

    monkeypatch.setattr(DatabaseServer, "__init__", patched_server)


@pytest.mark.parametrize("table_fn", [_b1_table, _c1_table],
                         ids=["B1", "C1"])
def test_result_tables_identical_across_grant_modes(monkeypatch, table_fn):
    """Uncontended acquires resolving synchronously (fast_grants=True) vs
    always round-tripping through the kernel (the reference mode) must
    produce byte-identical result tables: a grant that is already done
    carries no virtual-time charge either way."""
    _force_fast_grants(monkeypatch, True)
    fast = table_fn()
    _force_fast_grants(monkeypatch, False)
    reference = table_fn()
    assert fast == reference


def test_trace_export_identical_across_grant_modes(monkeypatch):
    _force_fast_grants(monkeypatch, True)
    fast = _traced_transfer_json()
    _force_fast_grants(monkeypatch, False)
    reference = _traced_transfer_json()
    assert fast == reference


# -- parallel execution (repro.parallel): where cells run is invisible --------


@pytest.mark.parametrize("table_fn", [_b1_table, _c1_table, _c10_table],
                         ids=["B1", "C1", "C10"])
def test_result_tables_identical_across_worker_counts(table_fn):
    """``run_all(workers=2)`` fans benchmark cells out to OS worker
    processes; each cell is a pure function of its seed, so the result
    tables must be byte-identical to the single-process reference."""
    assert table_fn(workers=0) == table_fn(workers=2)


def test_trace_export_identical_through_workers():
    """A traced run shipped home from a worker process must export the
    same Chrome trace JSON as one produced inline — span ids, virtual
    timestamps, and tags all cross the pickle boundary intact."""
    from repro.harness import run_cells

    inline = _traced_transfer_json()
    via_workers = run_cells(
        [(_traced_transfer_json, ()), (_traced_transfer_json, ())],
        workers=2,
    )
    assert via_workers == [inline, inline]

"""Tests for the log-based broker: offsets, groups, delivery semantics."""

import pytest

from repro.messaging import Broker
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment(seed=4)


@pytest.fixture
def broker(env):
    b = Broker(env)
    b.create_topic("orders", partitions=3)
    return b


def run(env, gen):
    return env.run_until(env.process(gen))


class TestTopics:
    def test_create_duplicate_topic_raises(self, broker):
        with pytest.raises(ValueError):
            broker.create_topic("orders")

    def test_unknown_topic_raises(self, env, broker):
        def flow():
            yield from broker.publish("nope", "k", "v")

        with pytest.raises(KeyError):
            run(env, flow())

    def test_invalid_partition_count(self, broker):
        with pytest.raises(ValueError):
            broker.create_topic("bad", partitions=0)

    def test_key_routing_is_sticky(self, broker):
        p1 = broker.partition_for("orders", "customer-42")
        p2 = broker.partition_for("orders", "customer-42")
        assert p1 == p2


class TestPublishPoll:
    def test_publish_then_poll(self, env, broker):
        def flow():
            yield from broker.publish("orders", "k1", {"amount": 5})
            consumer = broker.consumer("g", "orders")
            batch = yield from consumer.poll()
            return batch

        batch = run(env, flow())
        assert len(batch) == 1
        assert batch[0].value == {"amount": 5}
        assert batch[0].offset == 0

    def test_poll_blocks_until_data(self, env, broker):
        def consumer_flow():
            consumer = broker.consumer("g", "orders")
            batch = yield from consumer.poll()
            return (env.now, batch[0].value)

        def producer_flow():
            yield env.timeout(10)
            yield from broker.publish("orders", "k", "late")

        proc = env.process(consumer_flow())
        env.process(producer_flow())
        env.run()
        arrived_at, value = proc.result()
        assert arrived_at >= 10
        assert value == "late"

    def test_poll_nowait_returns_empty(self, env, broker):
        def flow():
            consumer = broker.consumer("g", "orders")
            batch = yield from consumer.poll(wait=False)
            return batch

        assert run(env, flow()) == []

    def test_ordering_within_partition(self, env, broker):
        def flow():
            for i in range(5):
                yield from broker.publish("orders", "same-key", i)
            consumer = broker.consumer("g", "orders")
            batch = yield from consumer.poll(max_records=10)
            return [r.value for r in batch]

        assert run(env, flow()) == [0, 1, 2, 3, 4]

    def test_max_records_respected(self, env, broker):
        def flow():
            for i in range(10):
                yield from broker.publish("orders", "same-key", i)
            consumer = broker.consumer("g", "orders")
            batch = yield from consumer.poll(max_records=4)
            return len(batch)

        assert run(env, flow()) == 4

    def test_independent_groups_see_all_records(self, env, broker):
        def flow():
            yield from broker.publish("orders", "k", "v")
            c1 = broker.consumer("group-a", "orders")
            c2 = broker.consumer("group-b", "orders")
            b1 = yield from c1.poll()
            b2 = yield from c2.poll()
            return len(b1), len(b2)

        assert run(env, flow()) == (1, 1)


class TestDeliverySemantics:
    def test_at_least_once_redelivers_uncommitted(self, env, broker):
        """Crash after processing but before commit -> duplicate delivery."""

        def flow():
            yield from broker.publish("orders", "k", "v")
            first = broker.consumer("g", "orders")
            batch1 = yield from first.poll()
            # first "crashes" here without committing
            replacement = broker.consumer("g", "orders")
            batch2 = yield from replacement.poll()
            return batch1[0].offset, batch2[0].offset

        offsets = run(env, flow())
        assert offsets == (0, 0)  # same record twice
        assert broker.stats.redelivered == 1

    def test_at_most_once_loses_uncommitted(self, env, broker):
        """Commit before processing -> a crash loses the in-flight batch."""

        def flow():
            yield from broker.publish("orders", "k", "v")
            first = broker.consumer("g", "orders")
            batch1 = yield from first.poll()
            first.commit_now()  # committed before "processing"
            # first crashes before acting on batch1
            replacement = broker.consumer("g", "orders")
            batch2 = yield from replacement.poll(wait=False)
            return len(batch1), len(batch2)

        assert run(env, flow()) == (1, 0)  # the record is gone forever

    def test_commit_persists_position(self, env, broker):
        def flow():
            for i in range(3):
                yield from broker.publish("orders", "k", i)
            consumer = broker.consumer("g", "orders")
            yield from consumer.poll(max_records=2)
            yield from consumer.commit()
            fresh = broker.consumer("g", "orders")
            batch = yield from fresh.poll()
            return [r.value for r in batch]

        assert run(env, flow()) == [2]

    def test_lag_accounting(self, env, broker):
        def flow():
            for i in range(5):
                yield from broker.publish("orders", "k", i)
            assert broker.lag("g", "orders") == 5
            consumer = broker.consumer("g", "orders")
            yield from consumer.poll(max_records=3)
            assert broker.lag("g", "orders") == 5  # not yet committed
            yield from consumer.commit()
            assert broker.lag("g", "orders") == 2
            return True

        assert run(env, flow())

    def test_redelivery_window(self, env, broker):
        def flow():
            for i in range(4):
                yield from broker.publish("orders", "k", i)
            consumer = broker.consumer("g", "orders")
            yield from consumer.poll(max_records=4)
            window = consumer.redelivery_window()
            yield from consumer.commit()
            return window, consumer.redelivery_window()

        assert run(env, flow()) == (4, 0)

"""Tests for cooperative consumer groups with partition rebalancing."""

import pytest

from repro.messaging import Broker
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment(seed=281)


@pytest.fixture
def broker(env):
    b = Broker(env)
    b.create_topic("events", partitions=4)
    return b


def run(env, gen):
    return env.run_until(env.process(gen))


class TestAssignment:
    def test_single_member_owns_all_partitions(self, env, broker):
        member = broker.join_group("g", "events", "m1")
        assert member.assigned_partitions == [0, 1, 2, 3]

    def test_two_members_split_partitions(self, env, broker):
        m1 = broker.join_group("g", "events", "m1")
        m2 = broker.join_group("g", "events", "m2")
        assert sorted(m1.assigned_partitions + m2.assigned_partitions) == [0, 1, 2, 3]
        assert not (set(m1.assigned_partitions) & set(m2.assigned_partitions))

    def test_duplicate_member_id_rejected(self, env, broker):
        broker.join_group("g", "events", "m1")
        with pytest.raises(ValueError):
            broker.join_group("g", "events", "m1")

    def test_more_members_than_partitions(self, env, broker):
        members = [broker.join_group("g", "events", f"m{i}") for i in range(6)]
        owned = [p for m in members for p in m.assigned_partitions]
        assert sorted(owned) == [0, 1, 2, 3]
        idle = [m for m in members if not m.assigned_partitions]
        assert len(idle) == 2


class TestGroupConsumption:
    def test_records_split_across_members_no_overlap(self, env, broker):
        m1 = broker.join_group("g", "events", "m1")
        m2 = broker.join_group("g", "events", "m2")
        for i in range(40):
            broker.publish_now("events", f"key-{i}", i)
        seen = {"m1": [], "m2": []}

        def pump(member, name):
            while sum(len(v) for v in seen.values()) < 40:
                batch = yield from member.poll(max_records=8, wait=False)
                seen[name].extend(r.value for r in batch)
                yield from member.commit()
                if not batch:
                    yield env.timeout(1.0)

        env.process(pump(m1, "m1"))
        env.process(pump(m2, "m2"))
        env.run(until=5000)
        assert sorted(seen["m1"] + seen["m2"]) == list(range(40))
        assert seen["m1"] and seen["m2"]  # both actually worked

    def test_member_leave_hands_partitions_to_survivor(self, env, broker):
        m1 = broker.join_group("g", "events", "m1")
        m2 = broker.join_group("g", "events", "m2")
        for i in range(20):
            broker.publish_now("events", f"key-{i}", i)
        collected = []

        def phase_one():
            batch = yield from m2.poll(max_records=100, wait=False)
            collected.extend(r.value for r in batch)
            yield from m2.commit()

        run(env, phase_one())
        m2.leave()  # m1 must take over m2's partitions

        def phase_two():
            while len(collected) < 20:
                batch = yield from m1.poll(max_records=100, wait=False)
                collected.extend(r.value for r in batch)
                yield from m1.commit()
                if not batch:
                    yield env.timeout(1.0)

        env.process(phase_two())
        env.run(until=5000)
        assert sorted(collected) == list(range(20))

    def test_uncommitted_records_redelivered_after_leave(self, env, broker):
        m1 = broker.join_group("g", "events", "m1")
        m2 = broker.join_group("g", "events", "m2")
        for i in range(12):
            broker.publish_now("events", f"key-{i}", i)

        def crash_without_commit():
            batch = yield from m2.poll(max_records=100, wait=False)
            return [r.value for r in batch]  # crashed: no commit

        lost_batch = run(env, crash_without_commit())
        assert lost_batch
        m2.leave()
        survivor_sees = []

        def survivor():
            while len(survivor_sees) < 12:
                batch = yield from m1.poll(max_records=100, wait=False)
                survivor_sees.extend(r.value for r in batch)
                yield from m1.commit()
                if not batch:
                    yield env.timeout(1.0)

        env.process(survivor())
        env.run(until=5000)
        assert sorted(survivor_sees) == list(range(12))  # nothing lost
        assert broker.stats.redelivered >= len(lost_batch)

    def test_new_member_joining_rebalances_live(self, env, broker):
        m1 = broker.join_group("g", "events", "m1")
        assert m1.assigned_partitions == [0, 1, 2, 3]
        broker.join_group("g", "events", "m2")
        assert m1.assigned_partitions == [0, 2]  # shrunk at next refresh

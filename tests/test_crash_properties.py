"""Property tests: exactly-once guarantees under randomized crash points.

The strongest claim the dataflow-family runtimes make is that a crash at
*any* moment leaves state effects exactly-once after recovery.  These
tests let hypothesis pick the crash time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import StatefunBank, TxnDataflowBank
from repro.dataflow import DataflowRuntime, JobGraph
from repro.net.latency import Latency
from repro.sim import Environment
from repro.storage.object_store import ObjectStore, ObjectStoreServer
from repro.workloads import TransferWorkload


@settings(max_examples=12, deadline=None)
@given(
    crash_at=st.floats(min_value=5.0, max_value=400.0),
    checkpoint_interval=st.sampled_from([20.0, 75.0, 300.0]),
    seed=st.integers(0, 100),
)
def test_dataflow_exactly_once_for_any_crash_time(crash_at, checkpoint_interval, seed):
    env = Environment(seed=seed)
    graph = JobGraph("counts")
    graph.source("events", emit_interval=4.0)

    def counting(state, key, value, emit):
        total = state.get(key, 0) + value
        state.put(key, total)
        emit(key, total)

    graph.operator("count", counting, parallelism=2, work_ms=0.1)
    graph.sink("out", mode="exactly_once")
    graph.connect("events", "count")
    graph.connect("count", "out")
    runtime = DataflowRuntime(
        env, graph, checkpoint_interval=checkpoint_interval,
        checkpoint_store=ObjectStoreServer(env, ObjectStore(),
                                           latency=Latency.constant(2.0)),
    )
    runtime.start()
    for _ in range(40):
        runtime.send("events", "k", 1)

    def chaos():
        yield env.timeout(crash_at)
        runtime.crash_worker(0)
        yield env.timeout(5.0)
        yield from runtime.recover()

    env.process(chaos())
    env.run(until=5000)
    values = [v for _k, v, _t in runtime.sink_outputs("out")]
    assert values and max(values) == 40          # nothing lost, nothing doubled
    assert sorted(values) == sorted(set(values))  # transactional sink: no dupes


@settings(max_examples=10, deadline=None)
@given(
    crash_at=st.floats(min_value=2.0, max_value=250.0),
    seed=st.integers(0, 50),
)
def test_statefun_conserves_for_any_crash_time(crash_at, seed):
    env = Environment(seed=seed)
    workload = TransferWorkload(num_accounts=12, theta=0.4)
    bank = StatefunBank(env, workload, checkpoint_interval=40.0)
    bank.start()
    ops = list(workload.operations(env.stream("ops"), 25))

    def feeder():
        for op in ops:
            yield env.timeout(6.0)
            bank.submit(op)

    env.process(feeder())

    def chaos():
        yield env.timeout(crash_at)
        bank.runtime.crash()
        yield env.timeout(5.0)
        yield from bank.runtime.recover()

    env.process(chaos())
    env.run(until=10_000)
    total = sum(row["balance"] for row in bank.balances())
    assert total == workload.expected_total
    completed = bank.completed_ops()
    assert len(completed) == len(set(completed))
    assert sorted(completed) == sorted(op.op_id for op in ops)


@settings(max_examples=10, deadline=None)
@given(
    crash_at=st.floats(min_value=2.0, max_value=200.0),
    seed=st.integers(0, 50),
)
def test_txn_dataflow_conserves_for_any_crash_time(crash_at, seed):
    env = Environment(seed=seed)
    workload = TransferWorkload(num_accounts=12, theta=0.4)
    bank = TxnDataflowBank(env, workload, epoch_interval=5.0, checkpoint_every=3)
    bank.start()
    env.run_until(env.process(bank.setup()))
    ops = list(workload.operations(env.stream("ops"), 20))
    for i, op in enumerate(ops):
        env.schedule(4.0 * i, env.process, bank.execute(op))

    def chaos():
        yield env.timeout(crash_at)
        bank.engine.crash()
        yield env.timeout(5.0)
        yield from bank.engine.recover()

    env.process(chaos())
    env.run(until=10_000)
    total = sum(row["balance"] for row in bank.balances())
    assert total == workload.expected_total


def test_statefun_zombie_turn_regression():
    """Pinned falsifying example (crash_at=30.0625): an invocation that
    slept across the crash instant must not wake up in the new incarnation
    and double-apply its effect (a *zombie turn*)."""
    env = Environment(seed=0)
    workload = TransferWorkload(num_accounts=12, theta=0.4)
    bank = StatefunBank(env, workload, checkpoint_interval=40.0)
    bank.start()
    ops = list(workload.operations(env.stream("ops"), 25))

    def feeder():
        for op in ops:
            yield env.timeout(6.0)
            bank.submit(op)

    env.process(feeder())

    def chaos():
        yield env.timeout(30.0625)  # inside op 4's work window
        bank.runtime.crash()
        yield env.timeout(5.0)
        yield from bank.runtime.recover()

    env.process(chaos())
    env.run(until=10_000)
    total = sum(row["balance"] for row in bank.balances())
    assert total == workload.expected_total
    completed = bank.completed_ops()
    assert len(completed) == len(set(completed))  # the zombie duplicated this
    assert sorted(completed) == sorted(op.op_id for op in ops)

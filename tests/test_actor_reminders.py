"""Tests for durable actor reminders (Orleans-style)."""

import pytest

from repro.actors import Actor, ActorRuntime
from repro.sim import Environment


class Ticker(Actor):
    initial_state = {"ticks": 0}

    def tick(self):
        self.state["ticks"] += 1
        yield from self.save_state()
        return self.state["ticks"]

    def ticks(self):
        return self.state["ticks"]
        yield  # pragma: no cover


@pytest.fixture
def env():
    return Environment(seed=301)


@pytest.fixture
def runtime(env):
    rt = ActorRuntime(env, num_silos=2)
    rt.register(Ticker)
    return rt


def run(env, gen):
    return env.run_until(env.process(gen))


class TestReminders:
    def test_fires_periodically(self, env, runtime):
        runtime.register_reminder("Ticker", "t1", "tick", period=50.0)
        env.run(until=480)

        def read():
            return (yield from runtime.ref("Ticker", "t1").call("ticks"))

        ticks = run(env, read())
        assert 7 <= ticks <= 9  # ~480/50, allowing for call latency

    def test_cancel_stops_firing(self, env, runtime):
        reminder_id = runtime.register_reminder("Ticker", "t1", "tick", period=50.0)
        env.run(until=160)
        assert runtime.cancel_reminder(reminder_id)
        env.run(until=1000)

        def read():
            return (yield from runtime.ref("Ticker", "t1").call("ticks"))

        assert run(env, read()) <= 4

    def test_cancel_unknown_returns_false(self, runtime):
        assert not runtime.cancel_reminder("nope")

    def test_invalid_period(self, runtime):
        with pytest.raises(ValueError):
            runtime.register_reminder("Ticker", "t", "tick", period=0)

    def test_survives_silo_crash(self, env, runtime):
        """The reminder keeps firing after its actor's silo dies."""
        runtime.register_reminder("Ticker", "t1", "tick", period=40.0)
        env.run(until=130)  # ~3 ticks; actor now activated somewhere
        host = runtime.host_of("Ticker", "t1")
        index = int(host.split("-")[1])
        runtime.crash_silo(index)
        env.run(until=600)

        def read():
            return (yield from runtime.ref("Ticker", "t1").call("ticks", retries=2))

        ticks = run(env, read())
        assert ticks >= 10  # kept ticking post-crash (state reloaded)
        assert runtime.host_of("Ticker", "t1") != host


class TestIdleDeactivation:
    def test_idle_actors_are_collected(self, env):
        rt = ActorRuntime(env, num_silos=1, idle_timeout=100.0)
        rt.register(Ticker)

        def flow():
            yield from rt.ref("Ticker", "t1").call("tick")

        env.run_until(env.process(flow()))
        assert rt.stats.activations == 1
        env.run(until=400)  # idle well past the timeout
        assert rt.stats.idle_deactivations >= 1

        def again():
            return (yield from rt.ref("Ticker", "t1").call("ticks"))

        ticks = env.run_until(env.process(again()))
        assert ticks == 1  # saved state reloaded on re-activation
        assert rt.stats.activations == 2

    def test_busy_actors_are_not_collected(self, env):
        rt = ActorRuntime(env, num_silos=1, idle_timeout=100.0)
        rt.register(Ticker)
        rt.register_reminder("Ticker", "hot", "tick", period=30.0)
        env.run(until=500)  # constantly used: never idle long enough
        assert rt.stats.idle_deactivations == 0
        assert rt.stats.activations == 1

    def test_no_collection_without_idle_timeout(self, env):
        rt = ActorRuntime(env, num_silos=1)
        rt.register(Ticker)

        def flow():
            yield from rt.ref("Ticker", "t1").call("tick")

        env.run_until(env.process(flow()))
        env.run(until=10_000)
        assert rt.stats.idle_deactivations == 0

"""Tests for the dataflow engine: topology, processing, checkpoints, recovery."""

import pytest

from repro.dataflow import DataflowRuntime, JobGraph
from repro.net.latency import Latency
from repro.sim import Environment
from repro.storage.object_store import ObjectStore, ObjectStoreServer


@pytest.fixture
def env():
    return Environment(seed=51)


def counting_op(state, key, value, emit):
    """Stateful word-count-style operator."""
    total = state.get(key, 0) + value
    state.put(key, total)
    emit(key, total)


def passthrough(state, key, value, emit):
    emit(key, value)


def make_job(sink_mode="exactly_once", parallelism=2):
    graph = JobGraph("counts")
    graph.source("events", emit_interval=0.5)
    graph.operator("count", counting_op, parallelism=parallelism, work_ms=0.2)
    graph.sink("out", mode=sink_mode)
    graph.connect("events", "count")
    graph.connect("count", "out")
    return graph


def make_runtime(env, graph=None, **kwargs):
    kwargs.setdefault("checkpoint_interval", 50.0)
    kwargs.setdefault(
        "checkpoint_store",
        ObjectStoreServer(env, ObjectStore(), latency=Latency.constant(2.0)),
    )
    return DataflowRuntime(env, graph or make_job(), **kwargs)


class TestGraphValidation:
    def test_duplicate_stage_rejected(self):
        graph = JobGraph("g")
        graph.source("s")
        with pytest.raises(ValueError):
            graph.operator("s", passthrough)

    def test_unknown_endpoint_rejected(self):
        graph = JobGraph("g")
        graph.source("s")
        with pytest.raises(ValueError):
            graph.connect("s", "nope")

    def test_operator_without_input_rejected(self, env):
        graph = JobGraph("g")
        graph.source("s")
        graph.operator("lonely", passthrough)
        graph.sink("out")
        graph.connect("s", "out")
        with pytest.raises(ValueError, match="no input"):
            DataflowRuntime(env, graph)

    def test_invalid_sink_mode(self):
        graph = JobGraph("g")
        with pytest.raises(ValueError):
            graph.sink("out", mode="maybe_once")

    def test_invalid_parallelism(self):
        graph = JobGraph("g")
        with pytest.raises(ValueError):
            graph.operator("op", passthrough, parallelism=0)


class TestProcessing:
    def test_records_flow_through(self, env):
        runtime = make_runtime(env)
        runtime.start()
        for i in range(5):
            runtime.send("events", f"user-{i % 2}", 1)
        env.run(until=100)
        outputs = runtime.sink_outputs("out")
        assert len(outputs) == 5
        # Running totals per key: user-0 saw 1,2,3; user-1 saw 1,2.
        totals = {}
        for key, value, _t in outputs:
            totals[key] = value
        assert totals == {"user-0": 3, "user-1": 2}

    def test_keyed_state_is_per_key(self, env):
        runtime = make_runtime(env)
        runtime.start()
        runtime.send("events", "a", 10)
        runtime.send("events", "b", 1)
        env.run(until=100)
        values = {k: v for k, v, _ in runtime.sink_outputs("out")}
        assert values == {"a": 10, "b": 1}

    def test_order_preserved_per_key(self, env):
        runtime = make_runtime(env)
        runtime.start()
        for i in range(10):
            runtime.send("events", "k", 1)
        env.run(until=200)
        values = [v for _k, v, _t in runtime.sink_outputs("out")]
        assert values == list(range(1, 11))

    def test_parallelism_spreads_keys(self, env):
        runtime = make_runtime(env, make_job(parallelism=4))
        runtime.start()
        for i in range(40):
            runtime.send("events", f"k{i}", 1)
        env.run(until=200)
        assert len(runtime.sink_outputs("out")) == 40
        assert runtime.stats.records_processed == 40


class TestCheckpointing:
    def test_checkpoints_complete_periodically(self, env):
        runtime = make_runtime(env)
        runtime.start()
        for i in range(10):
            runtime.send("events", "k", 1)
        env.run(until=500)
        assert runtime.stats.checkpoints_completed >= 5

    def test_exactly_once_sink_buffers_until_checkpoint(self, env):
        runtime = make_runtime(env, checkpoint_interval=100.0)
        runtime.start()
        runtime.send("events", "k", 1)
        env.run(until=50)  # record processed, but checkpoint 1 not yet done
        assert runtime.sink_outputs("out") == []
        env.run(until=250)
        assert len(runtime.sink_outputs("out")) == 1

    def test_at_least_once_sink_emits_immediately(self, env):
        runtime = make_runtime(env, make_job(sink_mode="at_least_once"),
                               checkpoint_interval=100.0)
        runtime.start()
        runtime.send("events", "k", 1)
        env.run(until=20)
        assert len(runtime.sink_outputs("out")) == 1

    def test_snapshots_land_in_checkpoint_store(self, env):
        store = ObjectStoreServer(env, ObjectStore(), latency=Latency.constant(2.0))
        runtime = make_runtime(env, checkpoint_store=store)
        runtime.start()
        runtime.send("events", "k", 1)
        env.run(until=200)
        keys = store.store.list("checkpoints")
        assert any("count#0" in k for k in keys)


class TestRecovery:
    def _run_with_crash(self, env, sink_mode):
        graph = JobGraph("counts")
        graph.source("events", emit_interval=10.0)  # 20 records ~ 200ms
        graph.operator("count", counting_op, parallelism=2, work_ms=0.2)
        graph.sink("out", mode=sink_mode)
        graph.connect("events", "count")
        graph.connect("count", "out")
        runtime = make_runtime(env, graph, checkpoint_interval=50.0)
        runtime.start()
        for i in range(20):
            runtime.send("events", "k", 1)
        env.run(until=120)  # some checkpoints done, stream still flowing
        runtime.crash_worker(0)
        env.run(until=140)
        env.run_until(env.process(runtime.recover()))
        env.run(until=800)
        return runtime

    def test_state_restored_exactly_once(self, env):
        """After crash + replay the final count is exactly 20."""
        runtime = self._run_with_crash(env, "exactly_once")
        values = [v for k, v, _t in runtime.sink_outputs("out")]
        assert values, "no outputs after recovery"
        assert max(values) == 20  # no lost and no double-counted increments
        assert runtime.stats.recoveries == 1
        assert runtime.stats.replayed_records > 0

    def test_exactly_once_sink_has_no_duplicates(self, env):
        runtime = self._run_with_crash(env, "exactly_once")
        values = [v for k, v, _t in runtime.sink_outputs("out")]
        assert sorted(values) == sorted(set(values))
        assert sorted(values) == list(range(1, 21))

    def test_at_least_once_sink_duplicates_on_replay(self, env):
        runtime = self._run_with_crash(env, "at_least_once")
        values = [v for k, v, _t in runtime.sink_outputs("out")]
        assert max(values) == 20
        assert len(values) > 20  # replayed outputs re-emitted

    def test_recovery_without_any_checkpoint_replays_all(self, env):
        runtime = make_runtime(env, checkpoint_interval=10_000.0)
        runtime.start()
        for i in range(5):
            runtime.send("events", "k", 1)
        env.run(until=60)
        runtime.crash_worker(0)
        runtime.crash_worker(1)
        env.run_until(env.process(runtime.recover()))
        env.run(until=20_500)
        values = [v for k, v, _t in runtime.sink_outputs("out")]
        assert max(values) == 5  # replayed from offset 0, state rebuilt

    def test_double_start_rejected(self, env):
        runtime = make_runtime(env)
        runtime.start()
        with pytest.raises(RuntimeError):
            runtime.start()

    def test_stop_halts_processing(self, env):
        runtime = make_runtime(env)
        runtime.start()
        runtime.send("events", "k", 1)
        env.run(until=50)
        runtime.stop()
        before = len(runtime.sink_outputs("out"))
        runtime.send("events", "k", 1)
        env.run(until=200)
        assert len(runtime.sink_outputs("out")) == before


class TestMultiStagePipelines:
    def test_two_operator_chain(self, env):
        graph = JobGraph("chain")
        graph.source("src", emit_interval=0.5)

        def enrich(state, key, value, emit):
            emit(key, {"amount": value, "enriched": True})

        def total(state, key, value, emit):
            current = state.get("total", 0) + value["amount"]
            state.put("total", current)
            emit(key, current)

        graph.operator("enrich", enrich, parallelism=2)
        graph.operator("total", total, parallelism=1)
        graph.sink("out", mode="at_least_once")
        graph.connect("src", "enrich")
        graph.connect("enrich", "total")
        graph.connect("total", "out")
        runtime = make_runtime(env, graph)
        runtime.start()
        for i in range(4):
            runtime.send("src", f"k{i}", 5)
        env.run(until=200)
        values = [v for _k, v, _t in runtime.sink_outputs("out")]
        assert max(values) == 20

    def test_barrier_alignment_across_parallel_upstreams(self, env):
        """Downstream of a parallelism-4 stage must align 4 barriers."""
        graph = JobGraph("align")
        graph.source("src", emit_interval=0.2)
        graph.operator("spread", passthrough, parallelism=4)
        graph.operator("merge", counting_op, parallelism=1)
        graph.sink("out")
        graph.connect("src", "spread")
        graph.connect("spread", "merge")
        graph.connect("merge", "out")
        runtime = make_runtime(env, graph, checkpoint_interval=30.0)
        runtime.start()
        for i in range(30):
            runtime.send("src", f"k{i % 8}", 1)
        env.run(until=500)
        assert runtime.stats.checkpoints_completed >= 3
        assert len(runtime.sink_outputs("out")) == 30

"""Chaos integration: the full marketplace under faults stays consistent.

The end-to-end claim of the whole stack: with the §3.2 disciplines in
place (idempotency keys, request dedup, saga compensations, local txn
retries), the application's cross-service invariants survive message loss,
message duplication, *and* a mid-run service crash — correctness comes
from the protocols, not from the absence of failures.
"""

import pytest

from repro.apps import MicroserviceShop
from repro.core import FaultPlan
from repro.sim import Environment
from repro.workloads import MarketplaceWorkload


def check(workload, state):
    violations = []
    for invariant in workload.invariants():
        violations.extend(invariant.check(state))
    return violations


class TestShopChaos:
    def _run(self, seed, loss, duplication, crash_stock=True, zombie_safe=True):
        env = Environment(seed=seed)
        workload = MarketplaceWorkload(
            num_products=6, initial_stock=500, payment_failure_rate=0.1
        )
        shop = MicroserviceShop(env, workload, mode="saga",
                                request_timeout=150.0,
                                compensation_retries=10,
                                zombie_safe_refunds=zombie_safe)
        shop.app.net.set_loss(loss)
        shop.app.net.set_duplication(duplication)
        if crash_stock:
            plan = FaultPlan().crash_restart("stock", at=200.0, downtime=60.0)
            plan.apply(env, shop.app.net)
        ops = list(workload.operations(env.stream("ops"), 40))
        outcomes = {"ok": 0, "failed": 0}

        def one(op):
            try:
                yield from shop.execute(op)
                outcomes["ok"] += 1
            except Exception:
                outcomes["failed"] += 1

        def driver():
            for op in ops:
                yield env.timeout(12.0)
                env.process(one(op))

        env.process(driver())
        env.run(until=60_000)
        return shop, workload, outcomes

    def test_invariants_hold_under_loss_and_duplication(self):
        shop, workload, outcomes = self._run(
            seed=261, loss=0.05, duplication=0.05, crash_stock=False
        )
        assert outcomes["ok"] > 0
        assert check(workload, shop.final_state()) == []

    def test_invariants_hold_across_service_crash(self):
        shop, workload, outcomes = self._run(
            seed=262, loss=0.03, duplication=0.03, crash_stock=True
        )
        assert outcomes["ok"] + outcomes["failed"] == 40
        assert outcomes["ok"] > 10  # the system made real progress
        state = shop.final_state()
        assert check(workload, state) == []
        # Completed checkouts are exactly the orders+payments on record.
        assert len(state["orders"]) == len(state["payments"])

    def test_zombie_charge_anomaly_without_tombstones(self):
        """Regression of the bug chaos testing found: the naive refund
        (delete the payment row) lets a timed-out-but-in-flight charge
        land *after* the compensation — a payment no order explains."""
        dirty = 0
        for seed in (261, 301, 472, 533, 601):
            shop, workload, _outcomes = self._run(
                seed=seed, loss=0.05, duplication=0.05,
                crash_stock=False, zombie_safe=False,
            )
            if check(workload, shop.final_state()):
                dirty += 1
        assert dirty > 0  # the anomaly is reproducible...

        shop, workload, _outcomes = self._run(
            seed=261, loss=0.05, duplication=0.05,
            crash_stock=False, zombie_safe=True,
        )
        assert check(workload, shop.final_state()) == []  # ...and fixed

    def test_clean_run_baseline(self):
        shop, workload, outcomes = self._run(
            seed=263, loss=0.0, duplication=0.0, crash_stock=False
        )
        state = shop.final_state()
        assert check(workload, state) == []
        # Only business failures (payment declined / out of stock) fail.
        assert outcomes["failed"] <= 12

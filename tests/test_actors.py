"""Tests for the virtual actor runtime and actor transactions."""

import pytest

from repro.actors import (
    Actor,
    ActorError,
    ActorRuntime,
    ActorTransactionCoordinator,
    TransactionFailed,
    transactional,
)
from repro.messaging import RpcTimeout
from repro.sim import Environment


@transactional
class BankAccount(Actor):
    """The canonical actor: a bank account with explicit persistence."""

    initial_state = {"balance": 0}

    def deposit(self, amount):
        self.state["balance"] += amount
        yield from self.save_state()
        return self.state["balance"]

    def deposit_volatile(self, amount):
        """Mutates memory only — durability is the actor's problem (§3.3)."""
        self.state["balance"] += amount
        return self.state["balance"]
        yield  # pragma: no cover

    def balance(self):
        return self.state["balance"]
        yield  # pragma: no cover

    def txn_deposit(self, amount):
        """Used inside actor transactions (no explicit save: 2PC persists)."""
        self.state["balance"] += amount
        return self.state["balance"]
        yield  # pragma: no cover

    def txn_withdraw(self, amount):
        if self.state["balance"] < amount:
            raise ValueError("insufficient funds")
        self.state["balance"] -= amount
        return self.state["balance"]
        yield  # pragma: no cover


class Greeter(Actor):
    initial_state = {"greetings": 0}

    def greet(self, name):
        self.state["greetings"] += 1
        other = yield from self.call_actor("BankAccount", "shared", "balance")
        return f"hello {name} (bank says {other})"


@pytest.fixture
def env():
    return Environment(seed=31)


@pytest.fixture
def runtime(env):
    rt = ActorRuntime(env, num_silos=3)
    rt.register(BankAccount)
    rt.register(Greeter)
    return rt


def run(env, gen):
    return env.run_until(env.process(gen))


class TestActivation:
    def test_call_activates_on_demand(self, env, runtime):
        ref = runtime.ref("BankAccount", "alice")

        def flow():
            return (yield from ref.call("deposit", 100))

        assert run(env, flow()) == 100
        assert runtime.stats.activations == 1

    def test_second_call_reuses_activation(self, env, runtime):
        ref = runtime.ref("BankAccount", "alice")

        def flow():
            yield from ref.call("deposit", 100)
            yield from ref.call("deposit", 50)
            return (yield from ref.call("balance"))

        assert run(env, flow()) == 150
        assert runtime.stats.activations == 1

    def test_unregistered_type_rejected(self, runtime):
        with pytest.raises(ActorError):
            runtime.ref("Unknown", "x")

    def test_placement_is_deterministic(self, runtime):
        assert runtime.place("BankAccount", "k").name == runtime.place("BankAccount", "k").name

    def test_placement_spreads_actors(self, runtime):
        silos = {runtime.place("BankAccount", f"k{i}").name for i in range(50)}
        assert len(silos) == 3

    def test_actor_to_actor_call(self, env, runtime):
        def flow():
            yield from runtime.ref("BankAccount", "shared").call("deposit", 7)
            return (yield from runtime.ref("Greeter", "g1").call("greet", "ada"))

        assert run(env, flow()) == "hello ada (bank says 7)"


class TestTurnConcurrency:
    def test_turns_serialize_per_actor(self, env, runtime):
        """Two concurrent calls to the same actor never interleave."""
        ref = runtime.ref("BankAccount", "alice")
        results = []

        def caller(amount):
            value = yield from ref.call("deposit", amount)
            results.append(value)

        env.process(caller(10))
        env.process(caller(10))
        env.run()
        # Both turns applied sequentially: balances are 10 then 20.
        assert sorted(results) == [10, 20]

    def test_different_actors_run_concurrently(self, env, runtime):
        done_times = {}

        def caller(key):
            yield from runtime.ref("BankAccount", key).call("deposit", 1)
            done_times[key] = env.now

        env.process(caller("a"))
        env.process(caller("b"))
        env.run()
        # Concurrent (no mutual blocking): both finish in single-call time.
        assert abs(done_times["a"] - done_times["b"]) < 15


class TestFailureTransparency:
    def test_state_survives_silo_crash_if_saved(self, env, runtime):
        ref = runtime.ref("BankAccount", "alice")

        def flow():
            yield from ref.call("deposit", 100)
            host = runtime.host_of("BankAccount", "alice")
            index = int(host.split("-")[1])
            runtime.crash_silo(index)
            balance = yield from ref.call("balance", retries=2)
            return host, balance

        old_host, balance = run(env, flow())
        assert balance == 100  # state reloaded from the provider
        assert runtime.host_of("BankAccount", "alice") != old_host
        assert runtime.stats.migrations >= 1

    def test_unsaved_state_lost_on_crash(self, env, runtime):
        """§4.1: weak guarantees leave actor state inconsistent on failure."""
        ref = runtime.ref("BankAccount", "alice")

        def flow():
            yield from ref.call("deposit", 100)          # saved
            yield from ref.call("deposit_volatile", 50)  # memory only
            host = runtime.host_of("BankAccount", "alice")
            runtime.crash_silo(int(host.split("-")[1]))
            return (yield from ref.call("balance", retries=2))

        assert run(env, flow()) == 100  # the volatile 50 vanished

    def test_stale_duplicate_activation_dropped_on_failback(self, env, runtime):
        """The Orleans duplicate-activation hazard: placement moves to a
        stand-in silo during a crash, back home after the restart, then to
        the stand-in again on a second crash.  The stand-in's cached
        activation missed every write committed at home in between, so
        serving from it would resurrect stale state (found by chaos
        fuzzing as a lost actor-transaction credit)."""
        ref = runtime.ref("BankAccount", "alice")

        def flow():
            yield from ref.call("deposit", 100)
            home = int(runtime.host_of("BankAccount", "alice").split("-")[1])
            runtime.crash_silo(home)
            # Re-activates on a stand-in silo, which caches an activation.
            assert (yield from ref.call("balance", retries=2)) == 100
            runtime.restart_silo(home)
            # Placement is home again: this deposit commits there.
            yield from ref.call("deposit", 10, retries=2)
            runtime.crash_silo(home)
            # Back on the stand-in: its cached activation is stale.
            return (yield from ref.call("balance", retries=2))

        assert run(env, flow()) == 110
        assert runtime.stats.duplicates_dropped == 1

    def test_activation_migration_races_silo_restart(self, env, runtime):
        """The failback hazard, with the restart racing the migration: the
        home silo comes back *while* the crash-displaced call is still in
        flight, so the activation migrates to a stand-in even though home
        is alive again by the time it completes.  The stand-in's cached
        activation then misses the deposit committed at home and must be
        dropped — not served — when placement returns to it."""
        ref = runtime.ref("BankAccount", "alice")

        def flow():
            yield from ref.call("deposit", 100)
            home = int(runtime.host_of("BankAccount", "alice").split("-")[1])
            runtime.crash_silo(home)
            # The restart lands mid-call: placement already sampled the
            # stand-in (home was dead at dispatch), so the activation
            # migrates anyway.
            env.schedule(1.0, runtime.restart_silo, home)
            assert (yield from ref.call("balance", timeout=10, retries=3)) == 100
            standin = runtime.host_of("BankAccount", "alice")
            assert standin != f"silo-{home}"
            # Home is back and wins placement: this deposit commits there,
            # making the stand-in's cached activation stale.
            yield from ref.call("deposit", 10, retries=2)
            assert runtime.host_of("BankAccount", "alice") == f"silo-{home}"
            runtime.crash_silo(home)
            # Placement returns to the stand-in; serving its cache would
            # resurrect the pre-deposit balance.
            return (yield from ref.call("balance", retries=2))

        assert run(env, flow()) == 110
        assert runtime.stats.duplicates_dropped == 1
        assert runtime.stats.migrations >= 2

    def test_at_most_once_call_times_out_when_all_silos_down(self, env, runtime):
        for index in range(3):
            runtime.crash_silo(index)
        ref = runtime.ref("BankAccount", "x")

        def flow():
            yield from ref.call("balance", timeout=5)

        with pytest.raises(ActorError):
            run(env, flow())

    def test_call_retries_after_crash_mid_call(self, env, runtime):
        ref = runtime.ref("BankAccount", "alice")

        def flow():
            yield from ref.call("deposit", 100)
            host = runtime.host_of("BankAccount", "alice")
            env.schedule(1.0, runtime.crash_silo, int(host.split("-")[1]))
            value = yield from ref.call("balance", timeout=10, retries=3)
            return value

        assert run(env, flow()) == 100


class TestActorTransactions:
    def test_atomic_transfer(self, env, runtime):
        coordinator = ActorTransactionCoordinator(runtime)

        def flow():
            yield from runtime.ref("BankAccount", "a").call("deposit", 100)
            yield from runtime.ref("BankAccount", "b").call("deposit", 100)
            results = yield from coordinator.execute([
                ("BankAccount", "a", "txn_withdraw", (30,)),
                ("BankAccount", "b", "txn_deposit", (30,)),
            ])
            a = yield from runtime.ref("BankAccount", "a").call("balance")
            b = yield from runtime.ref("BankAccount", "b").call("balance")
            return results, a, b

        results, a, b = run(env, flow())
        assert results == [70, 130]
        assert (a, b) == (70, 130)
        assert coordinator.stats.committed == 1

    def test_failed_op_aborts_whole_transaction(self, env, runtime):
        coordinator = ActorTransactionCoordinator(runtime)

        def flow():
            yield from runtime.ref("BankAccount", "a").call("deposit", 10)
            try:
                yield from coordinator.execute([
                    ("BankAccount", "a", "txn_withdraw", (5,)),
                    ("BankAccount", "b", "txn_withdraw", (999,)),  # fails
                ])
            except TransactionFailed:
                pass
            a = yield from runtime.ref("BankAccount", "a").call("balance")
            return a

        assert run(env, flow()) == 10  # a's tentative -5 never committed
        assert coordinator.stats.aborted == 1

    def test_transaction_durably_persists(self, env, runtime):
        coordinator = ActorTransactionCoordinator(runtime)

        def flow():
            yield from coordinator.execute([
                ("BankAccount", "a", "txn_deposit", (42,)),
            ])
            host = runtime.host_of("BankAccount", "a")
            runtime.crash_silo(int(host.split("-")[1]))
            return (yield from runtime.ref("BankAccount", "a").call("balance", retries=2))

        assert run(env, flow()) == 42

    def test_conflicting_transactions_serialize(self, env, runtime):
        coordinator = ActorTransactionCoordinator(runtime)
        outcomes = []

        def transfer(src, dst):
            try:
                yield from coordinator.execute([
                    ("BankAccount", src, "txn_withdraw", (50,)),
                    ("BankAccount", dst, "txn_deposit", (50,)),
                ])
                outcomes.append("ok")
            except TransactionFailed:
                outcomes.append("aborted")

        def flow():
            yield from runtime.ref("BankAccount", "a").call("deposit", 100)
            yield from runtime.ref("BankAccount", "b").call("deposit", 100)

        run(env, flow())
        env.process(transfer("a", "b"))
        env.process(transfer("b", "a"))
        env.run()
        assert outcomes == ["ok", "ok"]  # ordered locking: no deadlock

        def check():
            a = yield from runtime.ref("BankAccount", "a").call("balance")
            b = yield from runtime.ref("BankAccount", "b").call("balance")
            return a + b

        assert run(env, check()) == 200  # conservation

    def test_silo_crash_between_prepare_and_commit_stays_atomic(self, env, runtime):
        # The participant's volatile tentative copy dies with its silo;
        # the commit must recover it from the durable prepare record so
        # the transaction applies on every participant or none.
        coordinator = ActorTransactionCoordinator(runtime)

        def flow():
            yield from runtime.ref("BankAccount", "a").call("deposit", 100)
            yield from runtime.ref("BankAccount", "b").call("deposit", 100)
            host = runtime.host_of("BankAccount", "a")
            index = int(host.split("-")[1])
            # Crash a's silo mid-commit-phase: after prepare records exist,
            # while the commit dispatches are in flight.
            env.schedule(1.0, runtime.crash_silo, index)
            env.schedule(60.0, runtime.restart_silo, index)
            yield from coordinator.execute([
                ("BankAccount", "a", "txn_withdraw", (30,)),
                ("BankAccount", "b", "txn_deposit", (30,)),
            ])
            a = yield from runtime.ref("BankAccount", "a").call("balance", retries=2)
            b = yield from runtime.ref("BankAccount", "b").call("balance", retries=2)
            return a, b

        a, b = run(env, flow())
        assert a + b == 200  # conservation despite the crash
        assert (a, b) == (70, 130)

    def test_duplicate_txn_execute_applies_once(self, env, runtime):
        coordinator = ActorTransactionCoordinator(runtime)
        runtime.net.set_duplication(1.0)  # every message delivered twice

        def flow():
            yield from coordinator.execute([
                ("BankAccount", "a", "txn_deposit", (10,)),
            ])
            return (yield from runtime.ref("BankAccount", "a").call("balance"))

        assert run(env, flow()) == 10  # not 20

    def test_transaction_slower_than_plain_call(self, env, runtime):
        """The §4.2 penalty: a transactional op costs a multiple of a call."""
        coordinator = ActorTransactionCoordinator(runtime)

        def plain():
            start = env.now
            yield from runtime.ref("BankAccount", "p").call("deposit_volatile", 1)
            return env.now - start

        def txn():
            start = env.now
            yield from coordinator.execute([
                ("BankAccount", "p", "txn_deposit", (1,)),
            ])
            return env.now - start

        plain_cost = run(env, plain())
        txn_cost = run(env, txn())
        assert txn_cost > 2 * plain_cost

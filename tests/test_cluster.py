"""Tests for the unified cluster placement layer (``repro.cluster``).

Covers the byte-compatibility contract (the ring must reproduce the
historical per-runtime crc32 formulas exactly), directory/epoch
semantics, router forwarding, rebalancer planning, and the resharding
edge cases of the live-migration protocol: empty shards, a single hot
key, a migration racing a distributed transaction that holds locks on
the moving shard, and concurrent double-migration.
"""

import zlib

import pytest

from repro.chaos import run_trial
from repro.cluster import (
    ClusterError,
    ConsistentHashRing,
    ModHashRing,
    PlacementDirectory,
    RangeMap,
    Rebalancer,
    Router,
    ShardStats,
    rendezvous_owner,
    spread,
    stable_hash,
    stable_hash_text,
)
from repro.db import IsolationLevel, ShardedDatabase
from repro.db.sharding import shard_of
from repro.sim import Environment

SER = IsolationLevel.SERIALIZABLE


def run(env, gen, label="test"):
    return env.run_until(env.process(gen, label=label))


def key_on(shard, num_shards, start=0):
    """The first integer key at/after ``start`` that routes to ``shard``."""
    key = start
    while shard_of(key, num_shards) != shard:
        key += 1
    return key


class TestHashingByteCompat:
    """The cluster formulas must match the historical per-runtime ones."""

    def test_stable_hash_is_crc32_of_repr(self):
        for key in [0, 7, "acct-12", ("k", 3), -1, 10**9]:
            assert stable_hash(key) == zlib.crc32(repr(key).encode("utf-8"))

    def test_stable_hash_text_is_crc32_raw(self):
        for text in ["task-1", "silo-0|BankAccount|alice", ""]:
            assert stable_hash_text(text) == zlib.crc32(text.encode("utf-8"))

    def test_mod_ring_matches_legacy_shard_formula(self):
        ring = ModHashRing(12)
        for key in [0, 5, "x", ("k", 3), 999]:
            assert ring.shard_of(key) == zlib.crc32(repr(key).encode()) % 12

    def test_rendezvous_owner_matches_max_semantics(self):
        nodes = ["silo-0", "silo-1", "silo-2"]
        for key in [f"BankAccount|k{i}" for i in range(40)]:
            expected = max(
                nodes, key=lambda n: zlib.crc32(f"{n}|{key}".encode())
            )
            assert rendezvous_owner(nodes, key) == expected

    def test_rendezvous_empty_and_spread(self):
        assert rendezvous_owner([], "k") is None
        histogram = spread(range(200), 8)
        assert sum(histogram.values()) == 200
        assert len(histogram) == 8  # every shard gets keys


class TestRings:
    def test_mod_ring_validates(self):
        with pytest.raises(ValueError):
            ModHashRing(0)

    def test_consistent_ring_minimal_movement(self):
        """Adding one shard to the ring moves only a small key fraction."""
        before = ConsistentHashRing(8)
        after = ConsistentHashRing(9)
        keys = list(range(2000))
        moved = sum(1 for k in keys if before.shard_of(k) != after.shard_of(k))
        # Mod-hashing would move ~8/9 of the keys; the ring moves ~1/9.
        assert moved / len(keys) < 0.35

    def test_consistent_ring_covers_all_shards(self):
        ring = ConsistentHashRing(8)
        assert {ring.shard_of(k) for k in range(2000)} == set(range(8))

    def test_range_map_bounds_and_split(self):
        ranges = RangeMap(["g", "p"])
        assert [ranges.shard_of(k) for k in ["a", "g", "o", "z"]] == [0, 1, 1, 2]
        ranges.split("k")
        assert ranges.num_shards == 4
        assert ranges.shard_of("o") == 2  # "k" <= o < "p"
        with pytest.raises(ValueError):
            ranges.split("k")
        with pytest.raises(ValueError):
            RangeMap(["p", "g"])


class TestDirectory:
    @pytest.fixture
    def directory(self):
        directory = PlacementDirectory(Environment(seed=1))
        directory.assign(0, "node0")
        directory.assign(1, "node1")
        return directory

    def test_ownership_and_epochs(self, directory):
        assert directory.owner_of(0) == "node0"
        assert directory.epoch(0) == 0
        assert directory.shards_on("node0") == [0]
        assert directory.nodes() == ["node0", "node1"]
        with pytest.raises(ClusterError):
            directory.owner_of(9)

    def test_migration_flip_bumps_epoch_once(self, directory):
        record = directory.begin_migration(0, "node1")
        assert record.source == "node0" and directory.is_migrating(0)
        directory.complete_migration(0)
        assert directory.owner_of(0) == "node1"
        assert directory.epoch(0) == 1
        assert not directory.is_migrating(0)

    def test_abort_leaves_ownership_untouched(self, directory):
        directory.begin_migration(0, "node1")
        directory.abort_migration(0)
        assert directory.owner_of(0) == "node0"
        assert directory.epoch(0) == 0
        assert directory.stats.migrations_aborted == 1

    def test_double_migration_rejected(self, directory):
        directory.begin_migration(0, "node1")
        with pytest.raises(ClusterError):
            directory.begin_migration(0, "node1")

    def test_migration_to_current_owner_rejected(self, directory):
        with pytest.raises(ClusterError):
            directory.begin_migration(0, "node0")

    def test_activation_registry_tracks_previous_host(self, directory):
        ident = ("BankAccount", "alice")
        assert directory.record_activation(ident, "silo-0") is None
        assert directory.record_activation(ident, "silo-2") == "silo-0"
        assert directory.last_host(ident) == "silo-2"
        assert directory.activations_on("silo-2") == [ident]
        directory.drop_activation(ident)
        assert directory.last_host(ident) is None


class TestRouter:
    @pytest.fixture
    def router(self):
        directory = PlacementDirectory(Environment(seed=1))
        for shard in range(4):
            directory.assign(shard, f"node{shard % 2}")
        return Router(ModHashRing(4), directory)

    def test_cold_cache_does_not_forward(self, router):
        first = router.resolve(7)
        second = router.resolve(7)
        assert not first.forwarded and not second.forwarded
        assert router.stats.forwards == 0

    def test_stale_cache_pays_exactly_one_forward(self, router):
        shard = router.shard_of(7)
        router.resolve(7)  # populate the cache
        router.directory.begin_migration(shard, "node9")
        router.directory.assign(99, "node9")  # make node9 known
        router.directory.complete_migration(shard)
        stale = router.resolve(7)
        repaired = router.resolve(7)
        assert stale.forwarded and stale.node == "node9"
        assert not repaired.forwarded
        assert router.stats.forwards == 1
        assert router.directory.stats.stale_lookups == 1

    def test_invalidate_resets_to_cold(self, router):
        router.resolve(7)
        router.invalidate(router.shard_of(7))
        assert not router.resolve(7).forwarded


class TestShardStats:
    def test_ewma_folds_windows(self):
        stats = ShardStats(2, alpha=0.5)
        stats.record(0, 10.0)
        assert stats.load_of(0) == 5.0  # live window counts at alpha weight
        stats.roll_window()
        assert stats.load_of(0) == 5.0
        stats.roll_window()  # an idle window decays the signal
        assert stats.load_of(0) == 2.5
        assert stats.total[0] == 10.0

    def test_hottest_and_grow(self):
        stats = ShardStats(3)
        stats.record(1, 4.0)
        stats.record(2, 9.0)
        assert stats.hottest() == 2
        assert stats.hottest(among=[0, 1]) == 1
        stats.grow(5)
        assert stats.num_shards == 5 and stats.load_of(4) == 0.0
        with pytest.raises(ValueError):
            stats.grow(2)


class TestRebalancerPlanning:
    def make_db(self, env, **kwargs):
        db = ShardedDatabase(env, num_shards=4, num_nodes=2, name="bank", **kwargs)
        db.create_table("accounts", primary_key="id")
        return db

    def test_balanced_cluster_plans_nothing(self):
        env = Environment(seed=5)
        db = self.make_db(env)
        rebalancer = Rebalancer(env, db)
        for shard in range(4):
            db.shard_stats.record(shard, 10.0)
        db.shard_stats.roll_window()
        assert rebalancer.plan() is None

    def test_single_hot_key_moves_its_shard_to_the_cold_node(self):
        """A sustained hot key drags its whole shard to the coldest node."""
        env = Environment(seed=5)
        db = self.make_db(env)
        hot_key = key_on(0, 4)
        db.load("accounts", [{"id": hot_key, "balance": 100}])
        hot_shard = db.router.shard_of(hot_key)
        source = db.directory.owner_of(hot_shard)
        for _ in range(3):  # sustained, not a single spike
            db.shard_stats.record(hot_shard, 50.0)
            db.shard_stats.roll_window()
        move = Rebalancer(env, db).plan()
        assert move is not None
        assert move.shard == hot_shard and move.source == source
        assert move.dest != source

    def test_run_cycle_executes_the_move(self):
        env = Environment(seed=5)
        db = self.make_db(env)
        hot_key = key_on(0, 4)
        db.load("accounts", [{"id": hot_key, "balance": 100}])
        hot_shard = db.router.shard_of(hot_key)
        source = db.directory.owner_of(hot_shard)
        for _ in range(3):
            db.shard_stats.record(hot_shard, 50.0)
        rebalancer = Rebalancer(env, db)
        move = run(env, rebalancer.run_cycle())
        assert move is not None
        assert db.directory.owner_of(hot_shard) != source
        assert rebalancer.stats.completed == 1
        assert db.migration_stats.rows_copied == 1

    def test_quiet_cluster_below_min_load_plans_nothing(self):
        env = Environment(seed=5)
        db = self.make_db(env)
        db.shard_stats.record(0, 0.5)  # noise, below min_load
        db.shard_stats.roll_window()
        assert Rebalancer(env, db).plan() is None

    def test_parameter_validation(self):
        env = Environment(seed=5)
        db = self.make_db(env)
        with pytest.raises(ValueError):
            Rebalancer(env, db, interval=0)
        with pytest.raises(ValueError):
            Rebalancer(env, db, imbalance_factor=0.5)


class TestLiveMigrationEdgeCases:
    """Resharding edge cases of the drain → copy → flip protocol."""

    def make_db(self, env, **kwargs):
        db = ShardedDatabase(env, num_shards=4, num_nodes=2, name="bank", **kwargs)
        db.create_table("accounts", primary_key="id")
        return db

    def test_empty_shard_migrates_clean(self):
        env = Environment(seed=9)
        db = self.make_db(env)
        dest = db.nodes[1]
        assert db.directory.owner_of(0) == db.nodes[0]
        rows = run(env, db.migrate_shard(0, dest))
        assert rows == 0
        assert db.directory.owner_of(0) == dest
        assert db.migration_stats.completed == 1
        assert db.migration_stats.rows_copied == 0

    def test_migration_waits_for_txn_holding_locks_on_moving_shard(self):
        """A distributed transaction holding locks on the moving shard
        drains before the copy starts; its writes land on the new owner,
        and the next stale-routed access pays exactly one forward."""
        env = Environment(seed=9)
        db = self.make_db(env)
        num = 4
        key_a = key_on(0, num)            # on the moving shard
        key_b = key_on(1, num)            # second shard: txn is distributed
        db.load("accounts", [{"id": key_a, "balance": 100},
                             {"id": key_b, "balance": 100}])
        dest = db.nodes[1]
        events = []

        def writer():
            txn = db.begin(SER)
            row = yield from db.get(txn, "accounts", key_a)
            yield from db.put(txn, "accounts", key_a,
                              {**row, "balance": row["balance"] - 30})
            row = yield from db.get(txn, "accounts", key_b)
            yield from db.put(txn, "accounts", key_b,
                              {**row, "balance": row["balance"] + 30})
            yield env.timeout(50.0)  # hold the locks while the drain waits
            yield from db.commit(txn)
            events.append(("committed", env.now))

        def mover():
            yield env.timeout(5.0)  # start once the writer holds its locks
            yield from db.migrate_shard(0, dest)
            events.append(("migrated", env.now))

        env.process(writer(), label="writer")
        run(env, mover(), label="mover")

        assert [name for name, _ in events] == ["committed", "migrated"]
        assert db.directory.owner_of(0) == dest
        assert db.directory.epoch(0) == 1
        # The 2PC write landed on the engine that moved.
        assert db.read_latest("accounts", key_a)["balance"] == 70
        assert db.read_latest("accounts", key_b)["balance"] == 130

        def reader():
            txn = db.begin(SER)
            row = yield from db.get(txn, "accounts", key_a)
            yield from db.commit(txn)
            return row["balance"]

        forwards_before = db.router.stats.forwards
        assert run(env, reader(), label="reader") == 70
        assert db.router.stats.forwards == forwards_before + 1

    def test_new_transactions_wait_out_the_migration_bar(self):
        env = Environment(seed=9)
        db = self.make_db(env, copy_ms_per_row=10.0)
        key = key_on(0, 4)
        db.load("accounts", [{"id": key, "balance": 100}])
        timings = {}

        def mover():
            yield from db.migrate_shard(0, db.nodes[1])
            timings["flip"] = env.now

        def reader():
            yield env.timeout(1.0)  # arrive mid-copy
            txn = db.begin(SER)
            row = yield from db.get(txn, "accounts", key)
            yield from db.commit(txn)
            timings["read"] = env.now
            return row["balance"]

        env.process(mover(), label="mover")
        assert run(env, reader(), label="reader") == 100
        assert timings["read"] > timings["flip"]  # barred until the flip

    def test_drain_timeout_aborts_and_leaves_shard_usable(self):
        env = Environment(seed=9)
        db = self.make_db(env, drain_timeout_ms=20.0)
        key = key_on(0, 4)
        other = key_on(1, 4)
        db.load("accounts", [{"id": key, "balance": 100},
                             {"id": other, "balance": 100}])
        errors = []

        def writer():
            txn = db.begin(SER)
            row = yield from db.get(txn, "accounts", key)
            yield from db.get(txn, "accounts", other)
            yield env.timeout(100.0)  # far past the drain timeout
            yield from db.put(txn, "accounts", key,
                              {**row, "balance": 55})
            yield from db.commit(txn)

        def mover():
            yield env.timeout(2.0)
            try:
                yield from db.migrate_shard(0, db.nodes[1])
            except ClusterError as exc:
                errors.append(exc)

        mover_proc = env.process(mover(), label="mover")
        writer_proc = env.process(writer(), label="writer")
        env.run_until(mover_proc)
        assert errors, "migration should time out while locks are held"
        # Ownership is unchanged and the shard is un-barred: the writer
        # commits normally after the aborted migration.
        assert db.directory.owner_of(0) == db.nodes[0]
        assert db.directory.epoch(0) == 0
        assert db.migration_stats.aborted == 1
        env.run_until(writer_proc)
        assert db.read_latest("accounts", key)["balance"] == 55
        # ... and a later migration of the same shard succeeds.
        run(env, db.migrate_shard(0, db.nodes[1]), label="retry")
        assert db.directory.owner_of(0) == db.nodes[1]

    def test_concurrent_double_migration_rejected(self):
        env = Environment(seed=9)
        db = self.make_db(env, copy_ms_per_row=10.0)
        key = key_on(0, 4)
        db.load("accounts", [{"id": key, "balance": 100}])
        errors = []

        def first():
            yield from db.migrate_shard(0, db.nodes[1])

        def second():
            yield env.timeout(1.0)  # while the first is mid-copy
            try:
                yield from db.migrate_shard(0, db.nodes[0])
            except ClusterError as exc:
                errors.append(exc)

        first_proc = env.process(first(), label="first")
        run(env, second(), label="second")
        env.run_until(first_proc)
        assert errors and "already migrating" in str(errors[0])
        assert db.directory.owner_of(0) == db.nodes[1]
        assert db.migration_stats.completed == 1
        # The rejected attempt never entered the protocol.
        assert db.migration_stats.started == 1
        assert db.migration_stats.aborted == 0

    def test_migrate_validates_shard_and_node(self):
        env = Environment(seed=9)
        db = self.make_db(env)
        with pytest.raises(ClusterError):
            run(env, db.migrate_shard(99, db.nodes[0]))
        with pytest.raises(ClusterError):
            run(env, db.migrate_shard(0, "no-such-node"))
        with pytest.raises(ClusterError):
            run(env, db.migrate_shard(0, db.directory.owner_of(0)))

    def test_default_config_routing_is_byte_identical_to_legacy(self):
        """Non-rebalancing configs must keep the historical key→shard→node
        mapping: shard i lives on node i, keys route by crc32 mod."""
        env = Environment(seed=9)
        db = ShardedDatabase(env, num_shards=4)
        db.create_table("accounts", primary_key="id")
        for key in range(32):
            shard = zlib.crc32(repr(key).encode()) % 4
            assert db.router.shard_of(key) == shard
            assert db.owner_of(key) == f"sharded-db/node{shard}"


class TestClusterChaos:
    def test_flip_without_drain_is_caught(self):
        """The broken scenario variant (ownership flips from a stale
        snapshot with no drain) must trip the conservation oracle under
        the same schedules the sound variant survives."""
        sound = run_trial("cluster", seed=1)
        broken = run_trial("cluster", seed=1, broken=True)
        assert not sound.violations
        assert broken.violations

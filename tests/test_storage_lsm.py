"""Unit and property tests for the LSM-tree store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import LsmStore


@pytest.fixture
def lsm():
    return LsmStore(memtable_limit=8, level0_limit=2)


class TestBasics:
    def test_put_get(self, lsm):
        lsm.put("k", "v")
        assert lsm.get("k") == "v"

    def test_absent_returns_default(self, lsm):
        assert lsm.get("nope") is None
        assert lsm.get("nope", 0) == 0

    def test_overwrite_in_memtable(self, lsm):
        lsm.put("k", 1)
        lsm.put("k", 2)
        assert lsm.get("k") == 2

    def test_none_values_rejected(self, lsm):
        with pytest.raises(ValueError):
            lsm.put("k", None)

    def test_contains(self, lsm):
        lsm.put("k", 0)  # falsy value must still count as present
        assert "k" in lsm
        assert "other" not in lsm

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LsmStore(memtable_limit=0)
        with pytest.raises(ValueError):
            LsmStore(level_ratio=1)


class TestFlushAndCompaction:
    def test_flush_triggered_by_memtable_limit(self, lsm):
        for i in range(8):
            lsm.put(f"k{i}", i)
        assert lsm.stats.flushes == 1
        assert lsm.get("k3") == 3

    def test_read_spans_memtable_and_runs(self, lsm):
        for i in range(20):
            lsm.put(f"key{i:03d}", i)
        for i in range(20):
            assert lsm.get(f"key{i:03d}") == i

    def test_newer_run_shadows_older(self, lsm):
        lsm.put("k", "old")
        lsm.flush()
        lsm.put("k", "new")
        lsm.flush()
        assert lsm.get("k") == "new"

    def test_compaction_triggered(self, lsm):
        for i in range(40):
            lsm.put(f"k{i:03d}", i)
        assert lsm.stats.compactions >= 1
        for i in range(40):
            assert lsm.get(f"k{i:03d}") == i

    def test_compaction_reduces_runs(self):
        lsm = LsmStore(memtable_limit=4, level0_limit=2)
        for i in range(64):
            lsm.put(f"k{i:03d}", i)
        assert lsm.num_runs < 16  # without compaction there would be 16 runs

    def test_bloom_filter_skips_runs(self, lsm):
        for i in range(8):
            lsm.put(f"aaa{i}", i)
        lsm.flush()
        for _ in range(50):
            lsm.get("zzz-not-there")
        assert lsm.stats.bloom_skips > 0


class TestDeletes:
    def test_delete_in_memtable(self, lsm):
        lsm.put("k", 1)
        lsm.delete("k")
        assert lsm.get("k") is None
        assert "k" not in lsm

    def test_delete_shadows_flushed_value(self, lsm):
        lsm.put("k", 1)
        lsm.flush()
        lsm.delete("k")
        assert lsm.get("k") is None

    def test_tombstone_survives_flush(self, lsm):
        lsm.put("k", 1)
        lsm.flush()
        lsm.delete("k")
        lsm.flush()
        assert lsm.get("k") is None
        assert "k" not in dict(lsm.items())

    def test_len_ignores_deleted(self, lsm):
        lsm.put("a", 1)
        lsm.put("b", 2)
        lsm.delete("a")
        assert len(lsm) == 1


class TestRangeScans:
    def test_range_merges_all_sources(self, lsm):
        lsm.put("a", 1)
        lsm.flush()
        lsm.put("b", 2)
        lsm.flush()
        lsm.put("c", 3)
        assert lsm.range("a", "c") == [("a", 1), ("b", 2)]

    def test_range_respects_updates(self, lsm):
        lsm.put("a", "old")
        lsm.flush()
        lsm.put("a", "new")
        assert lsm.range("a", "z") == [("a", "new")]

    def test_items_sorted(self, lsm):
        for key in ["c", "a", "b"]:
            lsm.put(key, key.upper())
        assert [k for k, _ in lsm.items()] == ["a", "b", "c"]


class TestSnapshotRestore:
    def test_roundtrip(self, lsm):
        for i in range(30):
            lsm.put(f"k{i:02d}", i)
        snap = lsm.snapshot()
        lsm.put("k00", 999)
        lsm.delete("k01")
        lsm.restore(snap)
        assert lsm.get("k00") == 0
        assert lsm.get("k01") == 1


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete", "get", "flush"]),
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=0, max_value=1000),
        ),
        max_size=200,
    )
)
def test_lsm_matches_dict_model(ops):
    """Property: LSM behaves exactly like a plain dict under any op sequence."""
    lsm = LsmStore(memtable_limit=4, level0_limit=2, level_ratio=2)
    model = {}
    for op, key_index, value in ops:
        key = f"key{key_index:02d}"
        if op == "put":
            lsm.put(key, value)
            model[key] = value
        elif op == "delete":
            lsm.delete(key)
            model.pop(key, None)
        elif op == "flush":
            lsm.flush()
        else:
            assert lsm.get(key) == model.get(key)
    assert lsm.items() == sorted(model.items())


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=80),
    low=st.integers(min_value=0, max_value=50),
    span=st.integers(min_value=0, max_value=50),
)
def test_lsm_range_matches_dict_model(keys, low, span):
    """Property: range scans agree with a filtered dict."""
    lsm = LsmStore(memtable_limit=3, level0_limit=2, level_ratio=2)
    model = {}
    for i, key_index in enumerate(keys):
        key = f"k{key_index:02d}"
        lsm.put(key, i)
        model[key] = i
    lo, hi = f"k{low:02d}", f"k{min(50, low + span):02d}"
    expected = sorted((k, v) for k, v in model.items() if lo <= k < hi)
    assert lsm.range(lo, hi) == expected

"""Tests for core metrics/taxonomy/faults and the workload driver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PROFILES,
    FaultPlan,
    MetricsCollector,
    percentile,
    taxonomy_table,
)
from repro.harness import RunResult, WorkloadDriver, format_results, format_rows
from repro.net import Latency, Network
from repro.sim import Environment
from repro.transactions import ConservationInvariant
from repro.workloads import OpenLoop


class TestPercentile:
    def test_single_sample(self):
        assert percentile([5.0], 99) == 5.0

    def test_median_of_two(self):
        assert percentile([1.0, 3.0], 50) == 2.0

    def test_extremes(self):
        data = [float(i) for i in range(1, 101)]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 100.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
    def test_matches_numpy(self, samples):
        import numpy as np

        for q in (0, 25, 50, 90, 99, 100):
            assert percentile(samples, q) == pytest.approx(
                float(np.percentile(samples, q)), rel=1e-9, abs=1e-9
            )


class TestMetricsCollector:
    def test_throughput_uses_window(self):
        metrics = MetricsCollector()
        metrics.start(0.0)
        for _ in range(10):
            metrics.record_success("op", 1.0)
        metrics.stop(1000.0)  # 1 virtual second
        assert metrics.throughput() == pytest.approx(10.0)

    def test_summary_rows(self):
        metrics = MetricsCollector()
        metrics.start(0.0)
        metrics.record_success("read", 2.0)
        metrics.record_success("read", 4.0)
        metrics.record_failure("write")
        metrics.stop(500.0)
        rows = {row.name: row for row in metrics.summary()}
        assert rows["read"].completed == 2
        assert rows["read"].mean_ms == 3.0
        assert rows["write"].failed == 1

    def test_zero_window(self):
        metrics = MetricsCollector()
        assert metrics.throughput() == 0.0


class TestTaxonomy:
    def test_all_profiles_present(self):
        assert {"microservices", "actors", "faas", "dataflow", "txn-dataflow"} <= set(
            PROFILES
        )

    def test_table_renders_every_profile(self):
        table = taxonomy_table()
        for name in PROFILES:
            assert name in table

    def test_profiles_reference_real_modules(self):
        import importlib

        for profile in PROFILES.values():
            root = profile.module.rsplit(".", 1)
            importlib.import_module(profile.module.split(".txn")[0].split(".entities")[0].split(".workflows")[0].split(".transactions")[0])


class TestFaultPlan:
    def test_crash_restart_sequence(self):
        env = Environment(seed=81)
        net = Network(env)
        node = net.add_node("n")
        plan = FaultPlan().crash_restart("n", at=10.0, downtime=5.0)
        plan.apply(env, net)
        env.run(until=12.0)
        assert not node.alive
        env.run(until=20.0)
        assert node.alive

    def test_partition_heal(self):
        env = Environment(seed=82)
        net = Network(env)
        net.add_node("a")
        net.add_node("b")
        plan = FaultPlan().partition(["a"], ["b"], at=5.0, heal_at=10.0)
        plan.apply(env, net)
        env.run(until=6.0)
        assert net.is_partitioned("a", "b")
        env.run(until=11.0)
        assert not net.is_partitioned("a", "b")

    def test_loss_and_duplication(self):
        env = Environment(seed=83)
        net = Network(env)
        plan = FaultPlan().loss(0.5, at=1.0).duplication(0.2, at=2.0)
        plan.apply(env, net)
        env.run()
        assert net._global_faults.drop_rate == 0.5
        assert net._global_faults.duplicate_rate == 0.2


class TestWorkloadDriver:
    def test_run_produces_metrics_and_clean_report(self):
        env = Environment(seed=84)
        driver = WorkloadDriver(env, label="demo")

        class Op:
            def __init__(self, i):
                self.kind = "noop"
                self.op_id = f"op-{i}"

        ops = [Op(i) for i in range(20)]
        applied = []

        def execute(op):
            yield env.timeout(2.0)
            applied.append(op.op_id)
            driver.ledger.apply(op.op_id)

        result = env.run_until(
            env.process(
                driver.run(ops, execute, OpenLoop(rate_per_s=500.0, total_ops=20))
            )
        )
        assert result.completed == 20
        assert result.anomalies.clean
        assert result.throughput > 0
        assert result.p(50) >= 2.0

    def test_failures_recorded_not_acknowledged(self):
        env = Environment(seed=85)
        driver = WorkloadDriver(env)

        class Op:
            kind = "flaky"

            def __init__(self, i):
                self.op_id = f"op-{i}"

        def execute(op):
            yield env.timeout(1.0)
            if op.op_id.endswith("1"):
                raise RuntimeError("boom")
            driver.ledger.apply(op.op_id)

        result = env.run_until(
            env.process(
                driver.run(
                    [Op(i) for i in range(10)],
                    execute,
                    OpenLoop(rate_per_s=100.0, total_ops=10),
                )
            )
        )
        assert result.failed == 1
        assert result.completed == 9
        assert result.anomalies.clean  # failed op not acked -> not "lost"

    def test_invariants_checked_against_state_fn(self):
        env = Environment(seed=86)
        driver = WorkloadDriver(env)
        balances = [{"balance": 50}, {"balance": 49}]

        class Op:
            kind = "noop"
            op_id = "only"

        def execute(op):
            yield env.timeout(1.0)
            driver.ledger.apply(op.op_id)

        result = env.run_until(
            env.process(
                driver.run(
                    [Op()],
                    execute,
                    OpenLoop(rate_per_s=10.0, total_ops=1),
                    invariants=[ConservationInvariant("balance", 100)],
                    state_fn=lambda: balances,
                )
            )
        )
        assert not result.anomalies.clean
        assert "invariant" in result.anomalies.summary()


class TestReport:
    def test_format_rows(self):
        out = format_rows(["a", "b"], [[1, "x"], [2, "y"]])
        assert "a" in out and "x" in out

    def test_format_results(self):
        env = Environment(seed=87)
        driver = WorkloadDriver(env, label="cfg-1")

        class Op:
            kind = "noop"
            op_id = "op"

        def execute(op):
            yield env.timeout(1.0)
            driver.ledger.apply("op")

        result = env.run_until(
            env.process(driver.run([Op()], execute, OpenLoop(10.0, 1)))
        )
        out = format_results([result], title="demo")
        assert "cfg-1" in out
        assert "demo" in out
        assert "clean" in out

"""Tests for ordered secondary indexes and range lookups."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, IsolationLevel
from repro.sim import Environment

SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def env():
    return Environment(seed=251)


@pytest.fixture
def db(env):
    database = Database(env)
    database.create_table("items", primary_key="id")
    database.create_index("items", "price", ordered=True)
    database.load("items", [
        {"id": f"i{i}", "price": price}
        for i, price in enumerate([5, 10, 10, 25, 40, 55])
    ])
    return database


def run(env, gen):
    return env.run_until(env.process(gen))


class TestRangeLookup:
    def test_half_open_interval(self, env, db):
        def flow():
            txn = db.begin(SER)
            rows = yield from db.range_lookup(txn, "items", "price", 10, 40)
            yield from db.commit(txn)
            return sorted(r["price"] for r in rows)

        assert run(env, flow()) == [10, 10, 25]

    def test_empty_range(self, env, db):
        def flow():
            txn = db.begin(SER)
            rows = yield from db.range_lookup(txn, "items", "price", 60, 99)
            yield from db.commit(txn)
            return rows

        assert run(env, flow()) == []

    def test_requires_ordered_index(self, env, db):
        db.create_index("items", "id")  # hash-only

        def flow():
            txn = db.begin(SER)
            yield from db.range_lookup(txn, "items", "id", "a", "z")

        with pytest.raises(ValueError, match="no ordered index"):
            run(env, flow())

    def test_index_maintained_on_update(self, env, db):
        def flow():
            txn = db.begin(SER)
            yield from db.update(txn, "items", "i0", {"price": 100})
            yield from db.commit(txn)
            txn2 = db.begin(SER)
            cheap = yield from db.range_lookup(txn2, "items", "price", 0, 9)
            dear = yield from db.range_lookup(txn2, "items", "price", 99, 101)
            yield from db.commit(txn2)
            return cheap, dear

        cheap, dear = run(env, flow())
        assert cheap == []
        assert [r["id"] for r in dear] == ["i0"]

    def test_index_maintained_on_delete(self, env, db):
        def flow():
            txn = db.begin(SER)
            yield from db.delete(txn, "items", "i5")  # price 55
            yield from db.commit(txn)
            txn2 = db.begin(SER)
            rows = yield from db.range_lookup(txn2, "items", "price", 50, 60)
            yield from db.commit(txn2)
            return rows

        assert run(env, flow()) == []

    def test_sees_own_buffered_writes(self, env, db):
        def flow():
            txn = db.begin(SER)
            yield from db.insert(txn, "items", {"id": "new", "price": 30})
            rows = yield from db.range_lookup(txn, "items", "price", 26, 39)
            yield from db.commit(txn)
            return [r["id"] for r in rows]

        assert run(env, flow()) == ["new"]

    def test_survives_recovery(self, env, db):
        db.crash()
        db.recover()

        def flow():
            txn = db.begin(SER)
            rows = yield from db.range_lookup(txn, "items", "price", 10, 40)
            yield from db.commit(txn)
            return sorted(r["price"] for r in rows)

        assert run(env, flow()) == [10, 10, 25]

    def test_duplicate_values_keep_directory_consistent(self, env, db):
        """Removing one of two rows at price 10 keeps 10 in the index."""

        def flow():
            txn = db.begin(SER)
            yield from db.delete(txn, "items", "i1")  # one of the two 10s
            yield from db.commit(txn)
            txn2 = db.begin(SER)
            rows = yield from db.range_lookup(txn2, "items", "price", 10, 11)
            yield from db.commit(txn2)
            return [r["id"] for r in rows]

        assert run(env, flow()) == ["i2"]


@settings(max_examples=30, deadline=None)
@given(
    prices=st.lists(st.integers(0, 50), min_size=1, max_size=25),
    updates=st.lists(st.tuples(st.integers(0, 24), st.integers(0, 50)),
                     max_size=10),
    low=st.integers(0, 50),
    span=st.integers(0, 50),
)
def test_range_lookup_matches_scan_model(prices, updates, low, span):
    """Property: range_lookup agrees with a predicate scan."""
    env = Environment(seed=7)
    db = Database(env)
    db.create_table("t", primary_key="id")
    db.create_index("t", "v", ordered=True)
    db.load("t", [{"id": i, "v": p} for i, p in enumerate(prices)])
    high = low + span

    def apply_updates():
        for index, new_value in updates:
            if index < len(prices):
                txn = db.begin(SER)
                yield from db.update(txn, "t", index, {"v": new_value})
                yield from db.commit(txn)

    env.run_until(env.process(apply_updates()))

    def query():
        txn = db.begin(SER)
        via_index = yield from db.range_lookup(txn, "t", "v", low, high)
        via_scan = yield from db.scan(txn, "t", lambda r: low <= r["v"] < high)
        yield from db.commit(txn)
        return via_index, via_scan

    via_index, via_scan = env.run_until(env.process(query()))
    key = lambda r: (r["v"], r["id"])  # noqa: E731
    assert sorted(via_index, key=key) == sorted(via_scan, key=key)

"""Integration tests: marketplace checkout modes and TPC-C implementations."""

import pytest

from repro.apps import DbTpcc, MicroserviceShop, StyxTpcc, WorkflowTpcc
from repro.sim import Environment
from repro.workloads import MarketplaceWorkload, TpccLite


@pytest.fixture
def env():
    return Environment(seed=101)


def run(env, gen):
    return env.run_until(env.process(gen))


def check(workload, state):
    violations = []
    for invariant in workload.invariants():
        violations.extend(invariant.check(state))
    return violations


class TestShopSaga:
    @pytest.fixture
    def workload(self):
        return MarketplaceWorkload(
            num_products=10, initial_stock=50, payment_failure_rate=0.3
        )

    def test_successful_checkout_creates_order_and_payment(self, env, workload):
        shop = MicroserviceShop(env, workload, mode="saga")
        ops = [op for op in workload.operations(env.stream("ops"), 10)
               if not op.payment_fails][:3]

        def flow():
            for op in ops:
                yield from shop.execute(op)

        run(env, flow())
        state = shop.final_state()
        assert len(state["orders"]) == 3
        assert len(state["payments"]) == 3
        assert check(workload, state) == []

    def test_failed_payment_compensates_cleanly(self, env, workload):
        shop = MicroserviceShop(env, workload, mode="saga")
        op = next(op for op in workload.operations(env.stream("ops"), 20)
                  if op.payment_fails)

        def flow():
            try:
                yield from shop.execute(op)
            except Exception:
                pass

        run(env, flow())
        state = shop.final_state()
        assert state["orders"] == []
        assert state["payments"] == []
        assert check(workload, state) == []  # reservations released

    def test_concurrent_checkouts_keep_invariants(self, env, workload):
        shop = MicroserviceShop(env, workload, mode="saga")
        ops = list(workload.operations(env.stream("ops"), 30))

        def one(op):
            try:
                yield from shop.execute(op)
            except Exception:
                pass

        for op in ops:
            env.process(one(op))
        env.run()
        assert check(workload, shop.final_state()) == []


class TestShopUncoordinated:
    def test_failure_leaves_orphan_reservations(self, env):
        workload = MarketplaceWorkload(
            num_products=10, initial_stock=50, payment_failure_rate=1.0
        )
        shop = MicroserviceShop(env, workload, mode="none")
        ops = list(workload.operations(env.stream("ops"), 5))

        def one(op):
            try:
                yield from shop.execute(op)
            except Exception:
                pass

        for op in ops:
            env.process(one(op))
        env.run()
        violations = check(workload, shop.final_state())
        assert violations  # orphan reservations persist
        assert any("orphan" in v.invariant for v in violations)


class TestShop2pc:
    @pytest.fixture
    def workload(self):
        return MarketplaceWorkload(
            num_products=10, initial_stock=50, payment_failure_rate=0.2
        )

    def test_checkouts_atomic(self, env, workload):
        shop = MicroserviceShop(env, workload, mode="2pc")
        ops = list(workload.operations(env.stream("ops"), 20))
        completed = []

        def one(op):
            try:
                yield from shop.execute(op)
                completed.append(op.op_id)
            except Exception:
                pass

        for op in ops:
            env.process(one(op))
        env.run()
        state = shop.final_state()
        assert check(workload, state) == []
        assert len(state["orders"]) == len(completed)
        assert len(state["payments"]) == len(completed)

    def test_invalid_mode(self, env, workload):
        with pytest.raises(ValueError):
            MicroserviceShop(env, workload, mode="hope")


class TpccChecks:
    """Shared assertions for all three TPC-C builds."""

    def run_ops(self, env, impl, workload, count=40, concurrent=True):
        ops = list(workload.operations(env.stream("ops"), count))

        def one(op):
            try:
                yield from impl.execute(op)
            except Exception:
                pass

        if concurrent:
            for op in ops:
                env.process(one(op))
            env.run(until=100_000)
        else:
            def serial():
                for op in ops:
                    yield from one(op)

            run(env, serial())
        return ops


class TestDbTpcc(TpccChecks):
    def test_consistency_conditions_hold(self, env):
        workload = TpccLite(warehouses=2)
        impl = DbTpcc(env, workload)
        self.run_ops(env, impl, workload)
        assert check(workload, impl.final_state()) == []

    def test_orders_have_increasing_ids_per_district(self, env):
        workload = TpccLite(warehouses=1)
        impl = DbTpcc(env, workload)
        self.run_ops(env, impl, workload, count=30)
        state = impl.final_state()
        per_district = {}
        for order in state["orders"]:
            w, d, number = order["id"].split(":")
            per_district.setdefault((w, d), []).append(int(number))
        for numbers in per_district.values():
            assert sorted(numbers) == list(range(1, len(numbers) + 1))


class TestWorkflowTpcc(TpccChecks):
    def test_consistency_conditions_hold(self, env):
        workload = TpccLite(warehouses=2)
        impl = WorkflowTpcc(env, workload)
        self.run_ops(env, impl, workload)
        assert check(workload, impl.final_state()) == []

    def test_contention_causes_occ_conflicts(self, env):
        workload = TpccLite(warehouses=1)  # everything on one warehouse
        impl = WorkflowTpcc(env, workload)
        self.run_ops(env, impl, workload, count=60)
        assert impl.engine.stats.conflicts > 0


class TestStyxTpcc(TpccChecks):
    def test_consistency_conditions_hold(self, env):
        workload = TpccLite(warehouses=2)
        impl = StyxTpcc(env, workload)
        self.run_ops(env, impl, workload)
        assert check(workload, impl.final_state()) == []

    def test_no_aborts_under_contention(self, env):
        """Deterministic execution: conflicts serialize, never abort."""
        workload = TpccLite(warehouses=1)
        impl = StyxTpcc(env, workload)
        self.run_ops(env, impl, workload, count=60)
        assert impl.engine.stats.aborted == 0
        assert impl.engine.stats.committed >= 50

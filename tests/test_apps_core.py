"""Binder conformance for the `repro.apps.core` kernel.

Every (app × binder) pair must satisfy the adapter protocol, run a smoke
workload fault-free, and pass the spec's invariants — the contract that
makes one app definition portable across every runtime.  Plus the
regression the oracle layer exists for: a deliberately gapped allocator
(commit the counter, die before the insert) must be caught by the
gap-free sequence invariant, and the compiled history oracles must flag
effect/outcome mismatches.
"""

import pytest

from repro.apps.core import (
    AppSpec,
    EntitySpec,
    GapFreeSequenceSpec,
    HandlerSpec,
    UndeclaredAccess,
    bind,
    compile_oracles,
    registered_runtimes,
)
from repro.apps.invoicing import invoicing_spec
from repro.apps.ledger import ledger_spec
from repro.chaos import History
from repro.sim import Environment
from repro.workloads.invoicing import InvoiceOp, InvoicingWorkload
from repro.workloads.transfers import TransferWorkload

OPS = 12


def make_app(app):
    if app == "ledger":
        workload = TransferWorkload(num_accounts=8, initial_balance=100, amount=10)
        return ledger_spec(workload), workload
    workload = InvoicingWorkload()
    return invoicing_spec(workload), workload


def drive(env, binder, ops):
    done = []

    def one(op):
        result = yield from binder.execute(op)
        done.append((op.op_id, result))

    def main():
        pending = []
        for op in ops:
            yield env.timeout(2.0)
            pending.append(env.process(one(op)))
        for proc in pending:
            yield proc

    env.run_until(env.process(binder.setup()))
    env.run_until(env.process(main()))
    return done


@pytest.mark.parametrize("app", ["ledger", "invoicing"])
@pytest.mark.parametrize("runtime", registered_runtimes())
def test_binder_conformance(app, runtime):
    """Adapter surface + fault-free smoke workload + clean invariants."""
    env = Environment(seed=5)
    spec, workload = make_app(app)
    binder = bind(runtime, env, spec)

    assert binder.runtime == runtime
    assert binder.sound  # default construction is always the sound variant
    assert binder.spec is spec

    ops = list(workload.operations(env.stream("ops"), OPS))
    done = drive(env, binder, ops)
    assert len(done) == OPS

    state = binder.snapshot()
    assert set(state) == set(spec.entities)
    for invariant in binder.invariants():
        assert invariant.check(state) == [], (runtime, app, invariant.name)

    oracles = binder.oracles()
    assert oracles, "every spec compiles to at least one oracle"
    names = {oracle.name for oracle in oracles}
    assert f"applied_exactly({spec.effect_entity})" in names


def test_unknown_runtime_rejected():
    env = Environment(seed=1)
    spec, _ = make_app("invoicing")
    with pytest.raises(KeyError):
        bind("mainframe", env, spec)


def test_undeclared_access_rejected():
    """The kernel refuses reads/writes outside the declared key sets."""

    def body(ctx, op):
        row = yield from ctx.get("invoices", "someone-elses-invoice")
        return row

    spec, workload = make_app("invoicing")
    sneaky = AppSpec(
        name="sneaky",
        entities=[EntitySpec("invoices"), EntitySpec("counters")],
        handlers=[
            HandlerSpec(
                "invoice", body,
                reads=lambda op: [("counters", "invoice")],
                writes=lambda op: [("invoices", op.op_id)],
            )
        ],
        initial_rows=workload.initial_rows(),
        kind="invoice",
    )
    env = Environment(seed=2)
    binder = bind("db", env, sneaky)
    op = next(iter(workload.operations(env.stream("ops"), 1)))

    failures = []

    def run():
        try:
            yield from binder.execute(op)
        except UndeclaredAccess as exc:
            failures.append(exc)

    env.run_until(env.process(binder.setup()))
    env.run_until(env.process(run()))
    assert failures, "undeclared read must raise UndeclaredAccess"


def _gapped_spec(poison_op_id):
    """An allocator that commits the counter, then dies before the insert."""

    def allocate(ctx, op):
        counter = yield from ctx.get("counters", "invoice")
        number = counter["next"]
        yield from ctx.put("counters", "invoice", {"id": "invoice", "next": number + 1})
        ctx.scratch["number"] = number
        return number

    def insert(ctx, op):
        if op.op_id == poison_op_id:
            raise RuntimeError("app process died between the two transactions")
        yield from ctx.put("invoices", op.op_id, {
            "id": op.op_id, "number": ctx.scratch["number"],
        })

    def atomic(ctx, op):
        number = yield from allocate(ctx, op)
        yield from insert(ctx, op)
        return number

    return AppSpec(
        name="gapped",
        entities=[EntitySpec("invoices"), EntitySpec("counters")],
        handlers=[
            HandlerSpec(
                "invoice", atomic,
                reads=lambda op: [("counters", "invoice")],
                writes=lambda op: [("counters", "invoice"), ("invoices", op.op_id)],
                steps=(allocate, insert),
            )
        ],
        invariants=[GapFreeSequenceSpec("invoices", "number", "counters", "invoice")],
        initial_rows={"counters": [{"id": "invoice", "next": 1}]},
        kind="invoice",
        effect_entity="invoices",
    )


def _issue_invoices(binder, env, poison_op_id):
    ops = [InvoiceOp(f"inv-{i:03d}", f"cust-{i}", 10) for i in range(6)]
    issued = []

    def one(op):
        try:
            yield from binder.execute(op)
            issued.append(op.op_id)
        except RuntimeError:
            pass  # the poisoned op's app process "died"

    def main():
        for op in ops:
            yield from one(op)

    env.run_until(env.process(binder.setup()))
    env.run_until(env.process(main()))
    assert poison_op_id not in issued


def test_gap_free_invariant_catches_gapped_allocator():
    """The split allocator burns a number; the compiled invariant sees it."""
    env = Environment(seed=3)
    spec = _gapped_spec("inv-002")
    binder = bind("db", env, spec, transaction_per_step=True)
    assert not binder.sound
    _issue_invoices(binder, env, "inv-002")

    state = binder.snapshot()
    violations = [
        violation
        for invariant in binder.invariants()
        for violation in invariant.check(state)
    ]
    assert violations, "gap-free invariant must flag the burned number"
    assert any("gap" in v.detail or "missing" in v.detail for v in violations)


def test_atomic_allocator_survives_the_same_death():
    """Control: one-transaction execution of the same handler stays clean."""
    env = Environment(seed=3)
    spec = _gapped_spec("inv-002")
    binder = bind("db", env, spec)  # atomic body, same poisoned insert
    assert binder.sound
    _issue_invoices(binder, env, "inv-002")

    state = binder.snapshot()
    for invariant in binder.invariants():
        assert invariant.check(state) == []


def test_compiled_oracles_flag_effect_mismatches():
    """The history-aware applied-exactly oracle judges ok/fail outcomes."""
    spec, _ = make_app("invoicing")
    oracles = compile_oracles(spec)
    applied = next(o for o in oracles if o.name.startswith("applied_exactly"))

    history = History()
    history.invoke(0.0, "c0", "inv-0", "invoice")
    history.ok(1.0, "inv-0")
    history.invoke(2.0, "c0", "inv-1", "invoice")
    history.fail(3.0, "inv-1")
    history.invoke(4.0, "c0", "inv-2", "invoice")
    history.info(5.0, "inv-2")

    # inv-0 acknowledged but missing; inv-1 failed but present; inv-2
    # unknown, so either world is fine.
    final_state = {"invoices": [
        {"id": "inv-1", "number": 1},
        {"id": "inv-2", "number": 2},
    ]}
    violations = applied.check(history, final_state)
    details = "\n".join(v.detail for v in violations)
    assert len(violations) == 2
    assert "inv-0" in details and "inv-1" in details and "inv-2" not in details

    # The happy world: every ok op present, every failed op absent.
    final_state = {"invoices": [
        {"id": "inv-0", "number": 1},
    ]}
    assert applied.check(history, final_state) == []

"""Same seed, same results — with or without tracing.

Two guarantees the observability subsystem must hold:

1. Determinism: two runs with the same seed produce identical metrics
   summaries AND byte-identical serialized trace output.
2. Zero cost when disabled: a run without a tracer produces exactly the
   same metrics as the traced run (tracing never perturbs the simulation).
"""

from repro.db import DatabaseServer, IsolationLevel
from repro.harness import WorkloadDriver
from repro.obs import Tracer
from repro.sim import Environment
from repro.workloads import OpenLoop


def run_scenario(seed, traced):
    """A small YCSB-flavoured read/update mix over one database server."""
    if traced:
        env = Environment(seed=seed, tracer=Tracer())
    else:
        env = Environment(seed=seed)
    server = DatabaseServer(env, name="store")
    server.create_table("kv")
    server.load("kv", [{"id": i, "v": 0} for i in range(16)])
    driver = WorkloadDriver(env, label="determinism")
    rng = env.stream("ops")

    class Op:
        def __init__(self, i):
            self.kind = "read" if rng.random() < 0.5 else "update"
            self.key = rng.randrange(16)
            self.op_id = f"op-{i}"

    ops = [Op(i) for i in range(30)]

    def execute(op):
        txn = yield from server.begin(IsolationLevel.SNAPSHOT)
        if op.kind == "read":
            yield from server.get(txn, "kv", op.key)
        else:
            row = yield from server.get(txn, "kv", op.key)
            yield from server.put(txn, "kv", op.key, {"id": op.key, "v": row["v"] + 1})
        yield from server.commit(txn)
        driver.ledger.apply(op.op_id)

    result = env.run_until(
        env.process(driver.run(ops, execute, OpenLoop(rate_per_s=400.0, total_ops=30)))
    )
    return result


def summary_tuples(result):
    return [
        (s.name, s.completed, s.failed, s.mean_ms, s.p50_ms, s.p99_ms)
        for s in result.metrics.summary()
    ]


def test_same_seed_runs_are_identical_including_trace():
    first = run_scenario(seed=101, traced=True)
    second = run_scenario(seed=101, traced=True)
    assert summary_tuples(first) == summary_tuples(second)
    assert first.completed == second.completed == 30
    assert first.trace_json() == second.trace_json()  # byte-identical


def test_different_seeds_diverge():
    # Sanity check that the scenario is actually seed-sensitive, so the
    # identity assertion above is meaningful.
    a = run_scenario(seed=101, traced=True)
    b = run_scenario(seed=202, traced=True)
    assert a.trace_json() != b.trace_json()


def test_tracing_disabled_leaves_metrics_unchanged():
    traced = run_scenario(seed=101, traced=True)
    untraced = run_scenario(seed=101, traced=False)
    assert untraced.trace is None
    assert summary_tuples(traced) == summary_tuples(untraced)
    assert traced.throughput == untraced.throughput
    assert traced.p(99) == untraced.p(99)

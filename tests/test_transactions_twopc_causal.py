"""Tests for the 2PC coordinator, vector clocks, and the causal store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, IsolationLevel
from repro.sim import Environment
from repro.transactions import CausalStore, TwoPhaseCommit, VectorClock

SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def env():
    return Environment(seed=13)


def run(env, gen):
    return env.run_until(env.process(gen))


def make_bank(env, name):
    db = Database(env, name=name)
    db.create_table("accounts", primary_key="id")
    db.load("accounts", [{"id": "acct", "balance": 100}])
    return db


class TestTwoPhaseCommit:
    def test_commit_applies_on_all_participants(self, env):
        db_a, db_b = make_bank(env, "a"), make_bank(env, "b")
        coordinator = TwoPhaseCommit(env)

        def flow():
            txn_a = db_a.begin(SER)
            txn_b = db_b.begin(SER)
            yield from db_a.update(txn_a, "accounts", "acct", {"balance": 50})
            yield from db_b.update(txn_b, "accounts", "acct", {"balance": 150})
            outcome = yield from coordinator.run([(db_a, txn_a), (db_b, txn_b)])
            return outcome

        outcome = run(env, flow())
        assert outcome.decision == "committed"
        assert db_a.read_latest("accounts", "acct")["balance"] == 50
        assert db_b.read_latest("accounts", "acct")["balance"] == 150

    def test_prepare_failure_aborts_everyone(self, env):
        db_a, db_b = make_bank(env, "a"), make_bank(env, "b")
        coordinator = TwoPhaseCommit(env)

        class FailingParticipant:
            def prepare(self, txn):
                yield env.timeout(1)
                raise RuntimeError("disk full")

            def abort(self, txn):
                yield env.timeout(1)

        def flow():
            txn_a = db_a.begin(SER)
            yield from db_a.update(txn_a, "accounts", "acct", {"balance": 0})
            outcome = yield from coordinator.run(
                [(db_a, txn_a), (FailingParticipant(), None)]
            )
            return outcome

        outcome = run(env, flow())
        assert outcome.decision == "aborted"
        assert outcome.failed_participant == 1
        assert db_a.read_latest("accounts", "acct")["balance"] == 100
        assert db_a.in_doubt() == []

    def test_coordinator_crash_leaves_in_doubt_and_blocks(self, env):
        """The blocking problem: in-doubt participants hold their locks."""
        db_a = make_bank(env, "a")
        coordinator = TwoPhaseCommit(env)
        blocked_reader_progress = []

        def flow():
            txn = db_a.begin(SER)
            yield from db_a.update(txn, "accounts", "acct", {"balance": 0})
            outcome = yield from coordinator.run([(db_a, txn)], crash_before_decision=True)
            return outcome

        def reader():
            yield env.timeout(2)
            txn = db_a.begin(SER)
            row = yield from db_a.get(txn, "accounts", "acct")
            yield from db_a.commit(txn)
            blocked_reader_progress.append((env.now, row["balance"]))

        outcome_proc = env.process(flow())
        env.process(reader())
        env.run(until=100)
        outcome = outcome_proc.result()
        assert outcome.decision == "in_doubt"
        assert blocked_reader_progress == []  # reader still blocked at t=100

        run(env, coordinator.recover(outcome.xid, commit=True))
        env.run()
        assert blocked_reader_progress[0][1] == 0  # unblocked, sees commit

    def test_recover_abort(self, env):
        db_a = make_bank(env, "a")
        coordinator = TwoPhaseCommit(env)

        def flow():
            txn = db_a.begin(SER)
            yield from db_a.update(txn, "accounts", "acct", {"balance": 0})
            return (yield from coordinator.run([(db_a, txn)], crash_before_decision=True))

        outcome = run(env, flow())
        assert run(env, coordinator.recover(outcome.xid, commit=False))
        assert db_a.read_latest("accounts", "acct")["balance"] == 100

    def test_recover_unknown_xid(self, env):
        coordinator = TwoPhaseCommit(env)
        assert not run(env, coordinator.recover(999))

    def test_decision_delay_charged(self, env):
        db_a = make_bank(env, "a")
        coordinator = TwoPhaseCommit(env, decision_delay=25.0)

        def flow():
            txn = db_a.begin(SER)
            yield from db_a.update(txn, "accounts", "acct", {"balance": 0})
            outcome = yield from coordinator.run([(db_a, txn)])
            return outcome

        outcome = run(env, flow())
        assert outcome.total_duration >= 25.0


class TestParticipantFailureWindow:
    """Participant crash after voting yes: the prepared "zombie" must keep
    blocking conflicting work across the restart, or a writer can commit
    over rows the in-doubt transaction installs at resolve time."""

    def _prepare_zombie(self, env, db):
        def flow():
            txn = db.begin(SER)
            yield from db.update(txn, "accounts", "acct", {"balance": 0})
            yield from db.prepare(txn)
            return txn

        txn = run(env, flow())
        db.crash()
        db.recover()
        assert db.in_doubt() == [txn.tid]
        return txn

    def _deposit(self, env, db, amount, log):
        """A conflicting read-modify-write: final balance reveals whether
        it observed the in-doubt commit or the pre-prepare state."""
        txn = db.begin(SER)
        row = yield from db.get(txn, "accounts", "acct")
        yield from db.update(txn, "accounts", "acct",
                             {"balance": row["balance"] + amount})
        yield from db.commit(txn)
        log.append(env.now)

    def test_zombie_prepared_txn_blocks_writer_until_commit(self, env):
        db = make_bank(env, "a")
        zombie = self._prepare_zombie(env, db)
        committed = []
        env.process(self._deposit(env, db, 5, committed))
        env.run(until=100)
        assert committed == []  # recovered in-doubt txn still holds locks
        db.resolve_in_doubt(zombie.tid, commit=True)
        env.run(until=200)
        assert committed  # decision released the locks
        # Writer ran after the in-doubt commit: 0 + 5, not 100 + 5.
        assert db.read_latest("accounts", "acct")["balance"] == 5

    def test_zombie_prepared_txn_abort_discards_writes(self, env):
        db = make_bank(env, "a")
        zombie = self._prepare_zombie(env, db)
        committed = []
        env.process(self._deposit(env, db, 5, committed))
        env.run(until=100)
        assert committed == []
        db.resolve_in_doubt(zombie.tid, commit=False)
        env.run(until=200)
        assert committed
        # Aborted zombie left no trace: 100 + 5.
        assert db.read_latest("accounts", "acct")["balance"] == 105

    def test_resolved_in_doubt_commit_survives_second_crash(self, env):
        db = make_bank(env, "a")
        zombie = self._prepare_zombie(env, db)
        db.resolve_in_doubt(zombie.tid, commit=True)
        db.crash()
        db.recover()
        assert db.in_doubt() == []
        assert db.read_latest("accounts", "acct")["balance"] == 0

    def test_coordinator_and_participant_both_crash(self, env):
        """The worst window: coordinator dies before the decision AND the
        participant restarts while prepared.  Recovery on both sides must
        still land the commit exactly once."""
        db = make_bank(env, "a")
        coordinator = TwoPhaseCommit(env)

        def flow():
            txn = db.begin(SER)
            yield from db.update(txn, "accounts", "acct", {"balance": 0})
            return (yield from coordinator.run([(db, txn)],
                                               crash_before_decision=True))

        outcome = run(env, flow())
        assert outcome.decision == "in_doubt"
        db.crash()
        db.recover()
        assert len(db.in_doubt()) == 1
        committed = []
        env.process(self._deposit(env, db, 5, committed))
        env.run(until=100)
        assert committed == []  # blocked through both failures
        assert run(env, coordinator.recover(outcome.xid, commit=True))
        env.run(until=200)
        assert committed
        assert db.read_latest("accounts", "acct")["balance"] == 5


class TestVectorClock:
    def test_increment_and_get(self):
        vc = VectorClock().increment("a").increment("a").increment("b")
        assert vc.get("a") == 2
        assert vc.get("b") == 1
        assert vc.get("zzz") == 0

    def test_happens_before(self):
        earlier = VectorClock().increment("a")
        later = earlier.increment("b")
        assert earlier.happens_before(later)
        assert not later.happens_before(earlier)

    def test_concurrency(self):
        base = VectorClock()
        left = base.increment("a")
        right = base.increment("b")
        assert left.concurrent_with(right)
        assert not left.concurrent_with(left)

    def test_merge_is_pointwise_max(self):
        left = VectorClock({"a": 3, "b": 1})
        right = VectorClock({"a": 1, "b": 5, "c": 2})
        merged = left.merge(right)
        assert merged.as_dict() == {"a": 3, "b": 5, "c": 2}

    def test_equality_ignores_zero_entries(self):
        assert VectorClock({"a": 1, "b": 0}) == VectorClock({"a": 1})
        assert hash(VectorClock({"a": 1, "b": 0})) == hash(VectorClock({"a": 1}))

    def test_immutability_of_operations(self):
        vc = VectorClock({"a": 1})
        vc.increment("a")
        vc.merge(VectorClock({"b": 9}))
        assert vc.as_dict() == {"a": 1}

    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=20)
    )
    def test_chain_of_increments_is_totally_ordered(self, ops):
        clocks = [VectorClock()]
        for replica in ops:
            clocks.append(clocks[-1].increment(replica))
        for i in range(len(clocks) - 1):
            assert clocks[i].happens_before(clocks[i + 1])
            assert clocks[i + 1].dominates(clocks[i])


class TestCausalStore:
    def test_read_your_writes_on_same_replica(self, env):
        store = CausalStore(env, ["r1", "r2"])
        session = store.session("r1")
        session.write("k", "v")

        def flow():
            return (yield from session.read("k"))

        assert run(env, flow()) == "v"

    def test_eventual_read_can_be_stale(self, env):
        store = CausalStore(env, ["r1", "r2"], replication_delay=10.0)
        writer = store.session("r1")
        writer.write("k", "new")
        reader = store.session("r2")
        assert reader.read_eventual("k") is None  # replication not done

    def test_causal_read_waits_for_session_context(self, env):
        """Session moves replicas: read blocks until r2 caught up."""
        store = CausalStore(env, ["r1", "r2"], replication_delay=10.0)
        session = store.session("r1")
        session.write("k", "v")
        session.move_to("r2")

        def flow():
            value = yield from session.read("k")
            return env.now, value

        when, value = run(env, flow())
        assert value == "v"
        assert when >= 10.0
        assert store.stats.stale_reads_prevented == 1

    def test_cross_service_context_attach(self, env):
        """Antipode-style lineage: service B adopts A's context."""
        store = CausalStore(env, ["r1", "r2"], replication_delay=10.0)
        service_a = store.session("r1")
        service_a.write("order", "placed")
        service_b = store.session("r2")
        service_b.attach(service_a.context)

        def flow():
            return (yield from service_b.read("order"))

        assert run(env, flow()) == "placed"

    def test_dependency_buffering_orders_applies(self, env):
        """A later write never becomes visible before its dependency."""
        store = CausalStore(env, ["r1", "r2", "r3"], replication_delay=5.0)
        session_a = store.session("r1")
        session_a.write("x", 1)

        # A session on r2 that has seen x=1 writes y (depends on x).
        def flow():
            session_b = store.session("r2")
            session_b.attach(session_a.context)
            value = yield from session_b.read("x")
            assert value == 1
            session_b.write("y", "after-x")
            # On r3, whenever y is visible, x must be too.
            checks = []
            for _ in range(30):
                yield env.timeout(1.0)
                y_value, _ = store.read("r3", "y")
                x_value, _ = store.read("r3", "x")
                if y_value is not None:
                    checks.append(x_value)
            return checks

        checks = run(env, flow())
        assert checks  # y did become visible
        assert all(value == 1 for value in checks)

    def test_no_replicas_rejected(self, env):
        with pytest.raises(ValueError):
            CausalStore(env, [])

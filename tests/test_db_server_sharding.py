"""Tests for the database server facade and the sharded database."""

import pytest

from repro.db import DatabaseServer, IsolationLevel, ShardedDatabase
from repro.db.sharding import shard_of
from repro.net.latency import Latency
from repro.sim import Environment

SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def env():
    return Environment(seed=9)


def run(env, gen):
    return env.run_until(env.process(gen))


class TestDatabaseServer:
    def make_server(self, env, connections=2):
        server = DatabaseServer(
            env,
            connections=connections,
            op_service_time=Latency.constant(1.0),
            network_rtt=Latency.constant(1.0),
        )
        server.create_table("t", primary_key="k")
        server.load("t", [{"k": 1, "v": "a"}])
        return server

    def test_operations_charge_latency(self, env):
        server = self.make_server(env)

        def flow():
            txn = yield from server.begin(SER)
            yield from server.get(txn, "t", 1)
            yield from server.commit(txn)
            return env.now

        elapsed = run(env, flow())
        assert elapsed == pytest.approx(6.0)  # 3 ops x (1 rtt + 1 service)

    def test_connection_pool_limits_concurrency(self, env):
        server = self.make_server(env, connections=1)
        order = []

        def client(name):
            txn = yield from server.begin(SER)
            order.append((name, "begin", env.now))
            yield env.timeout(10)
            yield from server.commit(txn)

        env.process(client("a"))
        env.process(client("b"))
        env.run()
        begins = {name: t for name, _, t in order}
        assert begins["b"] - begins["a"] >= 10  # b waited for a's connection

    def test_abort_releases_connection(self, env):
        server = self.make_server(env, connections=1)

        def flow():
            txn = yield from server.begin(SER)
            yield from server.abort(txn)
            txn2 = yield from server.begin(SER)
            yield from server.commit(txn2)
            return True

        assert run(env, flow())

    def test_crud_roundtrip(self, env):
        server = self.make_server(env)

        def flow():
            txn = yield from server.begin(SER)
            yield from server.insert(txn, "t", {"k": 2, "v": "b"})
            yield from server.update(txn, "t", 1, {"v": "a2"})
            rows = yield from server.scan(txn, "t")
            yield from server.commit(txn)
            return sorted(r["v"] for r in rows)

        assert run(env, flow()) == ["a2", "b"]

    def test_xa_flow(self, env):
        server = self.make_server(env)

        def flow():
            txn = yield from server.begin(SER)
            yield from server.put(txn, "t", 3, {"k": 3, "v": "c"})
            yield from server.prepare(txn)
            yield from server.commit_prepared(txn)

        run(env, flow())
        assert server.engine.read_latest("t", 3)["v"] == "c"


class TestShardRouting:
    def test_routing_is_deterministic(self):
        assert shard_of("key-1", 4) == shard_of("key-1", 4)

    def test_routing_spreads_keys(self):
        shards = {shard_of(f"key-{i}", 4) for i in range(100)}
        assert shards == {0, 1, 2, 3}

    def test_invalid_shard_count(self, env):
        with pytest.raises(ValueError):
            ShardedDatabase(env, num_shards=0)


class TestShardedDatabase:
    @pytest.fixture
    def sdb(self, env):
        sharded = ShardedDatabase(env, num_shards=4, rtt_ms=1.0)
        sharded.create_table("accounts", primary_key="id")
        sharded.load(
            "accounts",
            [{"id": f"acct-{i}", "balance": 100} for i in range(20)],
        )
        return sharded

    def test_load_routes_rows(self, env, sdb):
        counts = [len(shard.all_rows("accounts")) for shard in sdb.shards]
        assert sum(counts) == 20
        assert all(c > 0 for c in counts)

    def test_single_shard_txn_one_phase(self, env, sdb):
        def flow():
            txn = sdb.begin(SER)
            row = yield from sdb.get(txn, "accounts", "acct-1")
            yield from sdb.put(txn, "accounts", "acct-1", {**row, "balance": 0})
            yield from sdb.commit(txn)

        run(env, flow())
        assert sdb.read_latest("accounts", "acct-1")["balance"] == 0
        assert sdb.stats.single_shard_commits == 1
        assert sdb.stats.distributed_commits == 0

    def _find_cross_shard_pair(self, sdb):
        base = shard_of("acct-0", 4)
        for i in range(1, 20):
            if shard_of(f"acct-{i}", 4) != base:
                return "acct-0", f"acct-{i}"
        raise AssertionError("no cross-shard pair found")

    def test_cross_shard_transfer_atomic(self, env, sdb):
        src, dst = self._find_cross_shard_pair(sdb)

        def flow():
            txn = sdb.begin(SER)
            a = yield from sdb.get(txn, "accounts", src)
            b = yield from sdb.get(txn, "accounts", dst)
            yield from sdb.put(txn, "accounts", src, {**a, "balance": a["balance"] - 30})
            yield from sdb.put(txn, "accounts", dst, {**b, "balance": b["balance"] + 30})
            yield from sdb.commit(txn)

        run(env, flow())
        assert sdb.read_latest("accounts", src)["balance"] == 70
        assert sdb.read_latest("accounts", dst)["balance"] == 130
        assert sdb.stats.distributed_commits == 1

    def test_cross_shard_commit_costs_more_round_trips(self, env, sdb):
        src, dst = self._find_cross_shard_pair(sdb)

        def local_flow():
            txn = sdb.begin(SER)
            yield from sdb.put(txn, "accounts", src, {"id": src, "balance": 1})
            start = env.now
            yield from sdb.commit(txn)
            return env.now - start

        def dist_flow():
            txn = sdb.begin(SER)
            yield from sdb.put(txn, "accounts", src, {"id": src, "balance": 1})
            yield from sdb.put(txn, "accounts", dst, {"id": dst, "balance": 1})
            start = env.now
            yield from sdb.commit(txn)
            return env.now - start

        local_cost = run(env, local_flow())
        dist_cost = run(env, dist_flow())
        assert dist_cost >= 3 * local_cost  # prepare+commit x 2 shards vs 1 msg

    def test_abort_rolls_back_all_branches(self, env, sdb):
        src, dst = self._find_cross_shard_pair(sdb)

        def flow():
            txn = sdb.begin(SER)
            yield from sdb.put(txn, "accounts", src, {"id": src, "balance": 0})
            yield from sdb.put(txn, "accounts", dst, {"id": dst, "balance": 0})
            sdb.abort(txn)

        run(env, flow())
        assert sdb.read_latest("accounts", src)["balance"] == 100
        assert sdb.read_latest("accounts", dst)["balance"] == 100

    def test_conservation_under_concurrent_transfers(self, env, sdb):
        """Money is conserved across shards under concurrency + 2PC."""
        from repro.db.errors import TransactionAborted

        rng = env.stream("test")

        def transfer(src, dst, amount):
            txn = sdb.begin(SER)
            try:
                a = yield from sdb.get(txn, "accounts", src)
                b = yield from sdb.get(txn, "accounts", dst)
                yield from sdb.put(
                    txn, "accounts", src, {**a, "balance": a["balance"] - amount}
                )
                yield from sdb.put(
                    txn, "accounts", dst, {**b, "balance": b["balance"] + amount}
                )
                yield from sdb.commit(txn)
            except TransactionAborted:
                sdb.abort(txn)

        for i in range(30):
            src = f"acct-{rng.randrange(20)}"
            dst = f"acct-{rng.randrange(20)}"
            if src != dst:
                env.process(transfer(src, dst, 10))
        env.run()
        total = sum(r["balance"] for r in sdb.all_rows("accounts"))
        assert total == 20 * 100

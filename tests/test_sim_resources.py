"""Unit tests for channels, stores, locks, and semaphores."""

import pytest

from repro.sim import Channel, Environment, Lock, Semaphore, SimulationError, Store
from repro.sim.resources import ChannelClosed


@pytest.fixture
def env():
    return Environment(seed=11)


class TestChannel:
    def test_put_then_get(self, env):
        ch = Channel(env)
        ch.put("a")
        fut = ch.get()
        env.run()
        assert fut.result() == "a"

    def test_get_blocks_until_put(self, env):
        ch = Channel(env)

        def consumer(env):
            item = yield ch.get()
            return (env.now, item)

        proc = env.process(consumer(env))
        env.schedule(5.0, ch.put, "x")
        env.run()
        assert proc.result() == (5.0, "x")

    def test_fifo_ordering(self, env):
        ch = Channel(env)
        for i in range(3):
            ch.put(i)
        results = []

        def consumer(env):
            for _ in range(3):
                results.append((yield ch.get()))

        env.process(consumer(env))
        env.run()
        assert results == [0, 1, 2]

    def test_multiple_getters_fifo(self, env):
        ch = Channel(env)
        first, second = ch.get(), ch.get()
        ch.put("one")
        ch.put("two")
        env.run()
        assert first.result() == "one"
        assert second.result() == "two"

    def test_get_nowait(self, env):
        ch = Channel(env)
        ch.put(1)
        assert ch.get_nowait() == 1
        with pytest.raises(IndexError):
            ch.get_nowait()

    def test_close_fails_getters(self, env):
        ch = Channel(env)
        fut = ch.get()
        ch.close()
        env.run()
        assert isinstance(fut.exception(), ChannelClosed)

    def test_put_on_closed_raises(self, env):
        ch = Channel(env)
        ch.close()
        with pytest.raises(SimulationError):
            ch.put(1)

    def test_len(self, env):
        ch = Channel(env)
        ch.put(1)
        ch.put(2)
        assert len(ch) == 2


class TestStore:
    def test_put_blocks_at_capacity(self, env):
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            for i in range(2):
                yield store.put(i)
                times.append(env.now)

        def consumer(env):
            yield env.timeout(10)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times[0] == 0.0
        assert times[1] == 10.0

    def test_get_waits_for_item(self, env):
        store = Store(env, capacity=2)
        fut = store.get()
        env.schedule(3.0, lambda: store.put("v"))
        env.run()
        assert fut.result() == "v"

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)


class TestLock:
    def test_mutual_exclusion(self, env):
        lock = Lock(env)
        timeline = []

        def worker(env, name, hold):
            yield lock.acquire()
            timeline.append((env.now, name, "in"))
            yield env.timeout(hold)
            timeline.append((env.now, name, "out"))
            lock.release()

        env.process(worker(env, "a", 5))
        env.process(worker(env, "b", 5))
        env.run()
        assert timeline == [
            (0.0, "a", "in"),
            (5.0, "a", "out"),
            (5.0, "b", "in"),
            (10.0, "b", "out"),
        ]

    def test_release_unheld_raises(self, env):
        lock = Lock(env)
        with pytest.raises(SimulationError):
            lock.release()

    def test_locked_property(self, env):
        lock = Lock(env)
        assert not lock.locked
        lock.acquire()
        assert lock.locked
        lock.release()
        assert not lock.locked


class TestSemaphore:
    def test_permits_limit_concurrency(self, env):
        sem = Semaphore(env, permits=2)
        active = {"count": 0, "max": 0}

        def worker(env):
            yield sem.acquire()
            active["count"] += 1
            active["max"] = max(active["max"], active["count"])
            yield env.timeout(1)
            active["count"] -= 1
            sem.release()

        for _ in range(6):
            env.process(worker(env))
        env.run()
        assert active["max"] == 2
        assert sem.available == 2

    def test_over_release_raises(self, env):
        sem = Semaphore(env, permits=1)
        with pytest.raises(SimulationError):
            sem.release()

    def test_invalid_permits(self, env):
        with pytest.raises(ValueError):
            Semaphore(env, permits=0)

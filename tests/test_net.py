"""Unit tests for the simulated network: latency, loss, duplication, partitions."""

import random

import pytest

from repro.net import Latency, Network, NodeCrashed
from repro.sim import Environment, Interrupted


@pytest.fixture
def env():
    return Environment(seed=5)


@pytest.fixture
def net(env):
    network = Network(env, default_latency=Latency.constant(1.0))
    network.add_node("a")
    network.add_node("b")
    return network


def collect(net, node_name, port):
    """Bind a port and return the list its messages accumulate into."""
    inbox = net.node(node_name).bind(port)
    received = []

    def pump(env):
        while True:
            msg = yield inbox.get()
            received.append(msg)

    net.node(node_name).spawn(pump(net.env))
    return received


class TestLatencySamplers:
    def test_constant(self):
        rng = random.Random(0)
        assert Latency.constant(2.5)(rng) == 2.5

    def test_uniform_bounds(self):
        rng = random.Random(0)
        sampler = Latency.uniform(1.0, 2.0)
        for _ in range(100):
            assert 1.0 <= sampler(rng) <= 2.0

    def test_lognormal_median(self):
        rng = random.Random(0)
        sampler = Latency.lognormal(10.0, 0.25)
        samples = sorted(sampler(rng) for _ in range(4001))
        median = samples[len(samples) // 2]
        assert 8.5 < median < 11.5

    def test_shifted_exponential_floor(self):
        rng = random.Random(0)
        sampler = Latency.shifted_exponential(5.0, 1.0)
        assert all(sampler(rng) >= 5.0 for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            Latency.constant(-1)
        with pytest.raises(ValueError):
            Latency.uniform(3, 2)
        with pytest.raises(ValueError):
            Latency.exponential(0)
        with pytest.raises(ValueError):
            Latency.lognormal(0)


class TestDelivery:
    def test_message_arrives_after_latency(self, env, net):
        received = collect(net, "b", "svc")
        net.send("a", "b", "svc", {"op": "ping"})
        env.run()
        assert len(received) == 1
        msg = received[0]
        assert msg.payload == {"op": "ping"}
        assert msg.sent_at == 0.0
        assert env.now >= 1.0

    def test_unknown_destination_raises(self, net):
        with pytest.raises(KeyError):
            net.send("a", "zzz", "svc", None)

    def test_unbound_port_drops(self, env, net):
        net.send("a", "b", "nobody-listens", None)
        env.run()
        assert net.stats.dropped_dead == 1
        assert net.stats.dropped_crashed_inflight == 0
        assert net.stats.delivered == 0

    def test_stats_count_delivered(self, env, net):
        collect(net, "b", "svc")
        for _ in range(10):
            net.send("a", "b", "svc", None)
        env.run()
        assert net.stats.sent == 10
        assert net.stats.delivered == 10


class TestFaults:
    def test_loss_drops_messages(self, env, net):
        received = collect(net, "b", "svc")
        net.set_loss(1.0)
        for _ in range(5):
            net.send("a", "b", "svc", None)
        env.run()
        assert received == []
        assert net.stats.dropped_loss == 5

    def test_partial_loss_is_probabilistic(self, env, net):
        received = collect(net, "b", "svc")
        net.set_loss(0.5)
        for _ in range(400):
            net.send("a", "b", "svc", None)
        env.run()
        assert 100 < len(received) < 300

    def test_duplication_delivers_twice(self, env, net):
        received = collect(net, "b", "svc")
        net.set_duplication(1.0)
        net.send("a", "b", "svc", "hello")
        env.run()
        assert len(received) == 2
        assert received[0].msg_id == received[1].msg_id
        assert received[1].duplicate

    def test_per_link_loss_only_affects_that_link(self, env, net):
        net.add_node("c")
        received_b = collect(net, "b", "svc")
        received_c = collect(net, "c", "svc")
        net.set_loss(1.0, src="a", dst="b")
        net.send("a", "b", "svc", None)
        net.send("a", "c", "svc", None)
        env.run()
        assert received_b == []
        assert len(received_c) == 1

    def test_extra_delay(self, env, net):
        received = collect(net, "b", "svc")
        net.set_extra_delay(100.0)
        net.send("a", "b", "svc", None)
        env.run()
        assert env.now >= 101.0
        assert len(received) == 1


class TestPartitions:
    def test_partition_cuts_both_directions(self, env, net):
        received_b = collect(net, "b", "svc")
        received_a = collect(net, "a", "svc")
        net.partition(["a"], ["b"])
        net.send("a", "b", "svc", None)
        net.send("b", "a", "svc", None)
        env.run()
        assert received_a == [] and received_b == []
        assert net.stats.dropped_partition == 2

    def test_heal_restores_connectivity(self, env, net):
        received = collect(net, "b", "svc")
        net.partition(["a"], ["b"])
        net.heal()
        net.send("a", "b", "svc", None)
        env.run()
        assert len(received) == 1

    def test_partition_cuts_in_flight_messages(self, env, net):
        received = collect(net, "b", "svc")
        net.send("a", "b", "svc", None)  # in flight for 1ms
        env.schedule(0.5, net.partition, ["a"], ["b"])
        env.run()
        assert received == []
        assert net.stats.dropped_partition == 1


class TestNodeLifecycle:
    def test_crash_interrupts_processes(self, env, net):
        outcome = []

        def worker(env):
            try:
                yield env.timeout(100)
            except Interrupted as exc:
                outcome.append(exc.cause)

        node = net.node("a")
        node.spawn(worker(env))
        env.schedule(5.0, node.crash, "power loss")
        env.run()
        assert outcome == ["power loss"]

    def test_messages_to_dead_node_dropped(self, env, net):
        received = collect(net, "b", "svc")
        net.node("b").crash()
        net.send("a", "b", "svc", None)
        env.run()
        assert received == []
        assert net.stats.dropped_dead == 1
        assert net.stats.dropped_crashed_inflight == 0

    def test_crash_race_counted_separately(self, env, net):
        # Receiver alive at send time but crashes while the message is in
        # flight: that is a crash-race, not a send-to-dead.
        received = collect(net, "b", "svc")
        net.send("a", "b", "svc", None)  # in flight for 1ms
        env.schedule(0.5, net.node("b").crash)
        env.run()
        assert received == []
        assert net.stats.dropped_crashed_inflight == 1
        assert net.stats.dropped_dead == 0
        assert "dropped_crashed_inflight" in net.stats.as_dict()

    def test_spawn_on_dead_node_raises(self, env, net):
        node = net.node("a")
        node.crash()
        with pytest.raises(NodeCrashed):
            node.spawn(iter(()))

    def test_restart_fires_hooks_and_bumps_incarnation(self, env, net):
        node = net.node("a")
        hooks = []
        node.on_restart(lambda n: hooks.append(n.incarnation))
        node.crash()
        node.restart()
        assert node.alive
        assert node.incarnation == 1
        assert hooks == [1]

    def test_restarted_node_receives_again(self, env, net):
        node = net.node("b")
        node.crash()
        node.restart()
        received = collect(net, "b", "svc")
        net.send("a", "b", "svc", "back")
        env.run()
        assert len(received) == 1

    def test_double_crash_is_noop(self, env, net):
        node = net.node("a")
        node.crash()
        node.crash()
        assert node.crash_count == 1


class TestDeterminism:
    def run_trace(self, seed):
        env = Environment(seed=seed)
        net = Network(env, default_latency=Latency.lognormal(1.0))
        net.add_node("a")
        net.add_node("b")
        inbox = net.node("b").bind("svc")
        arrivals = []

        def pump(env):
            while True:
                msg = yield inbox.get()
                arrivals.append((env.now, msg.msg_id))

        net.node("b").spawn(pump(env))
        net.set_loss(0.1)
        net.set_duplication(0.1)
        for i in range(50):
            env.schedule(float(i), net.send, "a", "b", "svc", i)
        env.run()
        return arrivals

    def test_same_seed_same_trace(self):
        assert self.run_trace(42) == self.run_trace(42)

    def test_different_seed_different_trace(self):
        assert self.run_trace(1) != self.run_trace(2)

"""Virtual actors: activation, silo failure, migration, transactions.

Run:  python examples/actor_bank.py

Walks through the §3.1/§4.1 actor story: accounts activate on first call,
survive a silo crash by re-activating on a surviving silo with state from
the storage provider, lose whatever was not saved, and — with the
Orleans-style transaction coordinator — transfer money atomically.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.actors import Actor, ActorRuntime, ActorTransactionCoordinator, transactional
from repro.sim import Environment


@transactional
class Account(Actor):
    initial_state = {"balance": 0}

    def deposit(self, amount):
        self.state["balance"] += amount
        yield from self.save_state()  # durable
        return self.state["balance"]

    def deposit_volatile(self, amount):
        self.state["balance"] += amount  # memory only!
        return self.state["balance"]
        yield  # pragma: no cover

    def balance(self):
        return self.state["balance"]
        yield  # pragma: no cover

    def txn_withdraw(self, amount):
        if self.state["balance"] < amount:
            raise ValueError("insufficient funds")
        self.state["balance"] -= amount
        return self.state["balance"]
        yield  # pragma: no cover

    def txn_deposit(self, amount):
        self.state["balance"] += amount
        return self.state["balance"]
        yield  # pragma: no cover


def main():
    env = Environment(seed=3)
    runtime = ActorRuntime(env, num_silos=3)
    runtime.register(Account)
    coordinator = ActorTransactionCoordinator(runtime)
    alice = runtime.ref("Account", "alice")
    bob = runtime.ref("Account", "bob")

    def scenario():
        balance = yield from alice.call("deposit", 100)
        host = runtime.host_of("Account", "alice")
        print(f"alice activated on {host}, balance={balance} (saved)")

        balance = yield from alice.call("deposit_volatile", 50)
        print(f"alice balance={balance} in memory (NOT saved)")

        index = int(host.split("-")[1])
        runtime.crash_silo(index)
        print(f"\n!!! {host} crashed\n")

        balance = yield from alice.call("balance", retries=3)
        print(f"alice re-activated on {runtime.host_of('Account', 'alice')}, "
              f"balance={balance}  <- the unsaved +50 is gone (§4.1)")

        yield from bob.call("deposit", 40)
        print("\nbob funded with 40; transferring 30 alice->bob atomically:")
        results = yield from coordinator.execute([
            ("Account", "alice", "txn_withdraw", (30,)),
            ("Account", "bob", "txn_deposit", (30,)),
        ])
        print(f"  transaction committed: alice={results[0]}, bob={results[1]}")

        try:
            yield from coordinator.execute([
                ("Account", "alice", "txn_withdraw", (10_000,)),
                ("Account", "bob", "txn_deposit", (10_000,)),
            ])
        except Exception as exc:
            print(f"  overdraft transaction aborted cleanly: {exc}")
        a = yield from alice.call("balance")
        b = yield from bob.call("balance")
        print(f"  final: alice={a}, bob={b} (sum conserved: {a + b == 140})")

    env.run_until(env.process(scenario()))
    stats = runtime.stats
    print(f"\nruntime stats: {stats.calls} calls, {stats.activations} "
          f"activations, {stats.migrations} migration(s)")


if __name__ == "__main__":
    main()

"""Stateful entities: ordinary classes, transactional superpowers.

Run:  python examples/stateful_entities.py

The paper's §5.1 asks whether "a programming model and system with
transparent parallelization, scalability, and consistency" is possible,
citing the stateful-entities line of work.  This example writes a bank as
a plain Python class — no transactions, no locks, no retries, no messaging
— compiles it onto the deterministic transactional dataflow, and then
hammers it with concurrent conflicting transfers.  Money is conserved
exactly, because every method call *is* a serializable transaction.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.dataflow import Entity, TransactionalDataflow, compile_entities
from repro.sim import Environment


class Account(Entity):
    """Look ma, no transactions."""

    initial_state = {"balance": 0, "history": ()}

    def deposit(self, amount):
        self.balance += amount
        self.history = self.history + (("deposit", amount),)
        return self.balance

    def transfer_to(self, dst, amount):
        if self.balance < amount:
            raise ValueError("insufficient funds")
        self.balance -= amount
        self.history = self.history + (("sent", dst, amount),)
        new_dst_balance = yield self.call_entity("Account", dst, "deposit", amount)
        return new_dst_balance


def main():
    env = Environment(seed=29)
    engine = TransactionalDataflow(env, epoch_interval=5.0)
    handle = compile_entities(engine, [Account])
    engine.start()

    accounts = [f"acct-{i}" for i in range(8)]
    for account in accounts:
        handle.invoke("Account", account, "deposit", 100,
                      touches=[("Account", account)])
    env.run(until=20)

    rng = env.stream("demo")
    submitted = 0
    for _ in range(60):
        src, dst = rng.sample(accounts, 2)
        handle.invoke("Account", src, "transfer_to", dst, rng.randint(1, 20),
                      touches=[("Account", src), ("Account", dst)])
        submitted += 1
    env.run(until=5000)

    balances = {a: handle.state_of("Account", a)["balance"] for a in accounts}
    total = sum(balances.values())
    stats = engine.stats
    print(f"submitted {submitted} concurrent conflicting transfers")
    print(f"committed={stats.committed} aborted={stats.aborted} "
          f"(aborts are business failures: insufficient funds)")
    print(f"epochs={stats.epochs}, conflict-free waves={stats.waves}")
    print("\nfinal balances:")
    for account, balance in balances.items():
        moves = len(handle.state_of("Account", account)["history"])
        print(f"  {account}: {balance:4d}  ({moves} ledger entries)")
    print(f"\ntotal = {total} (expected 800): "
          f"{'CONSERVED' if total == 800 else 'BROKEN'}")


if __name__ == "__main__":
    main()

"""Exactly-once stream processing through crash and recovery.

Run:  python examples/dataflow_exactly_once.py

A word-count job ingests a stream, a worker dies mid-run, and the job
recovers from its last aligned checkpoint, replaying the tail of the
source.  The transactional (exactly-once) sink shows each count exactly
once; an at-least-once sink run of the same scenario shows the duplicates
replay produces.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.dataflow import DataflowRuntime, JobGraph
from repro.net.latency import Latency
from repro.sim import Environment
from repro.storage.object_store import ObjectStore, ObjectStoreServer

WORDS = ["saga", "actor", "stream", "saga", "txn", "saga", "actor",
         "stream", "txn", "saga", "actor", "saga"]


def count_words(state, key, value, emit):
    total = state.get(key, 0) + 1
    state.put(key, total)
    emit(key, total)


def run(sink_mode):
    env = Environment(seed=5)
    graph = JobGraph("wordcount")
    graph.source("lines", emit_interval=10.0)
    graph.operator("count", count_words, parallelism=2)
    graph.sink("out", mode=sink_mode)
    graph.connect("lines", "count")
    graph.connect("count", "out")
    runtime = DataflowRuntime(
        env, graph, checkpoint_interval=30.0,
        checkpoint_store=ObjectStoreServer(env, ObjectStore(),
                                           latency=Latency.constant(2.0)),
    )
    runtime.start()
    for word in WORDS:
        runtime.send("lines", word, 1)

    def chaos():
        yield env.timeout(60.0)  # mid-stream
        runtime.crash_worker(0)
        yield env.timeout(10.0)
        yield from runtime.recover()

    env.process(chaos())
    env.run(until=2000)
    return runtime


def main():
    for mode in ("exactly_once", "at_least_once"):
        runtime = run(mode)
        outputs = [(k, v) for k, v, _t in runtime.sink_outputs("out")]
        finals = {}
        for key, value in outputs:
            finals[key] = max(value, finals.get(key, 0))
        expected = {w: WORDS.count(w) for w in set(WORDS)}
        print(f"--- sink mode: {mode} ---")
        print(f"  checkpoints completed: {runtime.stats.checkpoints_completed}, "
              f"recoveries: {runtime.stats.recoveries}, "
              f"records replayed: {runtime.stats.replayed_records}")
        print(f"  sink emitted {len(outputs)} records "
              f"({len(outputs) - len(WORDS)} duplicates vs {len(WORDS)} inputs)")
        print(f"  final counts correct: {finals == expected}  {finals}")
        per_value = sorted(outputs)
        dupes = len(per_value) - len(set(per_value))
        print(f"  duplicated (word,count) emissions: {dupes}\n")


if __name__ == "__main__":
    main()

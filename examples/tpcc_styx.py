"""TPC-C-lite on the Styx-like deterministic transactional dataflow.

Run:  python examples/tpcc_styx.py

Submits a contended TPC-C mix (one warehouse) as transactions on the
deterministic dataflow engine, then verifies the TPC-C consistency
conditions — the §4.2 story that complex transactional applications *can*
run on a dataflow with serializable guarantees and zero aborts.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.apps.tpcc_impls import StyxTpcc
from repro.sim import Environment
from repro.workloads.tpcc import TpccLite


def main():
    env = Environment(seed=17)
    workload = TpccLite(warehouses=1)
    impl = StyxTpcc(env, workload)
    ops = list(workload.operations(env.stream("ops"), 80))

    def client(op):
        try:
            yield from impl.execute(op)
        except Exception as exc:
            print(f"  {op.op_id} failed: {exc!r}")

    for op in ops:
        env.process(client(op))
    env.run(until=60_000)

    stats = impl.engine.stats
    print(f"submitted {stats.submitted} transactions "
          f"({sum(1 for o in ops if type(o).__name__ == 'NewOrderOp')} NewOrder)")
    print(f"committed={stats.committed} aborted={stats.aborted} "
          f"epochs={stats.epochs} waves={stats.waves} "
          f"cross-partition calls={stats.cross_partition_calls}")

    state = impl.final_state()
    print(f"\norders created: {len(state['orders'])}, "
          f"order lines: {len(state['order_lines'])}")
    warehouse_ytd = state["warehouses"][0]["ytd"]
    district_ytd = sum(d["ytd"] for d in state["districts"])
    print(f"W_YTD={warehouse_ytd} vs sum(D_YTD)={district_ytd}")

    print("\nTPC-C consistency conditions:")
    clean = True
    for invariant in workload.invariants():
        violations = invariant.check(state)
        status = "OK" if not violations else f"{len(violations)} violations"
        print(f"  {invariant.name}: {status}")
        clean = clean and not violations
    print("\nresult:", "SERIALIZABLE AND CLEAN" if clean else "BROKEN")


if __name__ == "__main__":
    main()

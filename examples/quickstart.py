"""Quickstart: the taxonomy, a transaction, and an anomaly in 80 lines.

Run:  python examples/quickstart.py

This script shows the three things the library is about:

1. the paper's taxonomy of transactional cloud runtimes, as data;
2. a serializable transaction on the from-scratch database engine;
3. the same logic at a weaker isolation level, losing an update —
   detected by the invariant machinery every benchmark uses.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core import taxonomy_table
from repro.db import Database, IsolationLevel
from repro.sim import Environment
from repro.transactions import ConservationInvariant


def racing_increments(isolation):
    """Two concurrent read-modify-writes on one account."""
    env = Environment(seed=7)
    db = Database(env)
    db.create_table("accounts", primary_key="id")
    db.load("accounts", [{"id": "alice", "balance": 100}])
    commits = []

    def incrementer():
        from repro.db.errors import TransactionAborted

        txn = db.begin(isolation)
        try:
            row = yield from db.get(txn, "accounts", "alice")
            yield env.timeout(5)  # overlap window (think time)
            yield from db.put(txn, "accounts", "alice",
                              {"id": "alice", "balance": row["balance"] + 10})
            yield from db.commit(txn)
            commits.append(1)
        except TransactionAborted:
            db.abort(txn)

    env.process(incrementer())
    env.process(incrementer())
    env.run()
    return db.read_latest("accounts", "alice")["balance"], len(commits)


def main():
    print("The paper's taxonomy (Figure 1), as implemented here:\n")
    print(taxonomy_table())

    print("\n\nTwo racing +10 increments on balance=100, per isolation level:")
    for isolation in (IsolationLevel.READ_COMMITTED,
                      IsolationLevel.SNAPSHOT,
                      IsolationLevel.SERIALIZABLE):
        balance, commits = racing_increments(isolation)
        expected = 100 + 10 * commits
        invariant = ConservationInvariant(
            "balance", expected, name="every commit applied"
        )
        violations = invariant.check([{"balance": balance}])
        verdict = "SILENT LOST UPDATE" if violations else "correct"
        print(f"  {isolation.value:<16} -> {commits} committed, "
              f"balance={balance} (expected {expected})  [{verdict}]")

    print("\n(READ COMMITTED commits both but applies one — a silent lost"
          "\n update.  SNAPSHOT and SERIALIZABLE abort one racer instead;"
          "\n a production client retries it — see repro.apps.banking.DbBank.)")


if __name__ == "__main__":
    main()

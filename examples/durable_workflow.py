"""Durable orchestration: code that survives its own engine crashing.

Run:  python examples/durable_workflow.py

A checkout orchestration written as plain-looking code runs activities,
the engine crashes mid-workflow, and after recovery the workflow resumes
*exactly where it left off* — completed activities replay from history
instead of re-executing (Azure Durable Functions / Temporal semantics,
paper refs [14, 15]).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.faas import DurableWorkflows
from repro.sim import Environment


def main():
    env = Environment(seed=23)
    engine = DurableWorkflows(env, activity_latency=1.0)
    side_effects = []

    @engine.activity("reserve_stock")
    def reserve_stock(item):
        yield env.timeout(5.0)
        side_effects.append(f"reserved {item}")
        return f"res-{item}"

    @engine.activity("charge_card")
    def charge_card(amount):
        yield env.timeout(5.0)
        side_effects.append(f"charged {amount}")
        return f"receipt-{amount}"

    @engine.activity("ship")
    def ship(reservation, receipt):
        yield env.timeout(5.0)
        side_effects.append(f"shipped {reservation} with {receipt}")
        return "tracking-42"

    @engine.workflow("checkout")
    def checkout(ctx, order):
        reservation = yield ctx.activity("reserve_stock", order["item"])
        yield ctx.timer(10.0)  # a durable delay (fraud-check window)
        receipt = yield ctx.activity("charge_card", order["amount"])
        tracking = yield ctx.activity("ship", reservation, receipt)
        return {"tracking": tracking}

    engine.start("order-1", "checkout", {"item": "book", "amount": 30})
    env.run(until=8.0)
    print(f"t={env.now:.0f}: side effects so far: {side_effects}")
    print(f"t={env.now:.0f}: history: {engine.history_of('order-1')}")

    print("\n!!! engine crashes (in-flight timers and activities lost)\n")
    engine.crash()
    engine.recover()
    result = env.run_until(engine.wait("order-1"))

    print(f"t={env.now:.0f}: workflow completed: {result}")
    print(f"final history: {engine.history_of('order-1')}")
    print(f"all side effects: {side_effects}")
    reserved = sum(1 for s in side_effects if s.startswith("reserved"))
    print(f"\n'reserve_stock' executed {reserved} time(s) despite the crash —")
    print("its completion was already in the history, so replay skipped it.")
    print(f"engine stats: {engine.stats}")


if __name__ == "__main__":
    main()

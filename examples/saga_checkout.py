"""A multi-service checkout with sagas: success, failure, compensation.

Run:  python examples/saga_checkout.py

Deploys the marketplace application (stock, payment, order microservices,
each with its own database) and runs two checkouts through the saga
orchestrator: one succeeds end to end, one fails at payment and is
compensated.  Afterwards the cross-service invariants verify no oversell,
exactly one charge per order, and no orphan reservations.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.apps.shop import MicroserviceShop
from repro.sim import Environment
from repro.workloads.marketplace import CheckoutOp, MarketplaceWorkload


def main():
    env = Environment(seed=11)
    workload = MarketplaceWorkload(num_products=3, initial_stock=10)
    shop = MicroserviceShop(env, workload, mode="saga")

    good = CheckoutOp(op_id="order-good", customer="ada",
                      cart=(("prod-0000", 2), ("prod-0001", 1)),
                      payment_fails=False)
    bad = CheckoutOp(op_id="order-bad", customer="bob",
                     cart=(("prod-0000", 3),),
                     payment_fails=True)  # card will be declined

    def run_checkout(op):
        try:
            yield from shop.execute(op)
            print(f"  {op.op_id}: COMPLETED")
        except Exception as exc:
            print(f"  {op.op_id}: FAILED ({type(exc).__name__}) — compensated")

    def scenario():
        print("Running checkouts through the saga orchestrator:")
        yield from run_checkout(good)
        yield from run_checkout(bad)

    env.run_until(env.process(scenario()))

    state = shop.final_state()
    print("\nFinal state:")
    for product in state["products"]:
        print(f"  {product['id']}: stock={product['stock']} "
              f"reserved={product['reserved']}")
    print(f"  orders: {[o['id'] for o in state['orders']]}")
    print(f"  payments: {[p['order_id'] for p in state['payments']]}")

    print("\nInvariant check:")
    clean = True
    for invariant in workload.invariants():
        for violation in invariant.check(state):
            clean = False
            print(f"  VIOLATION {violation.invariant}: {violation.detail}")
    if clean:
        print("  all invariants hold — the failed checkout left no trace")

    outcomes = shop.orchestrator.outcomes
    print("\nSaga outcomes:",
          ", ".join(f"{o.saga.split('-', 1)[1]}={o.status}" for o in outcomes))


if __name__ == "__main__":
    main()
